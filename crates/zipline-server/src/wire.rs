//! Framed wire protocol for the ZipLine ingest server.
//!
//! The framing reuses the record discipline of the durable store
//! (`zipline-engine`'s `persist.rs`): every record on the socket is
//!
//! ```text
//! record  := len:u32le payload crc:u32le
//! payload := kind:u8 body
//! ```
//!
//! where `len` counts the payload bytes (kind byte included) and `crc` is a
//! CRC-32 (polynomial `0x04C1_1DB7`) over the payload. A reader therefore
//! needs no protocol state to reframe a byte stream: it reads `len`, takes
//! that many payload bytes, and verifies the trailing CRC. Anything that does
//! not parse — a zero or oversized length, a short read, a CRC mismatch, an
//! unknown kind — is a loud [`WireError`]; the codec never panics on foreign
//! bytes and never silently accepts a damaged frame.
//!
//! # Record kinds
//!
//! Client → server:
//!
//! | kind   | record                                            |
//! |--------|---------------------------------------------------|
//! | `0x41` | [`ClientHello`] — magic `ZLRQ`, version, stream id, replay cursor, multiplex flag |
//! | `0x42` | `Data` — raw input record bytes for the engine    |
//! | `0x43` | `End` — clean end of stream (drain + commit)      |
//! | `0x44` | `FlowOpen` — open one flow on a multiplexed connection (key + replay cursor) |
//! | `0x45` | `FlowData` — raw input record bytes for one flow  |
//! | `0x46` | `FlowEnd` — clean end of one flow                 |
//!
//! Server → client:
//!
//! | kind   | record                                            |
//! |--------|---------------------------------------------------|
//! | `0x51` | [`ServerHello`] — magic `ZLRS`, resume offset, replay/reseed counts |
//! | `0x52` | `Payload` — one wire payload (`packet_type` + bytes) |
//! | `0x53` | `Control` — one committed dictionary update (live sync) |
//! | `0x54` | `Done` — stream summary, closes the journal epoch |
//! | `0x55` | `Error` — typed failure, connection closes after  |
//! | `0x56` | `Reseed` — synthesized dictionary install for a compacted journal (advisory; not part of the replay cursor) |
//! | `0x57` | `FlowOpened` — per-flow resume plan (the flow's `ServerHello`) |
//! | `0x58` | `FlowPayload` — one wire payload of one flow      |
//! | `0x59` | `FlowControl` — one committed dictionary update of one flow |
//! | `0x5A` | `FlowReseed` — synthesized install of one flow (compacted journal) |
//! | `0x5B` | `FlowDone` — one flow's summary, closes its journal epoch |
//! | `0x5C` | `PayloadTagged` — one wire payload with a per-batch codec tag (`codec_id` + `packet_type` + bytes) |
//! | `0x5D` | `FlowPayloadTagged` — one tagged wire payload of one flow |
//!
//! The `Flow*` kinds (wire version 2) multiplex many flows over one
//! connection: each carries a [`FlowKey`] tag ahead of the same body its
//! single-stream counterpart uses, so per flow the record sequence — and
//! in particular the controls-strictly-before-data interleaving — is
//! exactly the single-stream protocol's.
//!
//! The `*Tagged` kinds (wire version 3) make the stream self-describing:
//! a routing backend (`AutoBackend`) stamps every batch's payloads with
//! the [`CodecId`] that actually compressed them, so a decoder pool picks
//! the right decompressor from the tag alone. Untagged `Payload`/
//! `FlowPayload` records stay valid and mean "the stream's fixed
//! backend" — a v2 peer therefore keeps decoding fixed-backend streams
//! unchanged. Version 3 hellos additionally advertise the codec ids each
//! side supports; a v2 hello is answered with a v2-shaped reply and an
//! empty codec set. A tag byte no registry entry covers is the typed
//! [`WireError::UnknownCodec`].
//!
//! The body encodings for dictionary updates mirror the store's
//! `put_update`/`read_update` byte-for-byte so a journal replay is a straight
//! re-framing of [`zipline_engine::CommittedEntry`] values, no re-encoding.

use std::fmt;
use std::io::{self, Read};

use zipline_engine::{codec_from_u8, CodecId, DictionaryUpdate, FlowKey, UpdateOp};
use zipline_gd::packet::PacketType;
use zipline_gd::{BitVec, CrcEngine, CrcSpec};

/// Wire protocol version spoken by this crate. Version 2 added the
/// multiplex flag to [`ClientHello`] and the flow-tagged record kinds;
/// version 3 added per-batch codec tags (`PayloadTagged`/
/// `FlowPayloadTagged`) and the hello codec-set advertisement. Version-2
/// peers are still accepted (they negotiate an untagged, fixed-backend
/// stream); version-1 peers are rejected with a typed `ERROR` record.
pub const WIRE_VERSION: u16 = 3;

/// Oldest wire version this crate still speaks.
pub const MIN_WIRE_VERSION: u16 = 2;

/// Upper bound on a single record's payload bytes; anything larger is
/// rejected before buffering (a 4-byte length field must not become a
/// memory-exhaustion lever).
pub const MAX_WIRE_RECORD_BYTES: usize = 1 << 24;

/// Magic prefix of a [`ClientHello`] body.
pub const REQUEST_MAGIC: [u8; 4] = *b"ZLRQ";
/// Magic prefix of a [`ServerHello`] body.
pub const RESPONSE_MAGIC: [u8; 4] = *b"ZLRS";

const KIND_CLIENT_HELLO: u8 = 0x41;
const KIND_DATA: u8 = 0x42;
const KIND_END: u8 = 0x43;
const KIND_FLOW_OPEN: u8 = 0x44;
const KIND_FLOW_DATA: u8 = 0x45;
const KIND_FLOW_END: u8 = 0x46;
const KIND_SERVER_HELLO: u8 = 0x51;
const KIND_PAYLOAD: u8 = 0x52;
const KIND_CONTROL: u8 = 0x53;
const KIND_DONE: u8 = 0x54;
const KIND_ERROR: u8 = 0x55;
const KIND_RESEED: u8 = 0x56;
const KIND_FLOW_OPENED: u8 = 0x57;
const KIND_FLOW_PAYLOAD: u8 = 0x58;
const KIND_FLOW_CONTROL: u8 = 0x59;
const KIND_FLOW_RESEED: u8 = 0x5A;
const KIND_FLOW_DONE: u8 = 0x5B;
const KIND_PAYLOAD_TAGGED: u8 = 0x5C;
const KIND_FLOW_PAYLOAD_TAGGED: u8 = 0x5D;

/// Decoding failure; every variant is terminal for the connection.
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// Underlying socket/file error while reading.
    Io(io::Error),
    /// The stream ended inside a record (after at least one framing byte).
    Truncated,
    /// Declared payload length is zero or exceeds [`MAX_WIRE_RECORD_BYTES`].
    OversizedRecord(usize),
    /// Trailing CRC does not match the payload.
    BadCrc,
    /// A hello record carried the wrong magic.
    BadMagic,
    /// A hello record spoke a protocol version we do not.
    UnsupportedVersion(u16),
    /// Correctly framed record with a kind byte we do not know.
    UnknownKind(u8),
    /// A tagged payload named a codec id no registry entry covers.
    UnknownCodec(u8),
    /// The body of a known kind did not parse.
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Truncated => write!(f, "stream truncated inside a record"),
            WireError::OversizedRecord(len) => write!(
                f,
                "record payload of {len} bytes outside (0, {MAX_WIRE_RECORD_BYTES}]"
            ),
            WireError::BadCrc => write!(f, "record CRC mismatch"),
            WireError::BadMagic => write!(f, "hello record carries the wrong magic"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown record kind {k:#04x}"),
            WireError::UnknownCodec(id) => {
                write!(f, "tagged payload names unknown codec id {id}")
            }
            WireError::Malformed(what) => write!(f, "malformed record body: {what}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// First record on every connection, client → server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// The wire version the client speaks. Encoding is version-shaped:
    /// a `version <= 2` hello keeps the exact v2 body (no codec set), so
    /// old servers parse it cleanly.
    pub version: u16,
    /// Caller-chosen stream identifier; doubles as the durable directory key,
    /// so reconnecting with the same id resumes the same journal.
    pub stream_id: u64,
    /// Replay cursor: payload + control records the client has received since
    /// the stream's last `Done` (i.e. within the current journal epoch).
    pub entries_held: u64,
    /// Wire version 2: when set the connection is multiplexed — the
    /// `stream_id`/`entries_held` fields are ignored and flows open
    /// individually via `FlowOpen` records.
    pub multiplex: bool,
    /// Wire version 3: codec ids the client can decode. Empty means
    /// "unstated" (v2 peer, or a client that accepts anything its
    /// registry covers); a non-empty set lets the server refuse a stream
    /// whose backend would emit tags the client cannot decode.
    pub codecs: Vec<CodecId>,
}

impl ClientHello {
    /// A current-version hello for stream `stream_id` with replay cursor
    /// `entries_held` and an unstated (empty) codec set.
    pub fn new(stream_id: u64, entries_held: u64) -> Self {
        Self {
            version: WIRE_VERSION,
            stream_id,
            entries_held,
            multiplex: false,
            codecs: Vec::new(),
        }
    }
}

/// First record on every connection, server → client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// The wire version the reply speaks: the minimum of the server's own
    /// and the client's, so a v2 client gets a v2-shaped reply it can
    /// parse (no codec set).
    pub version: u16,
    /// Input byte offset the client must resume feeding from after the
    /// replayed records (always a commit-boundary, i.e. a batch multiple).
    pub resume_bytes_in: u64,
    /// Committed records about to be replayed from the journal.
    pub replay_entries: u64,
    /// Synthesized `Reseed` installs about to follow (compacted journal).
    pub reseed_entries: u64,
    /// Whether the stream restored warm state from a durable store.
    pub warm: bool,
    /// Wire version 3: codec ids the serving backend may stamp on this
    /// stream's payloads (empty for a fixed, untagged backend).
    pub codecs: Vec<CodecId>,
}

/// Final record of a clean stream, server → client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoneSummary {
    /// Record bytes the engine consumed.
    pub bytes_in: u64,
    /// Wire payloads emitted.
    pub payloads_emitted: u64,
    /// Total wire bytes emitted.
    pub wire_bytes: u64,
    /// Payloads emitted in compressed (type 3) form.
    pub compressed_payloads: u64,
    /// Dictionary updates streamed to the client.
    pub control_updates: u64,
    /// True when the server (graceful shutdown) rather than the client's
    /// `End` record ended the stream.
    pub server_initiated: bool,
}

/// One wire record, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// `0x41`: connection opener, client → server.
    ClientHello(ClientHello),
    /// `0x42`: raw input record bytes for the engine.
    Data(Vec<u8>),
    /// `0x43`: clean end of stream.
    End,
    /// `0x44`: opens one flow on a multiplexed connection; `entries_held`
    /// is the flow's replay cursor, exactly as on a [`ClientHello`].
    FlowOpen {
        /// The flow being opened.
        key: FlowKey,
        /// The flow's replay cursor.
        entries_held: u64,
    },
    /// `0x45`: raw input record bytes for one flow.
    FlowData {
        /// The owning flow.
        key: FlowKey,
        /// The record bytes.
        bytes: Vec<u8>,
    },
    /// `0x46`: clean end of one flow (drain + commit, `FlowDone` follows).
    FlowEnd {
        /// The flow being ended.
        key: FlowKey,
    },
    /// `0x51`: connection opener, server → client.
    ServerHello(ServerHello),
    /// `0x52` untagged / `0x5C` tagged: one compressed/uncompressed/raw
    /// wire payload.
    Payload {
        /// ZipLine packet type of the payload.
        packet_type: PacketType,
        /// Per-batch codec tag (`Some` encodes as `0x5C`); `None` means
        /// the stream's fixed backend and encodes as plain `0x52`.
        codec: Option<CodecId>,
        /// Payload bytes exactly as the backend emitted them.
        bytes: Vec<u8>,
    },
    /// `0x53`: one committed dictionary update (live sync).
    Control(DictionaryUpdate),
    /// `0x56`: synthesized dictionary install replacing a compacted journal.
    Reseed(DictionaryUpdate),
    /// `0x54`: stream summary; closes the journal epoch.
    Done(DoneSummary),
    /// `0x55`: typed failure; the connection closes after this record.
    Error(String),
    /// `0x57`: per-flow resume plan — the flow's [`ServerHello`], tagged.
    FlowOpened {
        /// The opened flow.
        key: FlowKey,
        /// The flow's resume plan (same fields as a connection hello).
        resume: ServerHello,
    },
    /// `0x58` untagged / `0x5D` tagged: one wire payload of one flow.
    FlowPayload {
        /// The owning flow.
        key: FlowKey,
        /// ZipLine packet type of the payload.
        packet_type: PacketType,
        /// Per-batch codec tag (`Some` encodes as `0x5D`); `None` means
        /// the flow's fixed backend and encodes as plain `0x58`.
        codec: Option<CodecId>,
        /// Payload bytes exactly as the backend emitted them.
        bytes: Vec<u8>,
    },
    /// `0x59`: one committed dictionary update of one flow (live sync).
    FlowControl {
        /// The owning flow.
        key: FlowKey,
        /// The tagged update.
        update: DictionaryUpdate,
    },
    /// `0x5A`: synthesized install of one flow (compacted journal).
    FlowReseed {
        /// The owning flow.
        key: FlowKey,
        /// The synthesized update.
        update: DictionaryUpdate,
    },
    /// `0x5B`: one flow's summary; closes the flow's journal epoch.
    FlowDone {
        /// The finished flow.
        key: FlowKey,
        /// The flow's stream totals.
        summary: DoneSummary,
    },
}

impl Record {
    /// Short human tag for protocol errors.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Record::ClientHello(_) => "CLIENT_HELLO",
            Record::Data(_) => "DATA",
            Record::End => "END",
            Record::ServerHello(_) => "SERVER_HELLO",
            Record::Payload { codec: Some(_), .. } => "PAYLOAD_TAGGED",
            Record::Payload { .. } => "PAYLOAD",
            Record::Control(_) => "CONTROL",
            Record::Reseed(_) => "RESEED",
            Record::Done(_) => "DONE",
            Record::Error(_) => "ERROR",
            Record::FlowOpen { .. } => "FLOW_OPEN",
            Record::FlowData { .. } => "FLOW_DATA",
            Record::FlowEnd { .. } => "FLOW_END",
            Record::FlowOpened { .. } => "FLOW_OPENED",
            Record::FlowPayload { codec: Some(_), .. } => "FLOW_PAYLOAD_TAGGED",
            Record::FlowPayload { .. } => "FLOW_PAYLOAD",
            Record::FlowControl { .. } => "FLOW_CONTROL",
            Record::FlowReseed { .. } => "FLOW_RESEED",
            Record::FlowDone { .. } => "FLOW_DONE",
        }
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bitvec(buf: &mut Vec<u8>, bits: &BitVec) {
    put_u32(buf, bits.len() as u32);
    buf.extend_from_slice(&bits.to_bytes());
}

fn put_flow_key(buf: &mut Vec<u8>, key: FlowKey) {
    put_u64(buf, key.tenant);
    put_u64(buf, key.flow);
}

/// Appends a hello's codec-set suffix — only on v3+ bodies, so a v2 hello
/// keeps its exact historical shape.
fn put_codec_set(buf: &mut Vec<u8>, version: u16, codecs: &[CodecId]) {
    if version >= 3 {
        debug_assert!(codecs.len() <= u8::MAX as usize, "codec set too large");
        buf.push(codecs.len() as u8);
        for id in codecs {
            buf.push(id.as_u8());
        }
    }
}

/// Serializes a dictionary update exactly like the store's `put_update`.
pub(crate) fn put_update(buf: &mut Vec<u8>, update: &DictionaryUpdate) {
    put_u64(buf, update.seq);
    put_u64(buf, update.at);
    match &update.op {
        UpdateOp::Install { id, basis } => {
            buf.push(0);
            put_u64(buf, *id);
            put_bitvec(buf, basis);
        }
        UpdateOp::Remove { id } => {
            buf.push(1);
            put_u64(buf, *id);
        }
    }
}

/// Bounded reader over one record body; every shortfall is a loud
/// [`WireError::Malformed`] naming the record being parsed.
struct BodyReader<'a> {
    data: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> BodyReader<'a> {
    fn new(data: &'a [u8], what: &'static str) -> Self {
        Self { data, pos: 0, what }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.data.len());
        let Some(end) = end else {
            return Err(WireError::Malformed(format!(
                "{}: body shorter than declared",
                self.what
            )));
        };
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Takes exactly `N` bytes as a fixed-size array. The length always
    /// matches because `take` returned exactly `N` bytes, so the slice
    /// pattern is irrefutable — no fallible conversion anywhere.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let [b] = self.array()?;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.array()?))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn bitvec(&mut self) -> Result<BitVec, WireError> {
        let bit_len = self.u32()? as usize;
        let bytes = self.take(bit_len.div_ceil(8))?;
        let mut bits = BitVec::from_bytes(bytes);
        bits.truncate(bit_len);
        Ok(bits)
    }

    fn rest(&mut self) -> &'a [u8] {
        let slice = &self.data[self.pos..];
        self.pos = self.data.len();
        slice
    }

    fn finish(self) -> Result<(), WireError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(WireError::Malformed(format!(
                "{}: trailing bytes in body",
                self.what
            )))
        }
    }
}

fn read_flow_key(r: &mut BodyReader<'_>) -> Result<FlowKey, WireError> {
    Ok(FlowKey {
        tenant: r.u64()?,
        flow: r.u64()?,
    })
}

/// Reads a hello's codec-set suffix (absent before v3). Advertised ids
/// are carried verbatim — an id this build does not know is fine in an
/// *advertisement* (set intersection handles it); only a payload *tag*
/// must resolve, which `codec_from_u8` enforces at the tagged-payload
/// parse sites.
fn read_codec_set(r: &mut BodyReader<'_>, version: u16) -> Result<Vec<CodecId>, WireError> {
    if version < 3 {
        return Ok(Vec::new());
    }
    let n = r.u8()? as usize;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(CodecId(r.u8()?));
    }
    Ok(ids)
}

fn read_update(r: &mut BodyReader<'_>) -> Result<DictionaryUpdate, WireError> {
    let seq = r.u64()?;
    let at = r.u64()?;
    let op = match r.u8()? {
        0 => UpdateOp::Install {
            id: r.u64()?,
            basis: r.bitvec()?,
        },
        1 => UpdateOp::Remove { id: r.u64()? },
        other => {
            return Err(WireError::Malformed(format!(
                "{}: unknown update op {other}",
                r.what
            )))
        }
    };
    Ok(DictionaryUpdate { seq, at, op })
}

/// Little-endian `u32` starting at byte `at`; `None` when `buf` is too
/// short — length checks and extraction in one step, no indexing.
fn read_le_u32(buf: &[u8], at: usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    let bytes: [u8; 4] = buf.get(at..end)?.try_into().ok()?;
    Some(u32::from_le_bytes(bytes))
}

fn packet_type_from(code: u8) -> Result<PacketType, WireError> {
    match code {
        1 => Ok(PacketType::Raw),
        2 => Ok(PacketType::Uncompressed),
        3 => Ok(PacketType::Compressed),
        other => Err(WireError::Malformed(format!("unknown packet type {other}"))),
    }
}

/// Stateless encoder/decoder for wire [`Record`]s.
///
/// Holds the CRC engine and a scratch buffer so framing does not allocate
/// per record beyond the payload itself.
pub struct WireCodec {
    crc: CrcEngine,
    scratch: Vec<u8>,
}

impl Default for WireCodec {
    fn default() -> Self {
        Self::new()
    }
}

impl WireCodec {
    /// Creates a codec (CRC-32, polynomial `0x04C1_1DB7`).
    pub fn new() -> Self {
        Self {
            // zipline-lint: allow(L001): CRC-32 spec parameters are compile-time constants; construction cannot fail
            crc: CrcEngine::new(CrcSpec::new(32, 0x04C1_1DB7).expect("CRC-32 spec is valid")),
            scratch: Vec::new(),
        }
    }

    /// Appends the framed encoding of `record` to `out`.
    pub fn encode_into(&mut self, record: &Record, out: &mut Vec<u8>) {
        self.scratch.clear();
        let body = &mut self.scratch;
        match record {
            Record::ClientHello(h) => {
                body.push(KIND_CLIENT_HELLO);
                body.extend_from_slice(&REQUEST_MAGIC);
                put_u16(body, h.version);
                put_u64(body, h.stream_id);
                put_u64(body, h.entries_held);
                body.push(u8::from(h.multiplex));
                put_codec_set(body, h.version, &h.codecs);
            }
            Record::Data(bytes) => {
                body.push(KIND_DATA);
                body.extend_from_slice(bytes);
            }
            Record::End => body.push(KIND_END),
            Record::FlowOpen { key, entries_held } => {
                body.push(KIND_FLOW_OPEN);
                put_flow_key(body, *key);
                put_u64(body, *entries_held);
            }
            Record::FlowData { key, bytes } => {
                body.push(KIND_FLOW_DATA);
                put_flow_key(body, *key);
                body.extend_from_slice(bytes);
            }
            Record::FlowEnd { key } => {
                body.push(KIND_FLOW_END);
                put_flow_key(body, *key);
            }
            Record::ServerHello(h) => {
                body.push(KIND_SERVER_HELLO);
                body.extend_from_slice(&RESPONSE_MAGIC);
                put_u16(body, h.version);
                put_u64(body, h.resume_bytes_in);
                put_u64(body, h.replay_entries);
                put_u64(body, h.reseed_entries);
                body.push(u8::from(h.warm));
                put_codec_set(body, h.version, &h.codecs);
            }
            Record::Payload {
                packet_type,
                codec,
                bytes,
            } => {
                match codec {
                    Some(id) => {
                        body.push(KIND_PAYLOAD_TAGGED);
                        body.push(id.as_u8());
                    }
                    None => body.push(KIND_PAYLOAD),
                }
                body.push(packet_type.number());
                put_u32(body, bytes.len() as u32);
                body.extend_from_slice(bytes);
            }
            Record::Control(update) => {
                body.push(KIND_CONTROL);
                put_update(body, update);
            }
            Record::Reseed(update) => {
                body.push(KIND_RESEED);
                put_update(body, update);
            }
            Record::Done(d) => {
                body.push(KIND_DONE);
                put_u64(body, d.bytes_in);
                put_u64(body, d.payloads_emitted);
                put_u64(body, d.wire_bytes);
                put_u64(body, d.compressed_payloads);
                put_u64(body, d.control_updates);
                body.push(u8::from(d.server_initiated));
            }
            Record::Error(message) => {
                body.push(KIND_ERROR);
                body.extend_from_slice(message.as_bytes());
            }
            Record::FlowOpened { key, resume } => {
                body.push(KIND_FLOW_OPENED);
                put_flow_key(body, *key);
                put_u64(body, resume.resume_bytes_in);
                put_u64(body, resume.replay_entries);
                put_u64(body, resume.reseed_entries);
                body.push(u8::from(resume.warm));
            }
            Record::FlowPayload {
                key,
                packet_type,
                codec,
                bytes,
            } => {
                match codec {
                    Some(id) => {
                        body.push(KIND_FLOW_PAYLOAD_TAGGED);
                        put_flow_key(body, *key);
                        body.push(id.as_u8());
                    }
                    None => {
                        body.push(KIND_FLOW_PAYLOAD);
                        put_flow_key(body, *key);
                    }
                }
                body.push(packet_type.number());
                put_u32(body, bytes.len() as u32);
                body.extend_from_slice(bytes);
            }
            Record::FlowControl { key, update } => {
                body.push(KIND_FLOW_CONTROL);
                put_flow_key(body, *key);
                put_update(body, update);
            }
            Record::FlowReseed { key, update } => {
                body.push(KIND_FLOW_RESEED);
                put_flow_key(body, *key);
                put_update(body, update);
            }
            Record::FlowDone { key, summary } => {
                body.push(KIND_FLOW_DONE);
                put_flow_key(body, *key);
                put_u64(body, summary.bytes_in);
                put_u64(body, summary.payloads_emitted);
                put_u64(body, summary.wire_bytes);
                put_u64(body, summary.compressed_payloads);
                put_u64(body, summary.control_updates);
                body.push(u8::from(summary.server_initiated));
            }
        }
        debug_assert!(!body.is_empty() && body.len() <= MAX_WIRE_RECORD_BYTES);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(body);
        let crc = self.crc.compute_bytes(body) as u32;
        out.extend_from_slice(&crc.to_le_bytes());
    }

    /// Frames `record` into a fresh buffer.
    pub fn encode(&mut self, record: &Record) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        self.encode_into(record, &mut out);
        out
    }

    /// Frames a `Payload` record straight from a borrowed byte slice (the
    /// hot path — avoids the intermediate `Record::Payload` copy). `codec`
    /// is the per-batch tag: `Some` frames the tagged `0x5C` kind, `None`
    /// the plain `0x52`.
    pub fn encode_payload(
        &mut self,
        codec: Option<CodecId>,
        packet_type: PacketType,
        bytes: &[u8],
    ) -> Vec<u8> {
        self.scratch.clear();
        let body = &mut self.scratch;
        match codec {
            Some(id) => {
                body.push(KIND_PAYLOAD_TAGGED);
                body.push(id.as_u8());
            }
            None => body.push(KIND_PAYLOAD),
        }
        body.push(packet_type.number());
        put_u32(body, bytes.len() as u32);
        body.extend_from_slice(bytes);
        self.seal()
    }

    /// Frames a `Data` record straight from a borrowed byte slice.
    pub fn encode_data(&mut self, bytes: &[u8]) -> Vec<u8> {
        self.scratch.clear();
        self.scratch.push(KIND_DATA);
        self.scratch.extend_from_slice(bytes);
        self.seal()
    }

    /// Frames a `Control` record straight from a borrowed update.
    pub fn encode_control(&mut self, update: &DictionaryUpdate) -> Vec<u8> {
        self.scratch.clear();
        self.scratch.push(KIND_CONTROL);
        put_update(&mut self.scratch, update);
        self.seal()
    }

    /// Frames a `FlowPayload` record straight from a borrowed byte slice
    /// (the multiplexed hot path). `codec` is the per-batch tag: `Some`
    /// frames the tagged `0x5D` kind, `None` the plain `0x58`.
    pub fn encode_flow_payload(
        &mut self,
        key: FlowKey,
        codec: Option<CodecId>,
        packet_type: PacketType,
        bytes: &[u8],
    ) -> Vec<u8> {
        self.scratch.clear();
        let body = &mut self.scratch;
        match codec {
            Some(id) => {
                body.push(KIND_FLOW_PAYLOAD_TAGGED);
                put_flow_key(body, key);
                body.push(id.as_u8());
            }
            None => {
                body.push(KIND_FLOW_PAYLOAD);
                put_flow_key(body, key);
            }
        }
        body.push(packet_type.number());
        put_u32(body, bytes.len() as u32);
        body.extend_from_slice(bytes);
        self.seal()
    }

    /// Frames a `FlowControl` record straight from a borrowed update.
    pub fn encode_flow_control(&mut self, key: FlowKey, update: &DictionaryUpdate) -> Vec<u8> {
        self.scratch.clear();
        self.scratch.push(KIND_FLOW_CONTROL);
        put_flow_key(&mut self.scratch, key);
        put_update(&mut self.scratch, update);
        self.seal()
    }

    /// Frames a `FlowData` record straight from a borrowed byte slice.
    pub fn encode_flow_data(&mut self, key: FlowKey, bytes: &[u8]) -> Vec<u8> {
        self.scratch.clear();
        self.scratch.push(KIND_FLOW_DATA);
        put_flow_key(&mut self.scratch, key);
        self.scratch.extend_from_slice(bytes);
        self.seal()
    }

    /// Frames whatever `scratch` currently holds as one record.
    fn seal(&mut self) -> Vec<u8> {
        let body = &self.scratch;
        let mut out = Vec::with_capacity(body.len() + 8);
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(body);
        let crc = self.crc.compute_bytes(body) as u32;
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Attempts to decode one record from the front of `buf`.
    ///
    /// Returns `Ok(None)` when `buf` holds only a prefix of a record (more
    /// bytes needed), `Ok(Some((record, consumed)))` on success, and a
    /// [`WireError`] for anything that can never become a valid record no
    /// matter how many bytes follow.
    pub fn decode(&self, buf: &[u8]) -> Result<Option<(Record, usize)>, WireError> {
        let Some(len) = read_le_u32(buf, 0) else {
            return Ok(None);
        };
        let len = len as usize;
        if len == 0 || len > MAX_WIRE_RECORD_BYTES {
            return Err(WireError::OversizedRecord(len));
        }
        let total = 4 + len + 4;
        if buf.len() < total {
            return Ok(None);
        }
        let payload = &buf[4..4 + len];
        let Some(stored) = read_le_u32(buf, 4 + len) else {
            return Ok(None);
        };
        let computed = self.crc.compute_bytes(payload) as u32;
        if stored != computed {
            return Err(WireError::BadCrc);
        }
        let record = Self::parse_payload(payload)?;
        Ok(Some((record, total)))
    }

    fn parse_payload(payload: &[u8]) -> Result<Record, WireError> {
        let Some((&kind, body)) = payload.split_first() else {
            return Err(WireError::Malformed("empty payload".to_string()));
        };
        match kind {
            KIND_CLIENT_HELLO => {
                let mut r = BodyReader::new(body, "CLIENT_HELLO");
                if r.take(4)? != REQUEST_MAGIC {
                    return Err(WireError::BadMagic);
                }
                let version = r.u16()?;
                if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
                    return Err(WireError::UnsupportedVersion(version));
                }
                let stream_id = r.u64()?;
                let entries_held = r.u64()?;
                let multiplex = r.u8()? != 0;
                let codecs = read_codec_set(&mut r, version)?;
                r.finish()?;
                Ok(Record::ClientHello(ClientHello {
                    version,
                    stream_id,
                    entries_held,
                    multiplex,
                    codecs,
                }))
            }
            KIND_DATA => Ok(Record::Data(body.to_vec())),
            KIND_END => {
                BodyReader::new(body, "END").finish()?;
                Ok(Record::End)
            }
            KIND_FLOW_OPEN => {
                let mut r = BodyReader::new(body, "FLOW_OPEN");
                let key = read_flow_key(&mut r)?;
                let entries_held = r.u64()?;
                r.finish()?;
                Ok(Record::FlowOpen { key, entries_held })
            }
            KIND_FLOW_DATA => {
                let mut r = BodyReader::new(body, "FLOW_DATA");
                let key = read_flow_key(&mut r)?;
                let bytes = r.rest().to_vec();
                Ok(Record::FlowData { key, bytes })
            }
            KIND_FLOW_END => {
                let mut r = BodyReader::new(body, "FLOW_END");
                let key = read_flow_key(&mut r)?;
                r.finish()?;
                Ok(Record::FlowEnd { key })
            }
            KIND_SERVER_HELLO => {
                let mut r = BodyReader::new(body, "SERVER_HELLO");
                if r.take(4)? != RESPONSE_MAGIC {
                    return Err(WireError::BadMagic);
                }
                let version = r.u16()?;
                if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
                    return Err(WireError::UnsupportedVersion(version));
                }
                let resume_bytes_in = r.u64()?;
                let replay_entries = r.u64()?;
                let reseed_entries = r.u64()?;
                let warm = r.u8()? != 0;
                let codecs = read_codec_set(&mut r, version)?;
                r.finish()?;
                Ok(Record::ServerHello(ServerHello {
                    version,
                    resume_bytes_in,
                    replay_entries,
                    reseed_entries,
                    warm,
                    codecs,
                }))
            }
            KIND_PAYLOAD => {
                let mut r = BodyReader::new(body, "PAYLOAD");
                let packet_type = packet_type_from(r.u8()?)?;
                let len = r.u32()? as usize;
                let bytes = r.take(len)?.to_vec();
                r.finish()?;
                Ok(Record::Payload {
                    packet_type,
                    codec: None,
                    bytes,
                })
            }
            KIND_PAYLOAD_TAGGED => {
                let mut r = BodyReader::new(body, "PAYLOAD_TAGGED");
                let raw = r.u8()?;
                let Some(codec) = codec_from_u8(raw) else {
                    return Err(WireError::UnknownCodec(raw));
                };
                let packet_type = packet_type_from(r.u8()?)?;
                let len = r.u32()? as usize;
                let bytes = r.take(len)?.to_vec();
                r.finish()?;
                Ok(Record::Payload {
                    packet_type,
                    codec: Some(codec),
                    bytes,
                })
            }
            KIND_CONTROL => {
                let mut r = BodyReader::new(body, "CONTROL");
                let update = read_update(&mut r)?;
                r.finish()?;
                Ok(Record::Control(update))
            }
            KIND_RESEED => {
                let mut r = BodyReader::new(body, "RESEED");
                let update = read_update(&mut r)?;
                r.finish()?;
                Ok(Record::Reseed(update))
            }
            KIND_DONE => {
                let mut r = BodyReader::new(body, "DONE");
                let done = DoneSummary {
                    bytes_in: r.u64()?,
                    payloads_emitted: r.u64()?,
                    wire_bytes: r.u64()?,
                    compressed_payloads: r.u64()?,
                    control_updates: r.u64()?,
                    server_initiated: r.u8()? != 0,
                };
                r.finish()?;
                Ok(Record::Done(done))
            }
            KIND_ERROR => {
                let mut r = BodyReader::new(body, "ERROR");
                let bytes = r.rest();
                let message = String::from_utf8(bytes.to_vec())
                    .map_err(|_| WireError::Malformed("ERROR: message is not UTF-8".into()))?;
                Ok(Record::Error(message))
            }
            KIND_FLOW_OPENED => {
                let mut r = BodyReader::new(body, "FLOW_OPENED");
                let key = read_flow_key(&mut r)?;
                // The embedded resume plan carries only the resume fields;
                // version and codec set were negotiated by the connection
                // hello, so the per-flow copy inherits neutral defaults.
                let resume = ServerHello {
                    version: WIRE_VERSION,
                    resume_bytes_in: r.u64()?,
                    replay_entries: r.u64()?,
                    reseed_entries: r.u64()?,
                    warm: r.u8()? != 0,
                    codecs: Vec::new(),
                };
                r.finish()?;
                Ok(Record::FlowOpened { key, resume })
            }
            KIND_FLOW_PAYLOAD => {
                let mut r = BodyReader::new(body, "FLOW_PAYLOAD");
                let key = read_flow_key(&mut r)?;
                let packet_type = packet_type_from(r.u8()?)?;
                let len = r.u32()? as usize;
                let bytes = r.take(len)?.to_vec();
                r.finish()?;
                Ok(Record::FlowPayload {
                    key,
                    packet_type,
                    codec: None,
                    bytes,
                })
            }
            KIND_FLOW_PAYLOAD_TAGGED => {
                let mut r = BodyReader::new(body, "FLOW_PAYLOAD_TAGGED");
                let key = read_flow_key(&mut r)?;
                let raw = r.u8()?;
                let Some(codec) = codec_from_u8(raw) else {
                    return Err(WireError::UnknownCodec(raw));
                };
                let packet_type = packet_type_from(r.u8()?)?;
                let len = r.u32()? as usize;
                let bytes = r.take(len)?.to_vec();
                r.finish()?;
                Ok(Record::FlowPayload {
                    key,
                    packet_type,
                    codec: Some(codec),
                    bytes,
                })
            }
            KIND_FLOW_CONTROL => {
                let mut r = BodyReader::new(body, "FLOW_CONTROL");
                let key = read_flow_key(&mut r)?;
                let update = read_update(&mut r)?;
                r.finish()?;
                Ok(Record::FlowControl { key, update })
            }
            KIND_FLOW_RESEED => {
                let mut r = BodyReader::new(body, "FLOW_RESEED");
                let key = read_flow_key(&mut r)?;
                let update = read_update(&mut r)?;
                r.finish()?;
                Ok(Record::FlowReseed { key, update })
            }
            KIND_FLOW_DONE => {
                let mut r = BodyReader::new(body, "FLOW_DONE");
                let key = read_flow_key(&mut r)?;
                let summary = DoneSummary {
                    bytes_in: r.u64()?,
                    payloads_emitted: r.u64()?,
                    wire_bytes: r.u64()?,
                    compressed_payloads: r.u64()?,
                    control_updates: r.u64()?,
                    server_initiated: r.u8()? != 0,
                };
                r.finish()?;
                Ok(Record::FlowDone { key, summary })
            }
            other => Err(WireError::UnknownKind(other)),
        }
    }
}

/// Incremental record reader over any [`Read`] source (a socket, usually).
///
/// Buffers internally and reframes; `read_record` returns `Ok(None)` only on
/// a clean EOF at a record boundary. EOF inside a record is
/// [`WireError::Truncated`] — a torn tail is never silently dropped.
pub struct RecordReader<R> {
    inner: R,
    codec: WireCodec,
    buf: Vec<u8>,
    start: usize,
}

impl<R: Read> RecordReader<R> {
    /// Wraps `inner`; no bytes are read until the first `read_record`.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            codec: WireCodec::new(),
            buf: Vec::with_capacity(16 * 1024),
            start: 0,
        }
    }

    /// Reads the next record, blocking on the source as needed.
    pub fn read_record(&mut self) -> Result<Option<Record>, WireError> {
        loop {
            if let Some((record, used)) = self.codec.decode(&self.buf[self.start..])? {
                self.start += used;
                if self.start == self.buf.len() {
                    self.buf.clear();
                    self.start = 0;
                }
                return Ok(Some(record));
            }
            if self.start > 0 {
                self.buf.drain(..self.start);
                self.start = 0;
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(WireError::Truncated)
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(WireError::Io(e)),
            }
        }
    }

    /// Consumes the reader, returning the wrapped source.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_key() -> FlowKey {
        FlowKey {
            tenant: 0xA1,
            flow: 0xF700_0001,
        }
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::ClientHello(ClientHello {
                version: WIRE_VERSION,
                stream_id: 0xDEAD_BEEF,
                entries_held: 7,
                multiplex: true,
                codecs: vec![zipline_engine::CODEC_GD, zipline_engine::CODEC_DEFLATE],
            }),
            Record::Data(vec![0u8; 32]),
            Record::Data((0..=255u8).collect()),
            Record::End,
            Record::FlowOpen {
                key: sample_key(),
                entries_held: 11,
            },
            Record::FlowData {
                key: sample_key(),
                bytes: vec![5u8; 48],
            },
            Record::FlowEnd { key: sample_key() },
            Record::ServerHello(ServerHello {
                version: WIRE_VERSION,
                resume_bytes_in: 8192,
                replay_entries: 3,
                reseed_entries: 0,
                warm: true,
                codecs: vec![zipline_engine::CODEC_GD],
            }),
            Record::Payload {
                packet_type: PacketType::Compressed,
                codec: None,
                bytes: vec![1, 2, 3, 4],
            },
            Record::Payload {
                packet_type: PacketType::Compressed,
                codec: Some(zipline_engine::CODEC_DEFLATE),
                bytes: vec![11, 12, 13],
            },
            Record::Control(DictionaryUpdate {
                seq: 9,
                at: 41,
                op: UpdateOp::Install {
                    id: 12,
                    basis: BitVec::from_bytes(&[0xAB, 0xCD, 0xEF]),
                },
            }),
            Record::Reseed(DictionaryUpdate {
                seq: 0,
                at: 0,
                op: UpdateOp::Remove { id: 3 },
            }),
            Record::Done(DoneSummary {
                bytes_in: 1,
                payloads_emitted: 2,
                wire_bytes: 3,
                compressed_payloads: 4,
                control_updates: 5,
                server_initiated: true,
            }),
            Record::Error("engine exploded".into()),
            Record::FlowOpened {
                key: sample_key(),
                resume: ServerHello {
                    version: WIRE_VERSION,
                    resume_bytes_in: 4096,
                    replay_entries: 2,
                    reseed_entries: 1,
                    warm: true,
                    codecs: Vec::new(),
                },
            },
            Record::FlowPayload {
                key: sample_key(),
                packet_type: PacketType::Uncompressed,
                codec: None,
                bytes: vec![6, 7, 8],
            },
            Record::FlowPayload {
                key: sample_key(),
                packet_type: PacketType::Uncompressed,
                codec: Some(zipline_engine::CODEC_GD),
                bytes: vec![16, 17],
            },
            Record::FlowControl {
                key: sample_key(),
                update: DictionaryUpdate {
                    seq: 13,
                    at: 2,
                    op: UpdateOp::Install {
                        id: 5,
                        basis: BitVec::from_bytes(&[0x0F, 0xF0]),
                    },
                },
            },
            Record::FlowReseed {
                key: sample_key(),
                update: DictionaryUpdate {
                    seq: 1,
                    at: 0,
                    op: UpdateOp::Remove { id: 9 },
                },
            },
            Record::FlowDone {
                key: sample_key(),
                summary: DoneSummary {
                    bytes_in: 10,
                    payloads_emitted: 20,
                    wire_bytes: 30,
                    compressed_payloads: 40,
                    control_updates: 50,
                    server_initiated: false,
                },
            },
        ]
    }

    /// Exhaustiveness companion to `sample_records`: every declared
    /// `KIND_*` byte must be produced by the encoder for some sample, so
    /// a kind added to the protocol without a sample fails here (and the
    /// workspace lint's L002 rule fails on the missing test reference).
    #[test]
    fn every_declared_kind_byte_is_encoded_by_a_sample_record() {
        let declared = [
            KIND_CLIENT_HELLO,
            KIND_DATA,
            KIND_END,
            KIND_FLOW_OPEN,
            KIND_FLOW_DATA,
            KIND_FLOW_END,
            KIND_SERVER_HELLO,
            KIND_PAYLOAD,
            KIND_CONTROL,
            KIND_DONE,
            KIND_ERROR,
            KIND_RESEED,
            KIND_FLOW_OPENED,
            KIND_FLOW_PAYLOAD,
            KIND_FLOW_CONTROL,
            KIND_FLOW_RESEED,
            KIND_FLOW_DONE,
            KIND_PAYLOAD_TAGGED,
            KIND_FLOW_PAYLOAD_TAGGED,
        ];
        let mut codec = WireCodec::new();
        // The kind byte sits directly after the 4-byte length prefix.
        let seen: Vec<u8> = sample_records()
            .iter()
            .map(|record| codec.encode(record)[4])
            .collect();
        for kind in declared {
            assert!(
                seen.contains(&kind),
                "declared kind {kind:#04x} is not produced by any sample record"
            );
        }
    }

    #[test]
    fn every_kind_roundtrips_through_the_slice_decoder() {
        let mut codec = WireCodec::new();
        let mut wire = Vec::new();
        for record in sample_records() {
            codec.encode_into(&record, &mut wire);
        }
        let mut offset = 0;
        let mut decoded = Vec::new();
        while let Some((record, used)) = codec.decode(&wire[offset..]).expect("valid frames") {
            decoded.push(record);
            offset += used;
        }
        assert_eq!(offset, wire.len());
        assert_eq!(decoded, sample_records());
    }

    #[test]
    fn record_reader_reframes_across_arbitrary_chunking() {
        struct DribbleReader {
            data: Vec<u8>,
            pos: usize,
            step: usize,
        }
        impl Read for DribbleReader {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                let n = self
                    .step
                    .min(out.len())
                    .min(self.data.len() - self.pos)
                    .min(1 + self.pos % 3);
                out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }

        let mut codec = WireCodec::new();
        let mut wire = Vec::new();
        for record in sample_records() {
            codec.encode_into(&record, &mut wire);
        }
        let mut reader = RecordReader::new(DribbleReader {
            data: wire,
            pos: 0,
            step: 7,
        });
        let mut decoded = Vec::new();
        while let Some(record) = reader.read_record().expect("valid frames") {
            decoded.push(record);
        }
        assert_eq!(decoded, sample_records());
    }

    #[test]
    fn borrowed_encoders_match_the_record_encoder() {
        let mut codec = WireCodec::new();
        let update = DictionaryUpdate {
            seq: 4,
            at: 17,
            op: UpdateOp::Install {
                id: 2,
                basis: BitVec::from_bytes(&[0x55; 8]),
            },
        };
        assert_eq!(
            codec.encode_payload(None, PacketType::Uncompressed, &[9, 8, 7]),
            codec.encode(&Record::Payload {
                packet_type: PacketType::Uncompressed,
                codec: None,
                bytes: vec![9, 8, 7],
            })
        );
        assert_eq!(
            codec.encode_payload(
                Some(zipline_engine::CODEC_DEFLATE),
                PacketType::Compressed,
                &[9, 8]
            ),
            codec.encode(&Record::Payload {
                packet_type: PacketType::Compressed,
                codec: Some(zipline_engine::CODEC_DEFLATE),
                bytes: vec![9, 8],
            })
        );
        assert_eq!(
            codec.encode_control(&update),
            codec.encode(&Record::Control(update.clone()))
        );
        assert_eq!(
            codec.encode_data(&[1, 2, 3]),
            codec.encode(&Record::Data(vec![1, 2, 3]))
        );
        assert_eq!(
            codec.encode_flow_payload(sample_key(), None, PacketType::Raw, &[4, 5]),
            codec.encode(&Record::FlowPayload {
                key: sample_key(),
                packet_type: PacketType::Raw,
                codec: None,
                bytes: vec![4, 5],
            })
        );
        assert_eq!(
            codec.encode_flow_payload(
                sample_key(),
                Some(zipline_engine::CODEC_GD),
                PacketType::Compressed,
                &[4]
            ),
            codec.encode(&Record::FlowPayload {
                key: sample_key(),
                packet_type: PacketType::Compressed,
                codec: Some(zipline_engine::CODEC_GD),
                bytes: vec![4],
            })
        );
        assert_eq!(
            codec.encode_flow_control(sample_key(), &update),
            codec.encode(&Record::FlowControl {
                key: sample_key(),
                update,
            })
        );
        assert_eq!(
            codec.encode_flow_data(sample_key(), &[6]),
            codec.encode(&Record::FlowData {
                key: sample_key(),
                bytes: vec![6],
            })
        );
    }

    /// A version-1 peer's hello decodes to `UnsupportedVersion` — the
    /// server answers with a typed `ERROR` record (covered end-to-end by
    /// the `flow_mux` suite) instead of crashing or mis-parsing.
    #[test]
    fn version_one_hellos_are_rejected() {
        // Hand-craft a v1 CLIENT_HELLO frame: magic + version 1 + stream
        // id + cursor (no multiplex byte — the v1 body).
        let mut body = vec![KIND_CLIENT_HELLO];
        body.extend_from_slice(&REQUEST_MAGIC);
        put_u16(&mut body, 1);
        put_u64(&mut body, 77);
        put_u64(&mut body, 0);
        let crc = WireCodec::new().crc.compute_bytes(&body) as u32;
        let mut frame = (body.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&crc.to_le_bytes());

        let codec = WireCodec::new();
        assert!(matches!(
            codec.decode(&frame),
            Err(WireError::UnsupportedVersion(1))
        ));

        // Same for a v1 SERVER_HELLO, so an old server is equally loud.
        let mut body = vec![KIND_SERVER_HELLO];
        body.extend_from_slice(&RESPONSE_MAGIC);
        put_u16(&mut body, 1);
        put_u64(&mut body, 0);
        put_u64(&mut body, 0);
        put_u64(&mut body, 0);
        body.push(0);
        let crc = WireCodec::new().crc.compute_bytes(&body) as u32;
        let mut frame = (body.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            codec.decode(&frame),
            Err(WireError::UnsupportedVersion(1))
        ));
    }

    /// A version-2 peer (pre-registry, no codec set) still connects: its
    /// exact historical hello body parses to a hello with an empty codec
    /// set, which the server treats as "fixed backend, untagged stream".
    #[test]
    fn version_two_hellos_are_accepted_with_an_empty_codec_set() {
        let codec = WireCodec::new();

        // Hand-craft the exact v2 CLIENT_HELLO body: magic + version 2 +
        // stream id + cursor + multiplex flag, nothing after.
        let mut body = vec![KIND_CLIENT_HELLO];
        body.extend_from_slice(&REQUEST_MAGIC);
        put_u16(&mut body, 2);
        put_u64(&mut body, 42);
        put_u64(&mut body, 5);
        body.push(1);
        let crc = WireCodec::new().crc.compute_bytes(&body) as u32;
        let mut frame = (body.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&crc.to_le_bytes());
        let (record, used) = codec
            .decode(&frame)
            .expect("v2 hello parses")
            .expect("whole");
        assert_eq!(used, frame.len());
        assert_eq!(
            record,
            Record::ClientHello(ClientHello {
                version: 2,
                stream_id: 42,
                entries_held: 5,
                multiplex: true,
                codecs: Vec::new(),
            })
        );

        // And the exact v2 SERVER_HELLO body.
        let mut body = vec![KIND_SERVER_HELLO];
        body.extend_from_slice(&RESPONSE_MAGIC);
        put_u16(&mut body, 2);
        put_u64(&mut body, 1024);
        put_u64(&mut body, 2);
        put_u64(&mut body, 1);
        body.push(0);
        let crc = WireCodec::new().crc.compute_bytes(&body) as u32;
        let mut frame = (body.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&crc.to_le_bytes());
        let (record, _) = codec
            .decode(&frame)
            .expect("v2 hello parses")
            .expect("whole");
        assert_eq!(
            record,
            Record::ServerHello(ServerHello {
                version: 2,
                resume_bytes_in: 1024,
                replay_entries: 2,
                reseed_entries: 1,
                warm: false,
                codecs: Vec::new(),
            })
        );

        // A hello encoded at version 2 through the codec produces the
        // same historical body shape — no codec-set suffix.
        let mut v2_codec = WireCodec::new();
        let encoded = v2_codec.encode(&Record::ClientHello(ClientHello {
            version: 2,
            stream_id: 42,
            entries_held: 5,
            multiplex: true,
            codecs: vec![zipline_engine::CODEC_GD],
        }));
        assert_eq!(encoded, frame_of_v2_client_hello());
    }

    fn frame_of_v2_client_hello() -> Vec<u8> {
        let mut body = vec![KIND_CLIENT_HELLO];
        body.extend_from_slice(&REQUEST_MAGIC);
        put_u16(&mut body, 2);
        put_u64(&mut body, 42);
        put_u64(&mut body, 5);
        body.push(1);
        let crc = WireCodec::new().crc.compute_bytes(&body) as u32;
        let mut frame = (body.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&body);
        frame.extend_from_slice(&crc.to_le_bytes());
        frame
    }

    /// A tagged payload naming a codec id outside the registry's range is
    /// a typed error, not a panic or a silent mis-decode.
    #[test]
    fn unknown_codec_tags_are_rejected_with_a_typed_error() {
        let mut codec = WireCodec::new();
        // Encode a valid tagged payload, then corrupt the codec id byte
        // (directly after the kind byte) to an unassigned value.
        let mut frame = codec.encode(&Record::Payload {
            packet_type: PacketType::Compressed,
            codec: Some(zipline_engine::CODEC_GD),
            bytes: vec![1, 2],
        });
        frame[5] = 0xEE;
        // Recompute the trailer CRC over the patched body so the frame
        // fails on the codec id, not the checksum.
        let body_end = frame.len() - 4;
        let crc = WireCodec::new().crc.compute_bytes(&frame[4..body_end]) as u32;
        frame[body_end..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            codec.decode(&frame),
            Err(WireError::UnknownCodec(0xEE))
        ));
    }

    #[test]
    fn zero_and_oversized_lengths_are_rejected() {
        let codec = WireCodec::new();
        let mut zero = vec![0u8; 8];
        zero[4] = KIND_END;
        assert!(matches!(
            codec.decode(&zero),
            Err(WireError::OversizedRecord(0))
        ));

        let huge = ((MAX_WIRE_RECORD_BYTES + 1) as u32).to_le_bytes().to_vec();
        assert!(matches!(
            codec.decode(&huge),
            Err(WireError::OversizedRecord(_))
        ));
    }
}
