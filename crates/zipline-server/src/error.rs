//! Typed error hierarchy for the server and client paths.
//!
//! Everything the subsystem can fail with folds into [`ServerError`]; engine
//! failures keep their [`EngineError`] identity so callers can still match on
//! the pipeline-level cause (worker loss, persistence, GD codec).

use std::fmt;
use std::io;

use zipline_engine::EngineError;

use crate::wire::WireError;

/// Result alias for the server crate.
pub type ServerResult<T> = Result<T, ServerError>;

/// Any failure on the server or client path.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServerError {
    /// The byte stream on the socket did not parse as wire records.
    Wire(WireError),
    /// The compression engine failed (codec, worker, or store).
    Engine(EngineError),
    /// Socket-level failure outside the codec.
    Io {
        /// What was being done when the error hit.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// Well-formed records in an order the protocol forbids.
    Protocol(String),
    /// A configuration value rejected at build time.
    Config(String),
    /// The peer reported a failure via an `ERROR` record.
    Remote(String),
    /// The peer vanished (clean close or reset) where the protocol still
    /// owed us records.
    Disconnected,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Wire(e) => write!(f, "wire protocol error: {e}"),
            ServerError::Engine(e) => write!(f, "engine error: {e}"),
            ServerError::Io { context, source } => write!(f, "i/o error while {context}: {source}"),
            ServerError::Protocol(what) => write!(f, "protocol violation: {what}"),
            ServerError::Config(what) => write!(f, "invalid configuration: {what}"),
            ServerError::Remote(message) => write!(f, "peer reported: {message}"),
            ServerError::Disconnected => write!(f, "peer disconnected mid-protocol"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Wire(e) => Some(e),
            ServerError::Engine(e) => Some(e),
            ServerError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<WireError> for ServerError {
    fn from(e: WireError) -> Self {
        ServerError::Wire(e)
    }
}

impl From<EngineError> for ServerError {
    fn from(e: EngineError) -> Self {
        ServerError::Engine(e)
    }
}

impl ServerError {
    /// Wraps an [`io::Error`] with the action that produced it.
    pub fn io(context: impl Into<String>, source: io::Error) -> Self {
        ServerError::Io {
            context: context.into(),
            source,
        }
    }
}
