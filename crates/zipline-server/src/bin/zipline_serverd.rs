//! `zipline-serverd` — the standalone ingest server.
//!
//! Binds the configured endpoint, serves until standard input closes (EOF,
//! `Ctrl-D`, or the supervisor closing the pipe), then shuts down
//! gracefully: in-flight streams drain, commit and receive `DONE` before
//! the process exits. Final counters go to standard error.
//!
//! ```text
//! zipline-serverd [--listen tcp://127.0.0.1:7641 | unix://PATH]
//!                 [--backend gd|deflate|hybrid|auto]
//!                 [--durable DIR] [--sync data]
//!                 [--batch-chunks N] [--pipeline-depth N]
//!                 [--writer-depth N] [--checkpoint-cadence N]
//! ```

use std::io::Read;
use std::process::ExitCode;

use zipline::host::HostPathConfig;
use zipline_engine::SyncPolicy;
use zipline_server::{BackendChoice, Endpoint, ServerConfig, ServerConfigBuilder, ServerHandle};

fn usage() -> ! {
    eprintln!(
        "usage: zipline-serverd [--listen ENDPOINT] [--backend gd|deflate|hybrid|auto]\n\
         \x20                      [--durable DIR] [--sync data|flush]\n\
         \x20                      [--batch-chunks N] [--pipeline-depth N]\n\
         \x20                      [--writer-depth N] [--checkpoint-cadence N]\n\
         ENDPOINT is tcp://host:port, unix://path or a bare host:port.\n\
         Serves until standard input closes, then shuts down gracefully."
    );
    std::process::exit(2);
}

struct Args {
    listen: String,
    config: ServerConfig,
}

fn parse_args() -> Args {
    let mut listen = "tcp://127.0.0.1:7641".to_string();
    let mut host = HostPathConfig::paper_default();
    let mut writer_depth = 256usize;
    let mut backend = BackendChoice::Gd;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| args.next().unwrap_or_else(|| usage_for(flag));
        match flag.as_str() {
            "--listen" => listen = value("--listen"),
            "--backend" => {
                let name = value("--backend");
                backend = BackendChoice::parse_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown backend {name:?} (expected gd, deflate, hybrid or auto)");
                    usage();
                })
            }
            "--durable" => host.durable = Some(value("--durable").into()),
            "--sync" => {
                host.sync = match value("--sync").as_str() {
                    "data" => SyncPolicy::Data,
                    "flush" => SyncPolicy::Flush,
                    other => {
                        eprintln!("unknown sync policy {other:?} (expected data or flush)");
                        usage();
                    }
                }
            }
            "--batch-chunks" => host.batch_chunks = numeric(&value("--batch-chunks")),
            "--pipeline-depth" => host.pipeline_depth = Some(numeric(&value("--pipeline-depth"))),
            "--checkpoint-cadence" => {
                host.checkpoint_cadence = numeric::<u64>(&value("--checkpoint-cadence"))
            }
            "--writer-depth" => writer_depth = numeric(&value("--writer-depth")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    let config = ServerConfigBuilder::new()
        .host(host)
        .writer_depth(writer_depth)
        .backend(backend)
        .build()
        .unwrap_or_else(|e| {
            eprintln!("zipline-serverd: {e}");
            std::process::exit(2);
        });
    Args { listen, config }
}

fn usage_for(flag: &str) -> String {
    eprintln!("{flag} needs a value");
    usage();
}

fn numeric<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{s:?} is not a valid number");
        usage();
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    let endpoint = match Endpoint::parse(&args.listen) {
        Ok(endpoint) => endpoint,
        Err(e) => {
            eprintln!("zipline-serverd: {e}");
            return ExitCode::from(2);
        }
    };
    let handle = match endpoint {
        Endpoint::Tcp(addr) => ServerHandle::bind_tcp(addr, args.config),
        #[cfg(unix)]
        Endpoint::Unix(path) => ServerHandle::bind_uds(path, args.config),
    };
    let handle = match handle {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("zipline-serverd: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("zipline-serverd: listening on {}", handle.endpoint());

    // Serve until standard input closes — the no-dependency stand-in for
    // signal handling that works identically under a supervisor, a test
    // harness and an interactive shell.
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin().lock();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}

    eprintln!("zipline-serverd: stdin closed, shutting down gracefully");
    let report = handle.shutdown();
    let stats = report.stats;
    eprintln!(
        "zipline-serverd: {} connections, {} streams completed, {} failed",
        stats.connections, stats.streams_completed, stats.failed_streams
    );
    eprintln!(
        "zipline-serverd: {} records / {} bytes in, {} payloads / {} controls / {} bytes out, {} replayed",
        stats.records_in,
        stats.bytes_in,
        stats.payloads_out,
        stats.controls_out,
        stats.bytes_out,
        stats.replayed_entries
    );
    for error in &report.errors {
        eprintln!("zipline-serverd: stream error: {error}");
    }
    if report.errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
