//! `zipline-load` — the closed-loop load generator.
//!
//! Drives N concurrent client connections per workload against a
//! `zipline-serverd` instance (`--connect`) or against an in-process server
//! spawned on a loopback socket (`--spawn`, the default — the
//! single-command smoke mode CI uses), and prints one summary line per
//! workload: throughput, records/s, compression ratio and p50/p99/p999
//! closed-loop record latency.
//!
//! ```text
//! zipline-load [--connect ENDPOINT | --spawn tcp|uds]
//!              [--backend gd|deflate|hybrid|auto]
//!              [--workloads sensor,dns,flows,churn] [--connections N]
//!              [--flows N] [--tenants N]
//!              [--chunks N] [--window-chunks N] [--batch-chunks N]
//!              [--durable DIR] [--sync data]
//! ```
//!
//! `--flows N` switches to the **multiplexed** mode: each connection opens
//! one multiplexed session carrying N tenant-scoped flows (zipf-skewed
//! tenant popularity, interleaved sensor/DNS/churn styles from
//! `ManyFlowsWorkload`) and the report adds one throughput/ratio line per
//! tenant.

use std::process::ExitCode;

use zipline::host::HostPathConfig;
use zipline_engine::SyncPolicy;
use zipline_server::{
    run_closed_loop, run_multiplexed, BackendChoice, Endpoint, LoadConfig, ServerConfigBuilder,
    ServerHandle,
};
use zipline_traces::{
    ChunkWorkload, ChurnWorkload, ChurnWorkloadConfig, DnsWorkload, DnsWorkloadConfig,
    FlowMixConfig, FlowMixWorkload, ManyFlowsConfig, ManyFlowsWorkload, SensorWorkload,
    SensorWorkloadConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage: zipline-load [--connect ENDPOINT | --spawn tcp|uds]\n\
         \x20                   [--backend gd|deflate|hybrid|auto]\n\
         \x20                   [--workloads sensor,dns,flows,churn] [--connections N]\n\
         \x20                   [--flows N] [--tenants N]\n\
         \x20                   [--chunks N] [--window-chunks N] [--batch-chunks N]\n\
         \x20                   [--durable DIR] [--sync data|flush]\n\
         Default: --spawn tcp --backend gd --workloads sensor,dns --connections 2.\n\
         --backend also shapes the ack accounting when connecting out, so\n\
         pass the server's backend with --connect.\n\
         --flows N drives N multiplexed flows per connection instead of\n\
         the named workloads and reports per-tenant lines."
    );
    std::process::exit(2);
}

struct Args {
    connect: Option<String>,
    spawn_uds: bool,
    workloads: Vec<String>,
    connections: usize,
    flows: Option<usize>,
    tenants: Option<usize>,
    chunks: Option<usize>,
    window_chunks: usize,
    host: HostPathConfig,
    backend: BackendChoice,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        connect: None,
        spawn_uds: false,
        workloads: vec!["sensor".into(), "dns".into()],
        connections: 2,
        flows: None,
        tenants: None,
        chunks: None,
        window_chunks: 512,
        host: HostPathConfig::paper_default(),
        backend: BackendChoice::Gd,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage();
            })
        };
        match flag.as_str() {
            "--connect" => parsed.connect = Some(value("--connect")),
            "--spawn" => {
                parsed.spawn_uds = match value("--spawn").as_str() {
                    "tcp" => false,
                    "uds" => true,
                    other => {
                        eprintln!("unknown transport {other:?} (expected tcp or uds)");
                        usage();
                    }
                }
            }
            "--workloads" => {
                parsed.workloads = value("--workloads")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect()
            }
            "--backend" => {
                let name = value("--backend");
                parsed.backend = BackendChoice::parse_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown backend {name:?} (expected gd, deflate, hybrid or auto)");
                    usage();
                })
            }
            "--connections" => parsed.connections = numeric(&value("--connections")),
            "--flows" => parsed.flows = Some(numeric(&value("--flows"))),
            "--tenants" => parsed.tenants = Some(numeric(&value("--tenants"))),
            "--chunks" => parsed.chunks = Some(numeric(&value("--chunks"))),
            "--window-chunks" => parsed.window_chunks = numeric(&value("--window-chunks")),
            "--batch-chunks" => parsed.host.batch_chunks = numeric(&value("--batch-chunks")),
            "--durable" => parsed.host.durable = Some(value("--durable").into()),
            "--sync" => {
                parsed.host.sync = match value("--sync").as_str() {
                    "data" => SyncPolicy::Data,
                    "flush" => SyncPolicy::Flush,
                    other => {
                        eprintln!("unknown sync policy {other:?} (expected data or flush)");
                        usage();
                    }
                }
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    if parsed.connections == 0 || parsed.workloads.is_empty() {
        usage();
    }
    parsed
}

fn numeric<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("{s:?} is not a valid number");
        usage();
    })
}

/// One boxed workload per connection; seeds vary per connection so the
/// streams are distinct but deterministic.
fn build_workloads(
    name: &str,
    connections: usize,
    chunks: Option<usize>,
    host: &HostPathConfig,
) -> Option<Vec<Box<dyn ChunkWorkload + Send>>> {
    let mut out: Vec<Box<dyn ChunkWorkload + Send>> = Vec::with_capacity(connections);
    for conn in 0..connections as u64 {
        let boxed: Box<dyn ChunkWorkload + Send> = match name {
            "sensor" => {
                let mut config = SensorWorkloadConfig::small();
                config.seed = config.seed.wrapping_add(conn);
                if let Some(chunks) = chunks {
                    config.chunks = chunks;
                }
                Box::new(SensorWorkload::new(config))
            }
            "dns" => {
                let mut config = DnsWorkloadConfig::small();
                config.seed = config.seed.wrapping_add(conn);
                if let Some(chunks) = chunks {
                    config.queries = chunks;
                }
                Box::new(DnsWorkload::new(config))
            }
            "flows" => {
                let mut config = FlowMixConfig::small_with_seed(0x5A1F_F10E + conn);
                if let Some(chunks) = chunks {
                    config.chunks = chunks;
                }
                Box::new(FlowMixWorkload::new(config))
            }
            "churn" => {
                // Enough distinct bases to overflow a small dictionary; the
                // paper-default 2^15-entry table needs --chunks to be pushed
                // far higher than a smoke run, so cap the pattern space.
                let capacity = host.engine.gd.dictionary_capacity().min(8192);
                let mut config = ChurnWorkloadConfig::exceeding_capacity(
                    capacity,
                    2,
                    host.engine.gd.chunk_bytes,
                );
                if let Some(chunks) = chunks {
                    config.distinct = ((chunks / 2).max(1) as u32).min(1 << 16);
                }
                Box::new(ChurnWorkload::new(config))
            }
            _ => return None,
        };
        out.push(boxed);
    }
    Some(out)
}

fn main() -> ExitCode {
    let args = parse_args();

    // Either connect out, or spawn the server in-process on loopback.
    let mut spawned: Option<ServerHandle> = None;
    let endpoint = match &args.connect {
        Some(s) => match Endpoint::parse(s) {
            Ok(endpoint) => endpoint,
            Err(e) => {
                eprintln!("zipline-load: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let config = match ServerConfigBuilder::new()
                .host(args.host.clone())
                .backend(args.backend)
                .build()
            {
                Ok(config) => config,
                Err(e) => {
                    eprintln!("zipline-load: {e}");
                    return ExitCode::from(2);
                }
            };
            let handle = if args.spawn_uds {
                #[cfg(unix)]
                {
                    let path = std::env::temp_dir()
                        .join(format!("zipline-load-{}.sock", std::process::id()));
                    ServerHandle::bind_uds(path, config)
                }
                #[cfg(not(unix))]
                {
                    eprintln!("zipline-load: --spawn uds needs a unix platform");
                    return ExitCode::from(2);
                }
            } else {
                ServerHandle::bind_tcp("127.0.0.1:0", config)
            };
            match handle {
                Ok(handle) => {
                    eprintln!("zipline-load: spawned server on {}", handle.endpoint());
                    let endpoint = handle.endpoint().clone();
                    spawned = Some(handle);
                    endpoint
                }
                Err(e) => {
                    eprintln!("zipline-load: spawning server: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let load = LoadConfig {
        connections: args.connections,
        window_chunks: args.window_chunks,
        chunk_bytes: args.host.engine.gd.chunk_bytes,
        batch_chunks: args.host.batch_chunks,
        backend: args.backend,
    };

    let mut failed = false;
    if let Some(flows) = args.flows {
        // Multiplexed mode: one session per connection, `flows` tenant-scoped
        // flows each; connections share tenants but get disjoint flow ids.
        let mut mixes = Vec::with_capacity(args.connections);
        for conn in 0..args.connections as u64 {
            let mut config = ManyFlowsConfig::small_with_seed(0x0F10_3535 ^ (conn << 8));
            config.flows = flows;
            config.tenants = args.tenants.unwrap_or(config.tenants.min(flows));
            config.chunk_len = args.host.engine.gd.chunk_bytes.max(32);
            if let Some(chunks) = args.chunks {
                config.chunks = chunks;
            }
            mixes.push(ManyFlowsWorkload::new(config));
        }
        match run_multiplexed(&endpoint, &load, "multiflow", mixes) {
            Ok(report) => {
                println!("{}", report.format_line());
                for line in report.format_tenant_lines() {
                    println!("{line}");
                }
            }
            Err(e) => {
                eprintln!("zipline-load: multiplexed run: {e}");
                failed = true;
            }
        }
    } else {
        run_named_workloads(&args, &endpoint, &load, &mut failed);
    }

    if let Some(handle) = spawned {
        let report = handle.shutdown();
        if !report.errors.is_empty() {
            for error in &report.errors {
                eprintln!("zipline-load: server stream error: {error}");
            }
            failed = true;
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The classic single-stream-per-connection mode: one closed loop per named
/// workload.
fn run_named_workloads(args: &Args, endpoint: &Endpoint, load: &LoadConfig, failed: &mut bool) {
    for (index, name) in args.workloads.iter().enumerate() {
        let Some(workloads) = build_workloads(name, args.connections, args.chunks, &args.host)
        else {
            eprintln!("zipline-load: unknown workload {name:?}");
            *failed = true;
            continue;
        };
        // Distinct id range per workload so durable stream directories
        // never collide across workloads or reruns in one process.
        let base_stream_id = 0x10AD_0000 + ((index as u64) << 12);
        match run_closed_loop(endpoint, load, name.clone(), base_stream_id, workloads) {
            Ok(report) => println!("{}", report.format_line()),
            Err(e) => {
                eprintln!("zipline-load: workload {name}: {e}");
                *failed = true;
            }
        }
    }
}
