//! Transport plumbing shared by the server and client: one [`Conn`] type
//! that is either a TCP or a Unix-domain stream, plus the matching listener
//! and address types. Keeping the enum here lets every other module stay
//! transport-agnostic.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

use crate::error::{ServerError, ServerResult};

/// Where a server listens / a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP socket address.
    Tcp(SocketAddr),
    /// Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `tcp://host:port`, `unix://path` or a bare `host:port`
    /// (assumed TCP) — the inverse of [`Display`](fmt::Display).
    pub fn parse(s: &str) -> ServerResult<Self> {
        let tcp = |addr: &str| {
            addr.to_socket_addrs()
                .map_err(|e| ServerError::io(format!("resolving {addr}"), e))?
                .next()
                .map(Endpoint::Tcp)
                .ok_or_else(|| ServerError::Protocol(format!("{addr} resolves to no address")))
        };
        if let Some(addr) = s.strip_prefix("tcp://") {
            tcp(addr)
        } else if let Some(path) = s.strip_prefix("unix://") {
            #[cfg(unix)]
            {
                Ok(Endpoint::Unix(PathBuf::from(path)))
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                Err(ServerError::Protocol(
                    "unix:// endpoints need a unix platform".into(),
                ))
            }
        } else {
            tcp(s)
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp://{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix://{}", path.display()),
        }
    }
}

/// One accepted or dialed byte-stream connection.
pub(crate) enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    pub(crate) fn connect(endpoint: &Endpoint) -> ServerResult<Self> {
        match endpoint {
            Endpoint::Tcp(addr) => {
                let stream = TcpStream::connect(addr)
                    .map_err(|e| ServerError::io(format!("connecting to {addr}"), e))?;
                stream
                    .set_nodelay(true)
                    .map_err(|e| ServerError::io("setting TCP_NODELAY", e))?;
                Ok(Conn::Tcp(stream))
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let stream = UnixStream::connect(path)
                    .map_err(|e| ServerError::io(format!("connecting to {}", path.display()), e))?;
                Ok(Conn::Unix(stream))
            }
        }
    }

    pub(crate) fn try_clone(&self) -> ServerResult<Self> {
        match self {
            Conn::Tcp(s) => s
                .try_clone()
                .map(Conn::Tcp)
                .map_err(|e| ServerError::io("cloning TCP stream", e)),
            #[cfg(unix)]
            Conn::Unix(s) => s
                .try_clone()
                .map(Conn::Unix)
                .map_err(|e| ServerError::io("cloning Unix stream", e)),
        }
    }

    /// Half- or full-closes the socket; errors are ignored (the peer may
    /// already be gone, which is exactly what shutdown wants to ensure).
    pub(crate) fn shutdown(&self, how: Shutdown) {
        match self {
            Conn::Tcp(s) => drop(s.shutdown(how)),
            #[cfg(unix)]
            Conn::Unix(s) => drop(s.shutdown(how)),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Listening socket for either transport.
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    pub(crate) fn bind_tcp(addr: impl ToSocketAddrs) -> ServerResult<Self> {
        let listener =
            TcpListener::bind(addr).map_err(|e| ServerError::io("binding TCP listener", e))?;
        Ok(Listener::Tcp(listener))
    }

    #[cfg(unix)]
    pub(crate) fn bind_unix(path: impl Into<PathBuf>) -> ServerResult<Self> {
        let path = path.into();
        // A stale socket file from a previous (crashed) run would otherwise
        // make rebinding fail with AddrInUse even though nobody listens.
        if path.exists() {
            std::fs::remove_file(&path)
                .map_err(|e| ServerError::io("removing stale socket file", e))?;
        }
        let listener =
            UnixListener::bind(&path).map_err(|e| ServerError::io("binding Unix listener", e))?;
        Ok(Listener::Unix(listener, path))
    }

    pub(crate) fn set_nonblocking(&self, on: bool) -> ServerResult<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(on),
            #[cfg(unix)]
            Listener::Unix(l, _) => l.set_nonblocking(on),
        }
        .map_err(|e| ServerError::io("toggling listener blocking mode", e))
    }

    /// One nonblocking accept attempt; `Ok(None)` means no pending peer.
    pub(crate) fn accept(&self) -> io::Result<Option<Conn>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    stream.set_nodelay(true)?;
                    Ok(Some(Conn::Tcp(stream)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Listener::Unix(l, _) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    Ok(Some(Conn::Unix(stream)))
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }

    pub(crate) fn endpoint(&self) -> ServerResult<Endpoint> {
        match self {
            Listener::Tcp(l) => l
                .local_addr()
                .map(Endpoint::Tcp)
                .map_err(|e| ServerError::io("reading listener address", e)),
            #[cfg(unix)]
            Listener::Unix(_, path) => Ok(Endpoint::Unix(path.clone())),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            drop(std::fs::remove_file(path));
        }
    }
}
