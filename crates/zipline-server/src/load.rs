//! Closed-loop load harness: N concurrent client connections, each keeping
//! a bounded window of unacknowledged input bytes in flight against the
//! server and timing how long every record takes to come back restored.
//!
//! # Closed loop, byte-based windowing
//!
//! Each connection sends input records while `sent_bytes - acked_bytes`
//! stays below the window; each non-raw payload from the server
//! acknowledges one engine chunk's worth of input. Latency is recorded per
//! input record: the clock starts when the record is sent and stops when
//! the cumulative acknowledged bytes cover it. The window must be at least
//! one engine batch (the server compresses whole batches, so a smaller
//! window would deadlock the loop) — [`LoadConfig::effective_window_chunks`]
//! enforces the floor.

use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use zipline_engine::{CodecId, FlowKey, CODEC_GD, CODEC_PASSTHROUGH};
use zipline_traces::{ChunkWorkload, ManyFlowsWorkload};

use crate::client::{ClientSession, ServerEvent};
use crate::error::{ServerError, ServerResult};
use crate::histogram::LatencyHistogram;
use crate::net::Endpoint;
use crate::server::BackendChoice;
use crate::wire::DoneSummary;
use zipline_gd::packet::PacketType;

/// Shape of one closed-loop run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent connections (one stream each).
    pub connections: usize,
    /// Window of unacknowledged input, in engine chunks.
    pub window_chunks: usize,
    /// Engine chunk size in bytes (must match the server's engine; the
    /// acknowledgement accounting is in these units).
    pub chunk_bytes: usize,
    /// Engine batch size in chunks (the window floor; must match the
    /// server's [`ServerConfig::host`](crate::ServerConfig)).
    pub batch_chunks: usize,
    /// Backend the server is running (must match the server's
    /// [`ServerConfig::backend`](crate::ServerConfig)); drives the
    /// acknowledgement accounting — container backends answer a whole
    /// batch per payload, GD answers per chunk.
    pub backend: BackendChoice,
}

impl LoadConfig {
    /// A small shape suitable for smoke runs: 2 connections, 32-byte
    /// chunks, 256-chunk batches, 512-chunk window, GD backend.
    pub fn smoke() -> Self {
        Self {
            connections: 2,
            window_chunks: 512,
            chunk_bytes: 32,
            batch_chunks: 256,
            backend: BackendChoice::Gd,
        }
    }

    /// The window actually used: never below one batch (see module docs).
    pub fn effective_window_chunks(&self) -> usize {
        self.window_chunks.max(self.batch_chunks)
    }
}

/// Aggregated outcome of one closed-loop run.
#[derive(Debug)]
pub struct LoadReport {
    /// Label of the workload that was driven.
    pub workload: String,
    /// Connections that ran.
    pub connections: usize,
    /// Input bytes sent across all connections.
    pub bytes_sent: u64,
    /// Input records sent across all connections.
    pub records_sent: u64,
    /// Payload records received (raw tail included).
    pub payloads: u64,
    /// Control + reseed records received.
    pub control_updates: u64,
    /// Wire bytes the server reported emitting (sum of `Done` summaries).
    pub wire_bytes: u64,
    /// Wall-clock of the slowest connection (they run concurrently).
    pub elapsed: Duration,
    /// Per-record closed-loop latency across all connections.
    pub latency: LatencyHistogram,
    /// Per-tenant totals (multiplexed runs; empty on single-stream runs).
    pub tenants: Vec<TenantLine>,
}

/// Per-tenant totals of a multiplexed run, folded from the flows'
/// `FLOW_DONE` summaries.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantLine {
    /// The tenant.
    pub tenant: u64,
    /// Flows of this tenant that completed.
    pub flows: u64,
    /// Input bytes the tenant's flows consumed.
    pub bytes_in: u64,
    /// Wire bytes the tenant's flows emitted.
    pub wire_bytes: u64,
}

impl TenantLine {
    /// Compression ratio of the tenant's flows (input / wire bytes).
    pub fn ratio(&self) -> f64 {
        if self.wire_bytes == 0 {
            return 0.0;
        }
        self.bytes_in as f64 / self.wire_bytes as f64
    }

    /// Tenant throughput over the run's wall clock, in MB/s.
    pub fn throughput_mbps(&self, elapsed: Duration) -> f64 {
        if elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.bytes_in as f64 / 1e6 / elapsed.as_secs_f64()
    }
}

impl LoadReport {
    /// Input megabytes per second over the run's wall clock.
    pub fn throughput_mbps(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.bytes_sent as f64 / 1e6 / self.elapsed.as_secs_f64()
    }

    /// Input records per second over the run's wall clock.
    pub fn records_per_sec(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.records_sent as f64 / self.elapsed.as_secs_f64()
    }

    /// Compression ratio the server reported (input / wire bytes).
    pub fn ratio(&self) -> f64 {
        if self.wire_bytes == 0 {
            return 0.0;
        }
        self.bytes_sent as f64 / self.wire_bytes as f64
    }

    /// One human-readable line per tenant (multiplexed runs only).
    pub fn format_tenant_lines(&self) -> Vec<String> {
        self.tenants
            .iter()
            .map(|line| {
                format!(
                    "  tenant {:#06x}  {:>4} flows  {:>8.2} MB/s  ratio {:>5.2}",
                    line.tenant,
                    line.flows,
                    line.throughput_mbps(self.elapsed),
                    line.ratio(),
                )
            })
            .collect()
    }

    /// One human-readable summary line.
    pub fn format_line(&self) -> String {
        format!(
            "{:<10} {} conns  {:>8.2} MB/s  {:>9.0} rec/s  ratio {:>5.2}  p50 {:>7}  p99 {:>7}  p999 {:>7}  max {:>7}",
            self.workload,
            self.connections,
            self.throughput_mbps(),
            self.records_per_sec(),
            self.ratio(),
            format_ns(self.latency.quantile(0.50)),
            format_ns(self.latency.quantile(0.99)),
            format_ns(self.latency.quantile(0.999)),
            format_ns(self.latency.max_ns()),
        )
    }
}

/// Pretty-prints nanoseconds with an adaptive unit.
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Outcome of one connection's closed loop.
struct ConnOutcome {
    bytes_sent: u64,
    records_sent: u64,
    payloads: u64,
    control_updates: u64,
    wire_bytes: u64,
    elapsed: Duration,
    latency: LatencyHistogram,
    tenants: BTreeMap<u64, TenantLine>,
}

/// Per-connection closed-loop state machine over the event stream.
struct Driver {
    chunk_bytes: u64,
    batch_bytes: u64,
    /// The stream's fixed backend emits whole-batch containers (deflate,
    /// hybrid), so untagged payloads ack a batch, not a chunk.
    container_default: bool,
    acked: u64,
    pending: VecDeque<(u64, Instant)>,
    latency: LatencyHistogram,
    payloads: u64,
    control_updates: u64,
    done: Option<DoneSummary>,
    tenants: BTreeMap<u64, TenantLine>,
}

impl Driver {
    fn new(config: &LoadConfig) -> Self {
        Self {
            chunk_bytes: config.chunk_bytes as u64,
            batch_bytes: (config.chunk_bytes as u64) * (config.batch_chunks as u64),
            container_default: matches!(
                config.backend,
                BackendChoice::Deflate | BackendChoice::Hybrid
            ),
            acked: 0,
            pending: VecDeque::new(),
            latency: LatencyHistogram::new(),
            payloads: 0,
            control_updates: 0,
            done: None,
            tenants: BTreeMap::new(),
        }
    }

    /// Accounts one restored payload against the byte window. Acks are
    /// cumulative across flows on a multiplexed connection, so latency is
    /// measured on the aggregate loop, not per flow.
    ///
    /// A container payload (deflate/hybrid member, whether the stream's
    /// fixed backend or a per-batch codec tag says so) restores a whole
    /// engine batch; the final partial batch over-credits, which only
    /// closes the window early on a loop that has already sent everything.
    fn ack_payload(&mut self, codec: Option<CodecId>, packet_type: PacketType, bytes: &[u8]) {
        self.payloads += 1;
        let container = match codec {
            Some(id) => id != CODEC_GD && id != CODEC_PASSTHROUGH,
            None => self.container_default,
        };
        let credit = if container {
            self.batch_bytes
        } else {
            match packet_type {
                // A raw payload carries its own bytes verbatim — the
                // flush tail, shorter than a chunk; account exactly.
                PacketType::Raw => bytes.len() as u64,
                // Compressed/uncompressed payloads each restore one
                // engine chunk of input.
                _ => self.chunk_bytes,
            }
        };
        self.acked = self.acked.saturating_add(credit);
        let now = Instant::now();
        while let Some(&(cum, sent_at)) = self.pending.front() {
            if cum <= self.acked {
                self.latency.record(now.duration_since(sent_at));
                self.pending.pop_front();
            } else {
                break;
            }
        }
    }

    fn on_event(&mut self, event: ServerEvent) -> ServerResult<()> {
        match event {
            ServerEvent::Payload {
                packet_type,
                codec,
                bytes,
            }
            | ServerEvent::FlowPayload {
                packet_type,
                codec,
                bytes,
                ..
            } => {
                self.ack_payload(codec, packet_type, &bytes);
                Ok(())
            }
            ServerEvent::Control(_)
            | ServerEvent::Reseed(_)
            | ServerEvent::FlowControl { .. }
            | ServerEvent::FlowReseed { .. } => {
                self.control_updates += 1;
                Ok(())
            }
            // The resume plan arrives in order before the flow's records;
            // the load loop always opens cold, so there is nothing to do.
            ServerEvent::FlowOpened { .. } => Ok(()),
            ServerEvent::FlowDone { key, summary } => {
                let line = self.tenants.entry(key.tenant).or_default();
                line.tenant = key.tenant;
                line.flows += 1;
                line.bytes_in += summary.bytes_in;
                line.wire_bytes += summary.wire_bytes;
                Ok(())
            }
            ServerEvent::Done(done) => {
                self.done = Some(done);
                Ok(())
            }
            ServerEvent::ServerError(message) => Err(ServerError::Remote(message)),
            ServerEvent::Hello(_) => Err(ServerError::Protocol(
                "second SERVER_HELLO mid-stream".into(),
            )),
        }
    }
}

/// Runs one connection's closed loop to completion.
fn drive_connection(
    endpoint: &Endpoint,
    config: &LoadConfig,
    workload: &dyn ChunkWorkload,
    stream_id: u64,
) -> ServerResult<ConnOutcome> {
    let window_bytes = (config.effective_window_chunks() * config.chunk_bytes) as u64;
    let mut session = ClientSession::connect(endpoint)?;
    session.hello(stream_id, 0)?;

    let start = Instant::now();
    let mut driver = Driver::new(config);
    let mut sent = 0u64;
    let mut records_sent = 0u64;

    for chunk in workload.chunks() {
        while sent.saturating_sub(driver.acked) >= window_bytes {
            match session.next_event() {
                Some(event) => driver.on_event(event)?,
                None => return Err(ServerError::Disconnected),
            }
        }
        session.send_data(&chunk)?;
        sent += chunk.len() as u64;
        records_sent += 1;
        driver.pending.push_back((sent, Instant::now()));
        while let Some(event) = session.try_event() {
            driver.on_event(event)?;
        }
    }
    session.end()?;
    let done = loop {
        if let Some(done) = driver.done.take() {
            break done;
        }
        match session.next_event() {
            Some(event) => driver.on_event(event)?,
            None => return Err(ServerError::Disconnected),
        }
    };
    let elapsed = start.elapsed();
    Ok(ConnOutcome {
        bytes_sent: sent,
        records_sent,
        payloads: driver.payloads,
        control_updates: driver.control_updates,
        wire_bytes: done.wire_bytes,
        elapsed,
        latency: driver.latency,
        tenants: driver.tenants,
    })
}

/// Runs one multiplexed connection's closed loop to completion: every flow
/// of `mix` opens up front on one socket, then the interleaved flow chunks
/// stream under one aggregate byte window.
///
/// The window floor is one engine batch **per flow**: each flow buffers a
/// whole batch server-side before any of its payloads come back, so a
/// smaller aggregate window could deadlock with every flow mid-batch.
fn drive_multiplexed(
    endpoint: &Endpoint,
    config: &LoadConfig,
    mix: &ManyFlowsWorkload,
    flow_base: u64,
) -> ServerResult<ConnOutcome> {
    let keys: Vec<FlowKey> = mix
        .keys()
        .into_iter()
        .map(|(tenant, flow)| FlowKey::new(tenant, flow_base + flow))
        .collect();
    let floor_chunks = config.batch_chunks.saturating_mul(keys.len());
    let window_chunks = config.effective_window_chunks().max(floor_chunks);
    let window_bytes = (window_chunks * config.chunk_bytes) as u64;

    let mut session = ClientSession::connect(endpoint)?;
    session.hello_multiplex()?;
    for &key in &keys {
        session.open_flow(key, 0)?;
    }

    let start = Instant::now();
    let mut driver = Driver::new(config);
    let mut sent = 0u64;
    let mut records_sent = 0u64;

    for chunk in mix.events() {
        while sent.saturating_sub(driver.acked) >= window_bytes {
            match session.next_event() {
                Some(event) => driver.on_event(event)?,
                None => return Err(ServerError::Disconnected),
            }
        }
        let key = FlowKey::new(chunk.tenant, flow_base + chunk.flow);
        session.send_flow_data(key, &chunk.bytes)?;
        sent += chunk.bytes.len() as u64;
        records_sent += 1;
        driver.pending.push_back((sent, Instant::now()));
        while let Some(event) = session.try_event() {
            driver.on_event(event)?;
        }
    }
    for &key in &keys {
        session.end_flow(key)?;
    }
    session.end()?;
    let done = loop {
        if let Some(done) = driver.done.take() {
            break done;
        }
        match session.next_event() {
            Some(event) => driver.on_event(event)?,
            None => return Err(ServerError::Disconnected),
        }
    };
    let elapsed = start.elapsed();
    Ok(ConnOutcome {
        bytes_sent: sent,
        records_sent,
        payloads: driver.payloads,
        control_updates: driver.control_updates,
        wire_bytes: done.wire_bytes,
        elapsed,
        latency: driver.latency,
        tenants: driver.tenants,
    })
}

/// Drives `workloads.len()` concurrent connections (one workload each)
/// against `endpoint` and aggregates the outcome. Stream ids are
/// `base_stream_id + index`.
pub fn run_closed_loop(
    endpoint: &Endpoint,
    config: &LoadConfig,
    label: impl Into<String>,
    base_stream_id: u64,
    workloads: Vec<Box<dyn ChunkWorkload + Send>>,
) -> ServerResult<LoadReport> {
    assert!(
        !workloads.is_empty(),
        "closed loop needs at least one workload"
    );
    let connections = workloads.len();
    let (tx, rx) = mpsc::channel();
    thread::scope(|scope| {
        for (index, workload) in workloads.into_iter().enumerate() {
            let tx = tx.clone();
            let endpoint = endpoint.clone();
            let config = config.clone();
            scope.spawn(move || {
                let outcome = drive_connection(
                    &endpoint,
                    &config,
                    workload.as_ref(),
                    base_stream_id + index as u64,
                );
                drop(tx.send(outcome));
            });
        }
    });
    drop(tx);

    aggregate_outcomes(label, connections, rx)
}

/// Drives `mixes.len()` concurrent **multiplexed** connections (one
/// [`ManyFlowsWorkload`] each, all of its flows on one socket) against
/// `endpoint` and aggregates the outcome, including per-tenant totals.
/// Connections share the tenant space but get disjoint flow-id ranges, so
/// the per-tenant lines aggregate across sockets while no flow is ever
/// claimed twice.
pub fn run_multiplexed(
    endpoint: &Endpoint,
    config: &LoadConfig,
    label: impl Into<String>,
    mixes: Vec<ManyFlowsWorkload>,
) -> ServerResult<LoadReport> {
    assert!(!mixes.is_empty(), "multiplexed loop needs at least one mix");
    let connections = mixes.len();
    let (tx, rx) = mpsc::channel();
    thread::scope(|scope| {
        for (index, mix) in mixes.iter().enumerate() {
            let tx = tx.clone();
            let endpoint = endpoint.clone();
            let config = config.clone();
            let flow_base = (index as u64) << 32;
            scope.spawn(move || {
                let outcome = drive_multiplexed(&endpoint, &config, mix, flow_base);
                drop(tx.send(outcome));
            });
        }
    });
    drop(tx);
    aggregate_outcomes(label, connections, rx)
}

/// Folds per-connection outcomes into one [`LoadReport`].
fn aggregate_outcomes(
    label: impl Into<String>,
    connections: usize,
    rx: mpsc::Receiver<ServerResult<ConnOutcome>>,
) -> ServerResult<LoadReport> {
    let mut tenants: BTreeMap<u64, TenantLine> = BTreeMap::new();
    let mut report = LoadReport {
        workload: label.into(),
        connections,
        bytes_sent: 0,
        records_sent: 0,
        payloads: 0,
        control_updates: 0,
        wire_bytes: 0,
        elapsed: Duration::ZERO,
        latency: LatencyHistogram::new(),
        tenants: Vec::new(),
    };
    for outcome in rx {
        let outcome = outcome?;
        report.bytes_sent += outcome.bytes_sent;
        report.records_sent += outcome.records_sent;
        report.payloads += outcome.payloads;
        report.control_updates += outcome.control_updates;
        report.wire_bytes += outcome.wire_bytes;
        report.elapsed = report.elapsed.max(outcome.elapsed);
        report.latency.merge(&outcome.latency);
        for (tenant, line) in outcome.tenants {
            let entry = tenants.entry(tenant).or_default();
            entry.tenant = tenant;
            entry.flows += line.flows;
            entry.bytes_in += line.bytes_in;
            entry.wire_bytes += line.wire_bytes;
        }
    }
    report.tenants = tenants.into_values().collect();
    Ok(report)
}
