//! The ingest server: accept loop, per-connection pipelined streams, the
//! ordered response writer, and graceful shutdown.
//!
//! # Connection lifecycle
//!
//! An accepted connection serves either **one stream** (the classic path)
//! or, when the client's hello sets the multiplex flag, **many flows over
//! one socket** (the [`zipline_flow`] path):
//!
//! 1. The client opens with `CLIENT_HELLO` (stream id + replay cursor).
//! 2. The server builds one engine for the stream — durable under
//!    `<root>/tenant-<id>/stream-<id>` when [`HostPathConfig::durable`] is
//!    set — answers with `SERVER_HELLO`, replays any committed journal
//!    entries past the client's cursor, and streams synthesized `RESEED`
//!    installs when the journal was compacted away.
//! 3. `DATA` records feed a [`PipelinedStream`]; every emitted payload and
//!    control update is framed and handed to the **ordered writer** (below).
//! 4. `END` (or a graceful server shutdown) drains in-flight batches,
//!    commits, compacts the journal, and answers with `DONE`.
//!
//! # Multiplexed connections
//!
//! With the multiplex flag, the connection carries a [`FlowRouter`]: every
//! `FLOW_OPEN` places one flow onto its tenant's partition pool (own engine,
//! own dictionary namespace, own durable directory), `FLOW_DATA` records
//! route by flow key, and every emission leaves flow-tagged
//! (`FLOW_PAYLOAD`/`FLOW_CONTROL`). The single ordered writer preserves each
//! flow's controls-strictly-before-dependent-payloads invariant because the
//! router drains emissions in order. `FLOW_END` finishes one flow
//! (`FLOW_DONE` answers); connection `END` or a graceful shutdown finishes
//! the remaining flows in sorted key order and answers with an aggregate
//! `DONE`. Flow keys live in the same server-wide active set as classic
//! streams (which occupy tenant 0), so a flow can be served by at most one
//! connection at a time.
//!
//! # Ordered writer and backpressure
//!
//! Each connection owns one writer thread fed by a bounded
//! [`sync_channel`](std::sync::mpsc::sync_channel) of pre-framed records
//! ([`ServerConfig::writer_depth`] frames deep). Frames enter the channel in
//! emission order from a single producer (the engine sinks run on the
//! handler thread), so responses are **totally ordered** — a control update
//! always reaches the socket before the payload that depends on it. When
//! the client stops reading, the channel fills and sends block, which in
//! turn blocks the reader loop: backpressure propagates to the client's
//! sender instead of buffering unboundedly. A dead client (write failure)
//! trips the writer's failure flag; the handler notices at the next push
//! and abandons the stream instead of compressing into the void.
//!
//! # Shutdown semantics
//!
//! [`ServerHandle::shutdown`] is **graceful**: the listener stops accepting,
//! each connection's read half closes, and every in-flight stream finishes
//! exactly as if the client had sent `END` — in-flight batches drain,
//! the tail commits, `DONE` (with `server_initiated = true`) reaches the
//! client. [`ServerHandle::abort`] is a **crash**: sockets close both ways
//! and streams drop without finishing — durable state cuts at the last
//! commit boundary, which is precisely the state a killed process leaves
//! behind, so tests use it to exercise warm restarts.

use std::cell::RefCell;
use std::collections::HashSet;
use std::io::Write;
use std::net::ToSocketAddrs;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use zipline::host::HostPathConfig;
use zipline_engine::{
    AutoBackend, CodecCursor, CodecId, CommittedEntry, CompressionBackend, CompressionEngine,
    DeflateBackend, DictionaryUpdate, EngineError, GdBackend, HybridGdDeflateBackend,
    PipelinedStream, StreamSummary, SyncPolicy,
};
use zipline_flow::{flow_dir, FlowError, FlowEvent, FlowKey, FlowRouter, FlowRouterConfig};
use zipline_gd::packet::PacketType;

use crate::error::{ServerError, ServerResult};
use crate::net::{Conn, Endpoint, Listener};
use crate::wire::{
    ClientHello, DoneSummary, Record, RecordReader, ServerHello, WireCodec, WireError, WIRE_VERSION,
};

/// Boxed payload sink handed to the pipelined stream.
type PayloadSink = Box<dyn FnMut(PacketType, &[u8])>;
/// Boxed control sink handed to the pipelined stream.
type ControlSink = Box<dyn FnMut(&DictionaryUpdate)>;

/// Which compression backend the server builds for every stream, selected
/// by name from the codec registry (plus the `auto` router, which has no
/// registry id of its own — it routes each batch to a registered codec).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BackendChoice {
    /// Generalized deduplication (the paper's engine); registry id 1.
    #[default]
    Gd,
    /// Plain DEFLATE/gzip batches; registry id 2.
    Deflate,
    /// GD first, gzip the residue — one container per batch; registry id 4.
    Hybrid,
    /// Per-batch sampling router over GD and deflate; emissions carry
    /// per-batch codec tags, so `auto` requires a wire-v3 peer.
    Auto,
}

impl BackendChoice {
    /// Parses a backend name as accepted by `--backend` (`gd`, `deflate`,
    /// `hybrid`, `auto`).
    pub fn parse_name(name: &str) -> Option<Self> {
        match name {
            "gd" => Some(Self::Gd),
            "deflate" => Some(Self::Deflate),
            "hybrid" => Some(Self::Hybrid),
            "auto" => Some(Self::Auto),
            _ => None,
        }
    }

    /// The canonical name (`parse_name`'s inverse).
    pub fn name(self) -> &'static str {
        match self {
            Self::Gd => "gd",
            Self::Deflate => "deflate",
            Self::Hybrid => "hybrid",
            Self::Auto => "auto",
        }
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Server configuration: the host-path shape every stream engine is built
/// from, the backend choice, and the response writer's depth.
///
/// Build one with [`ServerConfigBuilder`] (validated) or the
/// [`Self::paper_default`]/[`Self::durable`] shorthands.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Engine/host configuration applied to every stream. When
    /// [`HostPathConfig::durable`] is set it names the *root* directory;
    /// each stream journals under `stream-<id16>` below it. A `None`
    /// [`HostPathConfig::pipeline_depth`] is promoted to `Some(2)` — the
    /// server path is pipelined by construction.
    pub host: HostPathConfig,
    /// Bound of the per-connection ordered writer, in framed records.
    pub writer_depth: usize,
    /// Backend every stream engine is built over.
    pub backend: BackendChoice,
}

impl ServerConfig {
    /// Paper-default host path, pipelined at depth 2, 256-record writer,
    /// GD backend.
    pub fn paper_default() -> Self {
        // Defaults are valid by construction — no need for the fallible
        // `build` (which exists to catch caller-supplied zeroes).
        ServerConfigBuilder::new().finish_unchecked()
    }

    /// Paper defaults with a durable store rooted at `dir`.
    pub fn durable(dir: impl Into<PathBuf>) -> Self {
        ServerConfigBuilder::new()
            .store_root(dir)
            .finish_unchecked()
    }

    /// Wraps an explicit host configuration (pipelining promoted, see
    /// [`Self::host`]).
    #[deprecated(
        since = "0.1.0",
        note = "use ServerConfigBuilder (validated, names every knob); remove in 0.2.0"
    )]
    pub fn from_host(host: HostPathConfig) -> Self {
        ServerConfigBuilder::new().host(host).finish_unchecked()
    }
}

/// Validated builder for [`ServerConfig`], mirroring the engine's builder
/// idiom: every knob is named, and `build` rejects nonsensical values with
/// a typed error instead of letting them fail deep inside a handler.
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    host: HostPathConfig,
    writer_depth: usize,
    backend: BackendChoice,
}

impl Default for ServerConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerConfigBuilder {
    /// Paper-default host path, 256-record writer, GD backend.
    pub fn new() -> Self {
        Self {
            host: HostPathConfig::paper_default(),
            writer_depth: 256,
            backend: BackendChoice::Gd,
        }
    }

    /// Replaces the whole host configuration (the other host knobs below
    /// then mutate this value).
    pub fn host(mut self, host: HostPathConfig) -> Self {
        self.host = host;
        self
    }

    /// Roots a durable store at `dir`; each stream journals below it.
    pub fn store_root(mut self, dir: impl Into<PathBuf>) -> Self {
        self.host.durable = Some(dir.into());
        self
    }

    /// Chunks per compression batch.
    pub fn batch_chunks(mut self, chunks: usize) -> Self {
        self.host.batch_chunks = chunks;
        self
    }

    /// In-flight batch bound of each stream's pipeline.
    pub fn pipeline_depth(mut self, depth: usize) -> Self {
        self.host.pipeline_depth = Some(depth);
        self
    }

    /// Commits between durable checkpoints.
    pub fn checkpoint_cadence(mut self, cadence: u64) -> Self {
        self.host.checkpoint_cadence = cadence;
        self
    }

    /// Durability barrier of the store's commits.
    pub fn sync(mut self, sync: SyncPolicy) -> Self {
        self.host.sync = sync;
        self
    }

    /// Stream dictionary updates to clients as they commit.
    pub fn live_sync(mut self, live: bool) -> Self {
        self.host.live_sync = live;
        self
    }

    /// Bound of the per-connection ordered writer, in framed records.
    pub fn writer_depth(mut self, depth: usize) -> Self {
        self.writer_depth = depth;
        self
    }

    /// Backend every stream engine is built over.
    pub fn backend(mut self, backend: BackendChoice) -> Self {
        self.backend = backend;
        self
    }

    /// Validates and produces the configuration.
    pub fn build(self) -> ServerResult<ServerConfig> {
        if self.writer_depth == 0 {
            return Err(ServerError::Config(
                "writer_depth must be at least 1".into(),
            ));
        }
        if self.host.batch_chunks == 0 {
            return Err(ServerError::Config(
                "batch_chunks must be at least 1".into(),
            ));
        }
        if self.host.pipeline_depth == Some(0) {
            return Err(ServerError::Config(
                "pipeline_depth must be at least 1".into(),
            ));
        }
        Ok(self.finish_unchecked())
    }

    fn finish_unchecked(mut self) -> ServerConfig {
        if self.host.pipeline_depth.is_none() {
            self.host.pipeline_depth = Some(2);
        }
        ServerConfig {
            host: self.host,
            writer_depth: self.writer_depth,
            backend: self.backend,
        }
    }
}

/// Durable directory of one classic (single-stream-per-connection) stream
/// under the configured root. Classic streams occupy tenant 0 of the
/// tenant-scoped layout, so a stream created before multiplexing can be
/// reopened as tenant 0's flow of the same id and vice versa.
pub fn stream_dir(root: &Path, stream_id: u64) -> PathBuf {
    flow_dir(root, FlowKey::new(0, stream_id))
}

/// Monotonic counters the server keeps; snapshot via [`ServerHandle::stats`].
#[derive(Debug, Default)]
struct ServerStats {
    connections: AtomicU64,
    streams_completed: AtomicU64,
    records_in: AtomicU64,
    bytes_in: AtomicU64,
    payloads_out: AtomicU64,
    controls_out: AtomicU64,
    bytes_out: AtomicU64,
    replayed_entries: AtomicU64,
    failed_streams: AtomicU64,
}

/// Point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Streams that reached `DONE`.
    pub streams_completed: u64,
    /// `DATA` records consumed.
    pub records_in: u64,
    /// `DATA` bytes consumed.
    pub bytes_in: u64,
    /// Payload records emitted (replay included).
    pub payloads_out: u64,
    /// Control + reseed records emitted (replay included).
    pub controls_out: u64,
    /// Framed bytes put on sockets.
    pub bytes_out: u64,
    /// Journal entries replayed to reconnecting clients.
    pub replayed_entries: u64,
    /// Streams that ended in an error (aborted streams excluded).
    pub failed_streams: u64,
}

impl ServerStats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            streams_completed: self.streams_completed.load(Ordering::Relaxed),
            records_in: self.records_in.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            payloads_out: self.payloads_out.load(Ordering::Relaxed),
            controls_out: self.controls_out.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            replayed_entries: self.replayed_entries.load(Ordering::Relaxed),
            failed_streams: self.failed_streams.load(Ordering::Relaxed),
        }
    }
}

/// Locks a mutex, recovering the data even when another thread panicked
/// while holding it. The protected registries (connection list, error log,
/// active-stream set) stay consistent under item-level mutation, so a
/// handler's panic must not wedge shutdown or error reporting for the
/// whole server.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// State shared between the accept loop, the handlers and the handle.
struct Shared {
    config: ServerConfig,
    stop: AtomicBool,
    abort: AtomicBool,
    stats: ServerStats,
    active_streams: Mutex<HashSet<FlowKey>>,
    conns: Mutex<Vec<(Conn, JoinHandle<()>)>>,
    errors: Mutex<Vec<String>>,
}

/// What [`ServerHandle::shutdown`]/[`ServerHandle::abort`] hand back.
#[derive(Debug)]
pub struct ServerReport {
    /// Final counter values.
    pub stats: StatsSnapshot,
    /// Human-readable per-stream failures (empty on a clean run).
    pub errors: Vec<String>,
}

/// A running ingest server; dropping the handle **aborts** it.
pub struct ServerHandle {
    shared: Arc<Shared>,
    endpoint: Endpoint,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds a TCP listener and starts serving over the configured
    /// [`BackendChoice`].
    pub fn bind_tcp(addr: impl ToSocketAddrs, config: ServerConfig) -> ServerResult<Self> {
        match config.backend {
            BackendChoice::Gd => Self::bind_tcp_with::<GdBackend>(addr, config),
            BackendChoice::Deflate => Self::bind_tcp_with::<DeflateBackend>(addr, config),
            BackendChoice::Hybrid => Self::bind_tcp_with::<HybridGdDeflateBackend>(addr, config),
            BackendChoice::Auto => Self::bind_tcp_with::<AutoBackend>(addr, config),
        }
    }

    /// Binds a TCP listener serving engines over backend `B`.
    pub fn bind_tcp_with<B>(addr: impl ToSocketAddrs, config: ServerConfig) -> ServerResult<Self>
    where
        B: CompressionBackend + Send + 'static,
    {
        Self::start::<B>(Listener::bind_tcp(addr)?, config)
    }

    /// Binds a Unix-domain listener and starts serving over the configured
    /// [`BackendChoice`].
    #[cfg(unix)]
    pub fn bind_uds(path: impl Into<PathBuf>, config: ServerConfig) -> ServerResult<Self> {
        match config.backend {
            BackendChoice::Gd => Self::bind_uds_with::<GdBackend>(path, config),
            BackendChoice::Deflate => Self::bind_uds_with::<DeflateBackend>(path, config),
            BackendChoice::Hybrid => Self::bind_uds_with::<HybridGdDeflateBackend>(path, config),
            BackendChoice::Auto => Self::bind_uds_with::<AutoBackend>(path, config),
        }
    }

    /// Binds a Unix-domain listener serving engines over backend `B`.
    #[cfg(unix)]
    pub fn bind_uds_with<B>(path: impl Into<PathBuf>, config: ServerConfig) -> ServerResult<Self>
    where
        B: CompressionBackend + Send + 'static,
    {
        Self::start::<B>(Listener::bind_unix(path)?, config)
    }

    fn start<B>(listener: Listener, config: ServerConfig) -> ServerResult<Self>
    where
        B: CompressionBackend + Send + 'static,
    {
        let endpoint = listener.endpoint()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            config,
            stop: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            stats: ServerStats::default(),
            active_streams: Mutex::new(HashSet::new()),
            conns: Mutex::new(Vec::new()),
            errors: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("zipline-accept".into())
            .spawn(move || accept_loop::<B>(accept_shared, listener))
            .map_err(|e| ServerError::io("spawning accept thread", e))?;
        Ok(Self {
            shared,
            endpoint,
            accept: Some(accept),
        })
    }

    /// Where the server listens (with the ephemeral port resolved).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Snapshot of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Graceful shutdown: stop accepting, end every in-flight stream as if
    /// the client had sent `END` (drain, commit, `DONE`), join everything.
    pub fn shutdown(mut self) -> ServerReport {
        self.close(false)
    }

    /// Hard abort: close every socket both ways and drop in-flight streams
    /// without finishing — durable state cuts at the last commit boundary,
    /// exactly like a process kill.
    pub fn abort(mut self) -> ServerReport {
        self.close(true)
    }

    fn close(&mut self, abort: bool) -> ServerReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        if abort {
            self.shared.abort.store(true, Ordering::SeqCst);
        }
        if let Some(handle) = self.accept.take() {
            drop(handle.join());
        }
        // Accept loop has exited, so the registry is complete. Unblock every
        // handler: half-close for graceful (reader sees EOF, stream finishes),
        // full close for abort.
        let conns = {
            let mut guard = lock_unpoisoned(&self.shared.conns);
            std::mem::take(&mut *guard)
        };
        let how = if abort {
            std::net::Shutdown::Both
        } else {
            std::net::Shutdown::Read
        };
        for (conn, _) in &conns {
            conn.shutdown(how);
        }
        for (_, handle) in conns {
            drop(handle.join());
        }
        ServerReport {
            stats: self.shared.stats.snapshot(),
            errors: std::mem::take(&mut *lock_unpoisoned(&self.shared.errors)),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.close(true);
        }
    }
}

fn accept_loop<B>(shared: Arc<Shared>, listener: Listener)
where
    B: CompressionBackend + Send + 'static,
{
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(Some(conn)) => {
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                let registered = match conn.try_clone() {
                    Ok(clone) => clone,
                    Err(_) => continue,
                };
                let handler_shared = Arc::clone(&shared);
                let spawned = thread::Builder::new()
                    .name("zipline-conn".into())
                    .spawn(move || handle_connection::<B>(handler_shared, conn));
                match spawned {
                    Ok(handle) => {
                        let mut conns = lock_unpoisoned(&shared.conns);
                        // Joining finished handlers is instant; prune so a
                        // long-lived server's registry stays bounded.
                        conns.retain(|(_, h)| !h.is_finished());
                        conns.push((registered, handle));
                    }
                    Err(e) => {
                        let mut errors = lock_unpoisoned(&shared.errors);
                        errors.push(format!("spawning connection handler: {e}"));
                    }
                }
            }
            Ok(None) => thread::sleep(Duration::from_millis(2)),
            Err(_) if shared.stop.load(Ordering::SeqCst) => break,
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Connection-scoped claim on flow keys in the server-wide active set:
/// every key registered here is released on every exit path, so a dead
/// connection never wedges its flows.
struct FlowSetGuard {
    shared: Arc<Shared>,
    keys: Vec<FlowKey>,
}

impl FlowSetGuard {
    fn new(shared: Arc<Shared>) -> Self {
        Self {
            shared,
            keys: Vec::new(),
        }
    }

    /// Claims `key`; false when another connection is already serving it.
    fn register(&mut self, key: FlowKey) -> bool {
        if lock_unpoisoned(&self.shared.active_streams).insert(key) {
            self.keys.push(key);
            true
        } else {
            false
        }
    }

    /// Releases `key` early (its flow finished while the connection lives).
    fn release(&mut self, key: FlowKey) {
        lock_unpoisoned(&self.shared.active_streams).remove(&key);
        self.keys.retain(|k| *k != key);
    }
}

impl Drop for FlowSetGuard {
    fn drop(&mut self) {
        let mut active = lock_unpoisoned(&self.shared.active_streams);
        for key in &self.keys {
            active.remove(key);
        }
    }
}

fn handle_connection<B>(shared: Arc<Shared>, conn: Conn)
where
    B: CompressionBackend + Send + 'static,
{
    let reader_conn = match conn.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = RecordReader::new(reader_conn);

    let hello = match reader.read_record() {
        Ok(Some(Record::ClientHello(hello))) => hello,
        // Connected and left without a word; nothing to serve.
        Ok(None) => return,
        Ok(Some(other)) => {
            report_failure(
                &shared,
                &conn,
                &ServerError::Protocol(format!("expected CLIENT_HELLO, got {}", other.kind_name())),
            );
            return;
        }
        Err(e) => {
            report_failure(&shared, &conn, &ServerError::Wire(e));
            return;
        }
    };

    if hello.multiplex {
        if let Err(e) = serve_flows::<B>(&shared, &conn, &mut reader, &hello) {
            // A deliberate abort is a staged crash, not a failure to report.
            if !shared.abort.load(Ordering::SeqCst) {
                report_failure(&shared, &conn, &e);
            }
        }
        return;
    }

    // Classic streams occupy tenant 0 of the flow-key space, sharing the
    // active set with multiplexed flows.
    let mut guard = FlowSetGuard::new(Arc::clone(&shared));
    if !guard.register(FlowKey::new(0, hello.stream_id)) {
        report_failure(
            &shared,
            &conn,
            &ServerError::Protocol(format!(
                "stream {:#x} is already being served on another connection",
                hello.stream_id
            )),
        );
        return;
    }

    if let Err(e) = serve_stream::<B>(&shared, &conn, &mut reader, &hello) {
        // A deliberate abort is a staged crash, not a failure to report.
        if !shared.abort.load(Ordering::SeqCst) {
            report_failure(&shared, &conn, &e);
        }
    }
}

/// Counts the failure and best-effort sends a typed `ERROR` record before
/// the connection drops.
fn report_failure(shared: &Shared, conn: &Conn, error: &ServerError) {
    shared.stats.failed_streams.fetch_add(1, Ordering::Relaxed);
    lock_unpoisoned(&shared.errors).push(error.to_string());
    if let Ok(mut writer) = conn.try_clone() {
        let frame = WireCodec::new().encode(&Record::Error(error.to_string()));
        drop(writer.write_all(&frame));
        drop(writer.flush());
    }
    conn.shutdown(std::net::Shutdown::Both);
}

/// The resume plan derived from a stream's warm start and the client's
/// replay cursor.
struct ResumePlan {
    hello: ServerHello,
    replay: Vec<CommittedEntry>,
    reseed: Vec<DictionaryUpdate>,
}

/// Maps a flow-layer error onto the server's error type: engine failures
/// stay typed, everything else is a protocol violation by the client.
fn flow_error(error: FlowError) -> ServerError {
    match error {
        FlowError::Engine(e) => ServerError::Engine(e),
        other => ServerError::Protocol(other.to_string()),
    }
}

/// Renders a flow resume plan as the wire hello announcing it. Version and
/// codec set are neutral here; the connection-level hello carries the
/// negotiated values (see [`negotiate_version`]).
fn resume_hello(resume: &zipline_flow::FlowResume) -> ServerHello {
    ServerHello {
        version: WIRE_VERSION,
        resume_bytes_in: resume.resume_bytes_in,
        replay_entries: resume.replay.len() as u64,
        reseed_entries: resume.reseed.len() as u64,
        warm: resume.warm,
        codecs: Vec::new(),
    }
}

/// Negotiates the connection's wire version from the client hello and the
/// stream backend's codec needs.
///
/// * The answer is `min(client, ours)` — a v2 peer gets a byte-exact v2
///   `SERVER_HELLO` back.
/// * A tagging backend (the `auto` router) emits per-batch codec tags,
///   which only wire v3 can carry: a v2 peer is refused with a typed
///   protocol error instead of being fed frames it cannot parse.
/// * When a v3 client advertises a codec set, every codec the backend may
///   emit must be in it; an empty advertisement means "no preference".
fn negotiate_version(
    hello: &ClientHello,
    backend_codecs: &[CodecId],
    tags: bool,
) -> ServerResult<u16> {
    let version = hello.version.min(WIRE_VERSION);
    if tags && version < 3 {
        return Err(ServerError::Protocol(format!(
            "stream backend emits per-batch codec tags, which wire version {version} cannot carry"
        )));
    }
    if version >= 3 && !hello.codecs.is_empty() {
        for id in backend_codecs {
            if !hello.codecs.contains(id) {
                return Err(ServerError::Protocol(format!(
                    "client codec set {:?} is missing codec {id} required by the stream backend",
                    hello.codecs
                )));
            }
        }
    }
    Ok(version)
}

fn resume_plan<B: CompressionBackend>(
    engine: &mut CompressionEngine<B>,
    client: &ClientHello,
) -> ServerResult<ResumePlan> {
    // The warm-start arithmetic (cursor validation, replay tail, reseed
    // synthesis) is shared with the multiplexed path via the flow layer.
    let resume = zipline_flow::plan_resume(engine, client.entries_held).map_err(flow_error)?;
    Ok(ResumePlan {
        hello: resume_hello(&resume),
        replay: resume.replay,
        reseed: resume.reseed,
    })
}

fn serve_stream<B>(
    shared: &Arc<Shared>,
    conn: &Conn,
    reader: &mut RecordReader<Conn>,
    hello: &ClientHello,
) -> ServerResult<()>
where
    B: CompressionBackend + Send + 'static,
{
    let config = &shared.config;
    let mut host = config.host.clone();
    if let Some(root) = &host.durable {
        host.durable = Some(stream_dir(root, hello.stream_id));
    }

    let backend = B::from_engine_config(&host.engine).map_err(EngineError::Gd)?;
    // Capture the codec needs before the backend moves into the engine.
    let advertised = backend.codec_ids();
    let tags = backend.tags_batches();
    let version = negotiate_version(hello, &advertised, tags)?;
    let mut engine = host.engine_builder().backend(backend).build()?;
    let mut plan = resume_plan(&mut engine, hello)?;
    plan.hello.version = version;
    plan.hello.codecs = advertised;

    // Ordered writer: a bounded channel of pre-framed records drained by a
    // dedicated thread. See the module docs for the backpressure rules.
    let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(config.writer_depth.max(1));
    let writer_failed = Arc::new(AtomicBool::new(false));
    let writer_conn = conn.try_clone()?;
    let writer = {
        let failed = Arc::clone(&writer_failed);
        thread::Builder::new()
            .name("zipline-writer".into())
            .spawn(move || run_writer(writer_conn, rx, failed))
            .map_err(|e| ServerError::io("spawning writer thread", e))?
    };

    let codec = Rc::new(RefCell::new(WireCodec::new()));
    let bytes_out = |shared: &Shared, frame: &[u8]| {
        shared
            .stats
            .bytes_out
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
    };

    {
        let frame = codec.borrow_mut().encode(&Record::ServerHello(plan.hello));
        bytes_out(shared, &frame);
        drop(tx.send(frame));
    }
    for entry in &plan.replay {
        let frame = match entry {
            CommittedEntry::Frame {
                packet_type,
                codec: tag,
                bytes,
            } => {
                shared.stats.payloads_out.fetch_add(1, Ordering::Relaxed);
                codec.borrow_mut().encode_payload(*tag, *packet_type, bytes)
            }
            CommittedEntry::Control(update) => {
                shared.stats.controls_out.fetch_add(1, Ordering::Relaxed);
                codec.borrow_mut().encode_control(update)
            }
        };
        shared
            .stats
            .replayed_entries
            .fetch_add(1, Ordering::Relaxed);
        bytes_out(shared, &frame);
        if tx.send(frame).is_err() || writer_failed.load(Ordering::Relaxed) {
            return Err(ServerError::Disconnected);
        }
    }
    for update in &plan.reseed {
        let frame = codec.borrow_mut().encode(&Record::Reseed(update.clone()));
        shared.stats.controls_out.fetch_add(1, Ordering::Relaxed);
        bytes_out(shared, &frame);
        if tx.send(frame).is_err() || writer_failed.load(Ordering::Relaxed) {
            return Err(ServerError::Disconnected);
        }
    }

    // Live sync was either forced by the durable GD store at build time or
    // requested by the host configuration; both stream control updates.
    let live =
        engine.live_sync_enabled() || (host.live_sync && engine.backend().supports_live_sync());

    // Per-batch codec tags: the stream publishes the active batch's tag
    // through this cursor just before replaying its payloads, and the sink
    // samples it per payload. Fixed backends never set it (`None` frames
    // the untagged kind), so v2 streams keep their historical bytes.
    let codec_cursor = CodecCursor::new();

    let payload_sink: PayloadSink = {
        let codec = Rc::clone(&codec);
        let cursor = codec_cursor.clone();
        let tx = tx.clone();
        let failed = Arc::clone(&writer_failed);
        let shared = Arc::clone(shared);
        Box::new(move |packet_type, bytes| {
            if failed.load(Ordering::Relaxed) {
                return;
            }
            let frame = codec
                .borrow_mut()
                .encode_payload(cursor.get(), packet_type, bytes);
            shared.stats.payloads_out.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .bytes_out
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
            drop(tx.send(frame));
        })
    };
    let control_sink: Option<ControlSink> = if live {
        let codec = Rc::clone(&codec);
        let tx = tx.clone();
        let failed = Arc::clone(&writer_failed);
        let shared = Arc::clone(shared);
        Some(Box::new(move |update: &DictionaryUpdate| {
            if failed.load(Ordering::Relaxed) {
                return;
            }
            let frame = codec.borrow_mut().encode_control(update);
            shared.stats.controls_out.fetch_add(1, Ordering::Relaxed);
            shared
                .stats
                .bytes_out
                .fetch_add(frame.len() as u64, Ordering::Relaxed);
            drop(tx.send(frame));
        }))
    } else {
        None
    };

    let mut stream =
        PipelinedStream::with_control_sink(engine, host.batch_chunks, payload_sink, control_sink)?;
    stream.set_codec_cursor(codec_cursor);

    // Ok(true): the client ended the stream; Ok(false): the read half
    // closed under a graceful shutdown — both finish cleanly.
    let outcome: ServerResult<bool> = loop {
        match reader.read_record() {
            Ok(Some(Record::Data(bytes))) => {
                shared.stats.records_in.fetch_add(1, Ordering::Relaxed);
                shared
                    .stats
                    .bytes_in
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                if let Err(e) = stream.push_record(&bytes) {
                    break Err(e.into());
                }
                if writer_failed.load(Ordering::Relaxed) {
                    break Err(ServerError::Disconnected);
                }
            }
            Ok(Some(Record::End)) => break Ok(true),
            Ok(Some(other)) => {
                break Err(ServerError::Protocol(format!(
                    "unexpected {} record mid-stream",
                    other.kind_name()
                )))
            }
            Ok(None) => {
                if shared.abort.load(Ordering::SeqCst) {
                    break Err(ServerError::Disconnected);
                }
                // EOF at a record boundary: the client hung up without END,
                // or our graceful shutdown half-closed the socket. Either
                // way the data is whole; finish and commit it.
                break Ok(false);
            }
            Err(WireError::Truncated) if shared.stop.load(Ordering::SeqCst) => {
                if shared.abort.load(Ordering::SeqCst) {
                    break Err(ServerError::Disconnected);
                }
                // Shutdown cut the client mid-record; the torn record was
                // never pushed, everything before it commits.
                break Ok(false);
            }
            Err(e) => break Err(e.into()),
        }
    };

    let result = match outcome {
        Ok(client_ended) => match stream.finish() {
            Ok((engine, summary)) => {
                drop(engine);
                shared
                    .stats
                    .streams_completed
                    .fetch_add(1, Ordering::Relaxed);
                let done = Record::Done(DoneSummary {
                    bytes_in: summary.bytes_in,
                    payloads_emitted: summary.payloads_emitted,
                    wire_bytes: summary.wire_bytes,
                    compressed_payloads: summary.compressed_payloads,
                    control_updates: summary.control_updates,
                    server_initiated: !client_ended,
                });
                let frame = codec.borrow_mut().encode(&done);
                bytes_out(shared, &frame);
                drop(tx.send(frame));
                Ok(())
            }
            Err(e) => Err(e.into()),
        },
        Err(e) => {
            // Dropping the stream drains the worker without emitting or
            // committing anything further — crash semantics for the store.
            drop(stream);
            Err(e)
        }
    };

    // Close the channel (the sinks' clones died with the stream) and let
    // the writer drain what was queued before it exits.
    drop(tx);
    drop(writer.join());
    result
}

/// Renders one finished flow's stream totals as a wire `DONE` body.
fn flow_done(summary: &StreamSummary, server_initiated: bool) -> DoneSummary {
    DoneSummary {
        bytes_in: summary.bytes_in,
        payloads_emitted: summary.payloads_emitted,
        wire_bytes: summary.wire_bytes,
        compressed_payloads: summary.compressed_payloads,
        control_updates: summary.control_updates,
        server_initiated,
    }
}

/// Frames every tagged emission the router queued since the last drain and
/// hands the frames to the ordered writer, preserving emission order (per
/// flow: controls strictly before the payloads that need them).
fn frame_flow_events(
    shared: &Shared,
    codec: &mut WireCodec,
    events: Vec<FlowEvent>,
    tx: &mpsc::SyncSender<Vec<u8>>,
    writer_failed: &AtomicBool,
) -> ServerResult<()> {
    for event in events {
        let frame = match &event {
            FlowEvent::Payload {
                key,
                packet_type,
                codec: tag,
                bytes,
            } => {
                shared.stats.payloads_out.fetch_add(1, Ordering::Relaxed);
                codec.encode_flow_payload(*key, *tag, *packet_type, bytes)
            }
            FlowEvent::Control { key, update } => {
                shared.stats.controls_out.fetch_add(1, Ordering::Relaxed);
                codec.encode_flow_control(*key, update)
            }
        };
        shared
            .stats
            .bytes_out
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        if tx.send(frame).is_err() || writer_failed.load(Ordering::Relaxed) {
            return Err(ServerError::Disconnected);
        }
    }
    Ok(())
}

/// Serves a multiplexed connection: one [`FlowRouter`] carrying many
/// tenant-scoped flows over one socket. See the module docs for the
/// lifecycle; error and shutdown semantics mirror [`serve_stream`] (an
/// error path drops the router, abandoning every flow at its last commit
/// boundary — crash semantics for the durable stores).
fn serve_flows<B>(
    shared: &Arc<Shared>,
    conn: &Conn,
    reader: &mut RecordReader<Conn>,
    hello: &ClientHello,
) -> ServerResult<()>
where
    B: CompressionBackend + Send + 'static,
{
    let config = &shared.config;
    let host = &config.host;

    // Probe the backend shape once for negotiation; the router builds its
    // own per-flow instances.
    let (advertised, tags) = {
        let probe = B::from_engine_config(&host.engine).map_err(EngineError::Gd)?;
        (probe.codec_ids(), probe.tags_batches())
    };
    let version = negotiate_version(hello, &advertised, tags)?;
    let mut flow_config = FlowRouterConfig::new(host.engine);
    flow_config.batch_units = host.batch_chunks;
    flow_config.live_sync = host.live_sync;
    flow_config.pipeline_depth = host.pipeline_depth.unwrap_or(2);
    flow_config.durable_root = host.durable.clone();
    flow_config.checkpoint_cadence = host.checkpoint_cadence;
    flow_config.sync = host.sync;
    let mut router: FlowRouter<B> = FlowRouter::new(flow_config).map_err(flow_error)?;

    let (tx, rx) = mpsc::sync_channel::<Vec<u8>>(config.writer_depth.max(1));
    let writer_failed = Arc::new(AtomicBool::new(false));
    let writer_conn = conn.try_clone()?;
    let writer = {
        let failed = Arc::clone(&writer_failed);
        thread::Builder::new()
            .name("zipline-writer".into())
            .spawn(move || run_writer(writer_conn, rx, failed))
            .map_err(|e| ServerError::io("spawning writer thread", e))?
    };

    let mut codec = WireCodec::new();
    let mut guard = FlowSetGuard::new(Arc::clone(shared));
    // Running totals across finished flows for the aggregate `DONE`.
    let mut agg = DoneSummary {
        bytes_in: 0,
        payloads_emitted: 0,
        wire_bytes: 0,
        compressed_payloads: 0,
        control_updates: 0,
        server_initiated: false,
    };
    let absorb = |agg: &mut DoneSummary, summary: &StreamSummary| {
        agg.bytes_in += summary.bytes_in;
        agg.payloads_emitted += summary.payloads_emitted;
        agg.wire_bytes += summary.wire_bytes;
        agg.compressed_payloads += summary.compressed_payloads;
        agg.control_updates += summary.control_updates;
    };
    let send = |shared: &Shared,
                tx: &mpsc::SyncSender<Vec<u8>>,
                failed: &AtomicBool,
                frame: Vec<u8>|
     -> ServerResult<()> {
        shared
            .stats
            .bytes_out
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
        if tx.send(frame).is_err() || failed.load(Ordering::Relaxed) {
            return Err(ServerError::Disconnected);
        }
        Ok(())
    };

    // Connection-level acknowledgement: no stream opens with the hello on a
    // multiplexed connection, so the resume fields are all zero.
    {
        let frame = codec.encode(&Record::ServerHello(ServerHello {
            version,
            resume_bytes_in: 0,
            replay_entries: 0,
            reseed_entries: 0,
            warm: false,
            codecs: advertised,
        }));
        send(shared, &tx, &writer_failed, frame)?;
    }

    // Ok(true): the client ended the connection; Ok(false): the read half
    // closed under a graceful shutdown — both finish the remaining flows.
    let outcome: ServerResult<bool> = loop {
        match reader.read_record() {
            Ok(Some(Record::FlowOpen { key, entries_held })) => {
                if !guard.register(key) {
                    break Err(ServerError::Protocol(format!(
                        "{key} is already being served on another connection"
                    )));
                }
                let resume = match router.open_flow(key, entries_held) {
                    Ok(resume) => resume,
                    Err(e) => break Err(flow_error(e)),
                };
                let opened = codec.encode(&Record::FlowOpened {
                    key,
                    resume: resume_hello(&resume),
                });
                if let Err(e) = send(shared, &tx, &writer_failed, opened) {
                    break Err(e);
                }
                // Replay and reseed stay tagged so interleaved flows never
                // bleed into each other's decoders.
                let mut failed = None;
                for entry in &resume.replay {
                    let frame = match entry {
                        CommittedEntry::Frame {
                            packet_type,
                            codec: tag,
                            bytes,
                        } => {
                            shared.stats.payloads_out.fetch_add(1, Ordering::Relaxed);
                            codec.encode_flow_payload(key, *tag, *packet_type, bytes)
                        }
                        CommittedEntry::Control(update) => {
                            shared.stats.controls_out.fetch_add(1, Ordering::Relaxed);
                            codec.encode_flow_control(key, update)
                        }
                    };
                    shared
                        .stats
                        .replayed_entries
                        .fetch_add(1, Ordering::Relaxed);
                    if let Err(e) = send(shared, &tx, &writer_failed, frame) {
                        failed = Some(e);
                        break;
                    }
                }
                if failed.is_none() {
                    for update in &resume.reseed {
                        let frame = codec.encode(&Record::FlowReseed {
                            key,
                            update: update.clone(),
                        });
                        shared.stats.controls_out.fetch_add(1, Ordering::Relaxed);
                        if let Err(e) = send(shared, &tx, &writer_failed, frame) {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                if let Some(e) = failed {
                    break Err(e);
                }
            }
            Ok(Some(Record::FlowData { key, bytes })) => {
                shared.stats.records_in.fetch_add(1, Ordering::Relaxed);
                shared
                    .stats
                    .bytes_in
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                if let Err(e) = router.push(key, &bytes) {
                    break Err(flow_error(e));
                }
                if let Err(e) = frame_flow_events(
                    shared,
                    &mut codec,
                    router.drain_events(),
                    &tx,
                    &writer_failed,
                ) {
                    break Err(e);
                }
            }
            Ok(Some(Record::FlowEnd { key })) => {
                let finished = match router.end_flow(key) {
                    Ok(finished) => finished,
                    Err(e) => break Err(flow_error(e)),
                };
                if let Err(e) = frame_flow_events(
                    shared,
                    &mut codec,
                    router.drain_events(),
                    &tx,
                    &writer_failed,
                ) {
                    break Err(e);
                }
                guard.release(key);
                absorb(&mut agg, &finished.summary);
                shared
                    .stats
                    .streams_completed
                    .fetch_add(1, Ordering::Relaxed);
                let frame = codec.encode(&Record::FlowDone {
                    key,
                    summary: flow_done(&finished.summary, false),
                });
                if let Err(e) = send(shared, &tx, &writer_failed, frame) {
                    break Err(e);
                }
            }
            Ok(Some(Record::End)) => break Ok(true),
            Ok(Some(other)) => {
                break Err(ServerError::Protocol(format!(
                    "unexpected {} record on a multiplexed connection",
                    other.kind_name()
                )))
            }
            Ok(None) => {
                if shared.abort.load(Ordering::SeqCst) {
                    break Err(ServerError::Disconnected);
                }
                // EOF at a record boundary: finish what is whole (see
                // serve_stream).
                break Ok(false);
            }
            Err(WireError::Truncated) if shared.stop.load(Ordering::SeqCst) => {
                if shared.abort.load(Ordering::SeqCst) {
                    break Err(ServerError::Disconnected);
                }
                break Ok(false);
            }
            Err(e) => break Err(e.into()),
        }
    };

    let result = match outcome {
        Ok(client_ended) => {
            // Finish the remaining flows in sorted key order (deterministic
            // drain), then answer with the aggregate totals.
            let mut finish_result = Ok(());
            for key in router.active_keys() {
                let finished = match router.end_flow(key) {
                    Ok(finished) => finished,
                    Err(e) => {
                        finish_result = Err(flow_error(e));
                        break;
                    }
                };
                if let Err(e) = frame_flow_events(
                    shared,
                    &mut codec,
                    router.drain_events(),
                    &tx,
                    &writer_failed,
                ) {
                    finish_result = Err(e);
                    break;
                }
                guard.release(key);
                absorb(&mut agg, &finished.summary);
                shared
                    .stats
                    .streams_completed
                    .fetch_add(1, Ordering::Relaxed);
                let frame = codec.encode(&Record::FlowDone {
                    key,
                    summary: flow_done(&finished.summary, true),
                });
                if let Err(e) = send(shared, &tx, &writer_failed, frame) {
                    finish_result = Err(e);
                    break;
                }
            }
            match finish_result {
                Ok(()) => {
                    agg.server_initiated = !client_ended;
                    let frame = codec.encode(&Record::Done(agg));
                    shared
                        .stats
                        .bytes_out
                        .fetch_add(frame.len() as u64, Ordering::Relaxed);
                    drop(tx.send(frame));
                    Ok(())
                }
                Err(e) => {
                    // Abandon whatever did not finish — crash semantics.
                    drop(router);
                    Err(e)
                }
            }
        }
        Err(e) => {
            drop(router);
            Err(e)
        }
    };

    drop(tx);
    drop(writer.join());
    result
}

/// The ordered writer: drains pre-framed records to the socket, batching
/// bursts through a buffered writer and flushing whenever the queue runs
/// empty (so closed-loop clients are never left waiting on a full buffer).
fn run_writer(conn: Conn, rx: Receiver<Vec<u8>>, failed: Arc<AtomicBool>) {
    let mut writer = std::io::BufWriter::with_capacity(64 * 1024, conn);
    loop {
        let frame = match rx.try_recv() {
            Ok(frame) => frame,
            Err(TryRecvError::Empty) => {
                if writer.flush().is_err() {
                    break;
                }
                match rx.recv() {
                    Ok(frame) => frame,
                    Err(_) => return void_flush(writer),
                }
            }
            Err(TryRecvError::Disconnected) => return void_flush(writer),
        };
        if writer.write_all(&frame).is_err() {
            break;
        }
    }
    // Write half is dead: mark it and drain so producers never block on a
    // full channel into a dead pipe.
    failed.store(true, Ordering::Relaxed);
    for _ in rx.iter() {}
}

fn void_flush(mut writer: std::io::BufWriter<Conn>) {
    drop(writer.flush());
}
