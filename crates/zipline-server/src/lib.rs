//! `zipline-server` — the network-facing ingest server for the ZipLine
//! reproduction, plus the closed-loop load harness that measures it.
//!
//! The paper compresses live traffic on the host/NIC path; everything below
//! this crate compresses in-process iterators. This crate puts the engine
//! behind a socket: clients stream raw records over TCP or a Unix-domain
//! socket, the server drives one pipelined engine per connection, and the
//! compressed wire payloads (with the in-band control updates that keep a
//! decoder live-synced) stream back in order.
//!
//! # Wire protocol (one paragraph)
//!
//! Both directions speak length-prefixed, CRC-tagged records — the exact
//! record discipline of the durable store's on-disk logs (`len:u32le ·
//! kind:u8+body · crc32`, CRC-32 polynomial `0x04C1_1DB7` over the
//! payload). A connection serves one stream by default: `CLIENT_HELLO`
//! (stream id + replay cursor) → `SERVER_HELLO` (resume offset +
//! replay/reseed counts) → replayed journal entries (after a crash) →
//! `DATA`* → `END` → `DONE`. Full field layouts live in [`wire`].
//!
//! # Multiplexed flows (the PR-9 layer)
//!
//! A `CLIENT_HELLO` with the multiplex flag upgrades the connection to
//! carry **many tenant-scoped flows over one socket**: `FLOW_OPEN` places a
//! flow onto its tenant's partition pool (own engine, own dictionary
//! namespace, own `tenant-<id>/stream-<id>` durable directory via the
//! `zipline-flow` router), `FLOW_DATA` routes input by flow key, and every
//! response leaves flow-tagged (`FLOW_OPENED`/`FLOW_PAYLOAD`/
//! `FLOW_CONTROL`/`FLOW_RESEED`/`FLOW_DONE`) so one client decoder pool
//! tracks the interleaved streams independently — one tenant's dictionary
//! churn never perturbs another's decoder. Per flow the byte stream is
//! bit-identical to a dedicated single-stream connection, resume included.
//!
//! # Durable resume (the PR-6 loop, closed)
//!
//! With [`ServerConfig::durable`], each stream journals under its own
//! directory. A server killed mid-stream restarts warm: the client
//! reconnects with the count of records it already received this epoch
//! (`entries_held`), the server replays the committed journal past that
//! cursor and names the input byte offset to resume from — and because
//! commits cut at whole-batch boundaries, checkpoint cadence 1 restores
//! exactly, and GD output is a pure function of `(data, shard count, batch
//! size)`, the concatenation of pre-crash and post-restart records is
//! **bit-identical** to an uninterrupted run (proven by
//! `tests/crash_restart.rs`). After a clean `DONE` the journal compacts and
//! the cursor resets; a later cold client is resynced by synthesized
//! `RESEED` installs instead of replay.
//!
//! # Backpressure and ordering
//!
//! Per connection, one reader thread feeds the engine and one writer
//! thread drains a bounded queue of pre-framed responses; ordering is total
//! (control updates precede the payloads that depend on them) and a slow
//! client backpressures the server instead of growing a buffer — the rules
//! are spelled out in [`server`]'s module docs, shutdown semantics
//! included.
//!
//! # Load harness
//!
//! [`load`] drives N concurrent closed-loop connections from any
//! `zipline-traces` workload (sensor, DNS, churn, Zipf flow mix) and
//! reports throughput plus p50/p99/p999 record latency from a mergeable
//! log-linear histogram ([`histogram`]). The `zipline-load` binary wraps it
//! for the command line; `zipline-serverd` runs the standalone server.

pub mod client;
pub mod error;
pub mod histogram;
pub mod load;
mod net;
pub mod server;
pub mod wire;

pub use client::{ClientSession, ServerEvent};
pub use error::{ServerError, ServerResult};
pub use histogram::LatencyHistogram;
pub use load::{run_closed_loop, run_multiplexed, LoadConfig, LoadReport, TenantLine};
pub use net::Endpoint;
pub use server::{
    stream_dir, BackendChoice, ServerConfig, ServerConfigBuilder, ServerHandle, ServerReport,
    StatsSnapshot,
};
pub use wire::{
    ClientHello, DoneSummary, Record, RecordReader, ServerHello, WireCodec, WireError,
    MAX_WIRE_RECORD_BYTES, MIN_WIRE_VERSION, WIRE_VERSION,
};
pub use zipline_flow::{FlowDecoderPool, FlowKey};
