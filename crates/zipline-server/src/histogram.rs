//! Log-linear latency histogram (HDR-style) for the closed-loop harness.
//!
//! Values are nanoseconds. Buckets are exact below 2^5 ns and then split
//! every power-of-two octave into 2^5 linear sub-buckets, giving a worst-case
//! relative quantile error of 1/32 ≈ 3.1% across the full `u64` range with a
//! fixed ~1900-slot table — no allocation per sample, mergeable across
//! threads by bucket-wise addition.

use std::time::Duration;

/// Sub-bucket resolution: 2^SUB_BITS linear sub-buckets per octave.
const SUB_BITS: u32 = 5;
const SUB: u64 = 1 << SUB_BITS;

/// Mergeable quantile sketch over nanosecond latencies.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    min_ns: u64,
    max_ns: u64,
    sum_ns: u128,
}

fn bucket_of(ns: u64) -> usize {
    if ns < SUB {
        return ns as usize;
    }
    let exp = 63 - ns.leading_zeros();
    let sub = (ns >> (exp - SUB_BITS)) & (SUB - 1);
    (((exp - SUB_BITS + 1) as u64 * SUB) + sub) as usize
}

/// Upper edge of `bucket` (every value in the bucket is `<=` this, and the
/// edge itself maps back into the bucket).
fn bucket_upper(bucket: usize) -> u64 {
    let bucket = bucket as u64;
    if bucket < SUB {
        return bucket;
    }
    let octave = bucket / SUB - 1;
    let sub = bucket % SUB;
    // First value of the sub-bucket is (SUB + sub) << octave; its width is
    // 1 << octave, so the last value is one below the next sub-bucket.
    ((SUB + sub + 1) << octave) - 1
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.record_ns(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one latency sample in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        let bucket = bucket_of(ns);
        if bucket >= self.counts.len() {
            self.counts.resize(bucket + 1, 0);
        }
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = if self.count == 1 {
            ns
        } else {
            self.min_ns.min(ns)
        };
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, n) in self.counts.iter_mut().zip(&other.counts) {
            *slot += n;
        }
        self.min_ns = if self.count == 0 {
            other.min_ns
        } else {
            self.min_ns.min(other.min_ns)
        };
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum_ns / u128::from(self.count)) as u64
        }
    }

    /// Value at quantile `q` in `[0, 1]`, as a bucket upper edge (within
    /// ~3.1% of the true value). Returns 0 on an empty histogram; `q >= 1`
    /// returns the exact maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max_ns;
        }
        let rank = ((q.max(0.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bucket, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(bucket).min(self.max_ns);
            }
        }
        self.max_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_roundtrip() {
        for bucket in 0..1500 {
            assert_eq!(
                bucket_of(bucket_upper(bucket)),
                bucket,
                "upper edge of bucket {bucket} maps back"
            );
        }
    }

    #[test]
    fn buckets_are_monotone_and_tight() {
        let mut prev = 0;
        for ns in (0u64..4096).chain((1 << 20) - 64..(1 << 20) + 64) {
            let b = bucket_of(ns);
            assert!(b >= prev || ns == 0, "bucket order broken at {ns}");
            prev = b.max(prev);
            let upper = bucket_upper(b);
            assert!(upper >= ns, "upper edge below value at {ns}");
            // Relative error bound: bucket width is at most value / 32.
            assert!(
                upper - ns <= (ns / SUB).max(1),
                "bucket too wide at {ns}: upper {upper}"
            );
        }
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let mut h = LatencyHistogram::new();
        for ns in 1..=10_000u64 {
            h.record_ns(ns * 1000);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        let p999 = h.quantile(0.999);
        assert!((4_900_000..=5_200_000).contains(&p50), "p50 = {p50}");
        assert!((9_700_000..=10_100_000).contains(&p99), "p99 = {p99}");
        assert!((9_890_000..=10_010_000).contains(&p999), "p999 = {p999}");
        assert_eq!(h.quantile(1.0), 10_000_000);
        assert_eq!(h.min_ns(), 1000);
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..5000u64 {
            let ns = (i * 7919) % 1_000_000;
            if i % 2 == 0 {
                a.record_ns(ns);
            } else {
                b.record_ns(ns);
            }
            whole.record_ns(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max_ns(), whole.max_ns());
        assert_eq!(a.min_ns(), whole.min_ns());
        for q in [0.1, 0.5, 0.9, 0.99, 0.999] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }
}
