//! Client side of the wire protocol: one [`ClientSession`] per stream.
//!
//! A session owns the socket's write half and a reader thread that parses
//! server records into an event queue. The reader exits silently on EOF or
//! on a torn record — both present to the consumer as the event channel
//! closing, which is exactly how a server crash looks to a client: only
//! complete records count, the torn tail does not.

use std::io::Write;
use std::sync::mpsc::{self, Receiver, TryRecvError};
use std::thread::{self, JoinHandle};

use zipline_engine::{CodecId, CodecRegistry, DictionaryUpdate, FlowKey};
use zipline_gd::packet::PacketType;

use crate::error::{ServerError, ServerResult};
use crate::net::{Conn, Endpoint};
use crate::wire::{
    ClientHello, DoneSummary, Record, RecordReader, ServerHello, WireCodec, WireError,
};

/// The codec ids this client can decode: everything in the standard
/// registry, advertised in the hello so the server can refuse a stream the
/// client could not restore.
fn supported_codecs() -> Vec<CodecId> {
    CodecRegistry::standard().ids()
}

/// One server record, as observed by the client.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerEvent {
    /// The server's hello (always the first event of a session).
    Hello(ServerHello),
    /// One wire payload.
    Payload {
        /// ZipLine packet type.
        packet_type: PacketType,
        /// Per-batch codec tag; `None` means the stream's fixed backend.
        codec: Option<CodecId>,
        /// Payload bytes.
        bytes: Vec<u8>,
    },
    /// One committed dictionary update.
    Control(DictionaryUpdate),
    /// One synthesized install (compacted-journal resync; advisory).
    Reseed(DictionaryUpdate),
    /// Clean end of stream.
    Done(DoneSummary),
    /// The server reported a failure; the connection is closing.
    ServerError(String),
    /// One flow's resume plan (multiplexed connections; answers
    /// [`ClientSession::open_flow`], delivered in order with the flow's
    /// replay/reseed records).
    FlowOpened {
        /// The opened flow.
        key: FlowKey,
        /// The flow's resume plan.
        resume: ServerHello,
    },
    /// One wire payload of one flow.
    FlowPayload {
        /// The owning flow.
        key: FlowKey,
        /// ZipLine packet type.
        packet_type: PacketType,
        /// Per-batch codec tag; `None` means the flow's fixed backend.
        codec: Option<CodecId>,
        /// Payload bytes.
        bytes: Vec<u8>,
    },
    /// One committed dictionary update of one flow.
    FlowControl {
        /// The owning flow.
        key: FlowKey,
        /// The tagged update.
        update: DictionaryUpdate,
    },
    /// One synthesized install of one flow (compacted journal; advisory).
    FlowReseed {
        /// The owning flow.
        key: FlowKey,
        /// The synthesized update.
        update: DictionaryUpdate,
    },
    /// Clean end of one flow.
    FlowDone {
        /// The finished flow.
        key: FlowKey,
        /// The flow's totals.
        summary: DoneSummary,
    },
}

/// A connected client stream.
pub struct ClientSession {
    conn: Conn,
    codec: WireCodec,
    events: Receiver<ServerEvent>,
    reader: Option<JoinHandle<Result<(), WireError>>>,
}

impl ClientSession {
    /// Connects to `endpoint` and starts the reader thread. No records are
    /// exchanged until [`Self::hello`].
    pub fn connect(endpoint: &Endpoint) -> ServerResult<Self> {
        let conn = Conn::connect(endpoint)?;
        let reader_conn = conn.try_clone()?;
        let (tx, rx) = mpsc::channel();
        let reader = thread::Builder::new()
            .name("zipline-client-reader".into())
            .spawn(move || {
                let mut reader = RecordReader::new(reader_conn);
                loop {
                    match reader.read_record() {
                        Ok(Some(record)) => {
                            let event = match record {
                                Record::ServerHello(h) => ServerEvent::Hello(h),
                                Record::Payload {
                                    packet_type,
                                    codec,
                                    bytes,
                                } => ServerEvent::Payload {
                                    packet_type,
                                    codec,
                                    bytes,
                                },
                                Record::Control(update) => ServerEvent::Control(update),
                                Record::Reseed(update) => ServerEvent::Reseed(update),
                                Record::Done(done) => ServerEvent::Done(done),
                                Record::Error(message) => ServerEvent::ServerError(message),
                                Record::FlowOpened { key, resume } => {
                                    ServerEvent::FlowOpened { key, resume }
                                }
                                Record::FlowPayload {
                                    key,
                                    packet_type,
                                    codec,
                                    bytes,
                                } => ServerEvent::FlowPayload {
                                    key,
                                    packet_type,
                                    codec,
                                    bytes,
                                },
                                Record::FlowControl { key, update } => {
                                    ServerEvent::FlowControl { key, update }
                                }
                                Record::FlowReseed { key, update } => {
                                    ServerEvent::FlowReseed { key, update }
                                }
                                Record::FlowDone { key, summary } => {
                                    ServerEvent::FlowDone { key, summary }
                                }
                                other => {
                                    return Err(WireError::Malformed(format!(
                                        "server sent a client-side record: {}",
                                        other.kind_name()
                                    )))
                                }
                            };
                            if tx.send(event).is_err() {
                                return Ok(());
                            }
                        }
                        Ok(None) => return Ok(()),
                        Err(e) => return Err(e),
                    }
                }
            })
            .map_err(|e| ServerError::io("spawning client reader", e))?;
        Ok(Self {
            conn,
            codec: WireCodec::new(),
            events: rx,
            reader: Some(reader),
        })
    }

    fn send(&mut self, record: &Record) -> ServerResult<()> {
        let frame = self.codec.encode(record);
        self.conn
            .write_all(&frame)
            .map_err(|e| ServerError::io(format!("sending {}", record.kind_name()), e))?;
        self.conn
            .flush()
            .map_err(|e| ServerError::io("flushing socket", e))
    }

    /// Opens the stream: sends `CLIENT_HELLO` and waits for the server's
    /// answer. `entries_held` is the replay cursor — payload + control
    /// records this client already holds from the stream's current journal
    /// epoch (0 for a fresh stream or after a clean `Done`).
    pub fn hello(&mut self, stream_id: u64, entries_held: u64) -> ServerResult<ServerHello> {
        let mut hello = ClientHello::new(stream_id, entries_held);
        hello.codecs = supported_codecs();
        self.hello_record(hello)
    }

    /// Opens a **multiplexed** connection: the server acknowledges with a
    /// connection-level hello, then every flow opens individually via
    /// [`Self::open_flow`].
    pub fn hello_multiplex(&mut self) -> ServerResult<ServerHello> {
        let mut hello = ClientHello::new(0, 0);
        hello.multiplex = true;
        hello.codecs = supported_codecs();
        self.hello_record(hello)
    }

    fn hello_record(&mut self, hello: ClientHello) -> ServerResult<ServerHello> {
        self.send(&Record::ClientHello(hello))?;
        match self.events.recv() {
            Ok(ServerEvent::Hello(hello)) => Ok(hello),
            Ok(ServerEvent::ServerError(message)) => Err(ServerError::Remote(message)),
            Ok(other) => Err(ServerError::Protocol(format!(
                "expected SERVER_HELLO, got {other:?}"
            ))),
            Err(_) => Err(ServerError::Disconnected),
        }
    }

    /// Opens one flow on a multiplexed connection. Does **not** block: the
    /// server's [`ServerEvent::FlowOpened`] answer arrives in order with
    /// the flow's replay/reseed records, so consuming the event stream
    /// observes the resume plan strictly before the flow's data.
    pub fn open_flow(&mut self, key: FlowKey, entries_held: u64) -> ServerResult<()> {
        self.send(&Record::FlowOpen { key, entries_held })
    }

    /// Sends one input record for `key`'s flow.
    pub fn send_flow_data(&mut self, key: FlowKey, bytes: &[u8]) -> ServerResult<()> {
        let frame = self.codec.encode_flow_data(key, bytes);
        self.conn
            .write_all(&frame)
            .map_err(|e| ServerError::io("sending FLOW_DATA", e))
    }

    /// Ends `key`'s flow cleanly; the server drains, commits and sends the
    /// flow's [`ServerEvent::FlowDone`].
    pub fn end_flow(&mut self, key: FlowKey) -> ServerResult<()> {
        self.send(&Record::FlowEnd { key })
    }

    /// Sends one input record for the engine.
    pub fn send_data(&mut self, bytes: &[u8]) -> ServerResult<()> {
        let frame = self.codec.encode_data(bytes);
        self.conn
            .write_all(&frame)
            .map_err(|e| ServerError::io("sending DATA", e))
    }

    /// Ends the stream cleanly; the server drains, commits and sends `Done`.
    pub fn end(&mut self) -> ServerResult<()> {
        self.send(&Record::End)
    }

    /// Blocks for the next server event; `None` means the connection closed
    /// (only complete records were delivered).
    pub fn next_event(&mut self) -> Option<ServerEvent> {
        self.events.recv().ok()
    }

    /// Non-blocking poll for a server event.
    pub fn try_event(&mut self) -> Option<ServerEvent> {
        match self.events.try_recv() {
            Ok(event) => Some(event),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Drains events until `Done`, handing each intermediate event to
    /// `on_event`. Errors on a server `ERROR` record or a disconnect.
    pub fn drain_to_done(
        &mut self,
        mut on_event: impl FnMut(ServerEvent),
    ) -> ServerResult<DoneSummary> {
        loop {
            match self.next_event() {
                Some(ServerEvent::Done(done)) => return Ok(done),
                Some(ServerEvent::ServerError(message)) => {
                    return Err(ServerError::Remote(message))
                }
                Some(event) => on_event(event),
                None => return Err(ServerError::Disconnected),
            }
        }
    }

    /// Closes the write half and drains the reader to connection close,
    /// returning every event received after the last one consumed.
    pub fn close(mut self) -> Vec<ServerEvent> {
        self.conn.shutdown(std::net::Shutdown::Write);
        let mut tail = Vec::new();
        while let Ok(event) = self.events.recv() {
            tail.push(event);
        }
        if let Some(handle) = self.reader.take() {
            drop(handle.join());
        }
        tail
    }
}

impl Drop for ClientSession {
    fn drop(&mut self) {
        self.conn.shutdown(std::net::Shutdown::Both);
        if let Some(handle) = self.reader.take() {
            drop(handle.join());
        }
    }
}
