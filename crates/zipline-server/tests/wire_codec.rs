//! Property-test suite for the wire codec (PR 7 acceptance):
//!
//! * arbitrary record sequences roundtrip bit-exactly through
//!   `encode → RecordReader`, under arbitrary read chunking;
//! * truncating the byte stream anywhere yields the decodable prefix and
//!   then [`WireError::Truncated`] — or a clean `Ok(None)` exactly when the
//!   cut lands on a record boundary;
//! * flipping any single byte is always detected: the reader returns a
//!   strict prefix of the original records and then an error — never a
//!   panic, never a silently corrupted record;
//! * arbitrary garbage bytes never panic the decoder.

use std::io::{Cursor, Read};

use proptest::prelude::*;
use zipline_engine::{codec_from_u8, CodecId, DictionaryUpdate, UpdateOp};
use zipline_gd::packet::PacketType;
use zipline_gd::BitVec;
use zipline_server::{
    ClientHello, DoneSummary, FlowKey, Record, RecordReader, ServerHello, WireCodec, WireError,
    MIN_WIRE_VERSION, WIRE_VERSION,
};

/// Splits one random word into a tenant-scoped flow key.
fn key_from(seed: u64) -> FlowKey {
    FlowKey::new(seed & 0xFF, seed >> 8)
}

/// Splits one random word into a negotiable wire version (v2 or v3).
fn version_from(seed: u64) -> u16 {
    if seed & 4 == 4 {
        WIRE_VERSION
    } else {
        MIN_WIRE_VERSION
    }
}

/// A hello codec advertisement consistent with `version`: v2 hellos carry
/// no codec set on the wire, so only v3 draws advertise ids. Advertised ids
/// roundtrip verbatim (even unregistered ones — peers skip unknown ids).
fn advertised_from(seed: u64, version: u16) -> Vec<CodecId> {
    if version < WIRE_VERSION {
        return Vec::new();
    }
    (0..(seed >> 24) % 4)
        .map(|i| CodecId(1 + ((seed >> (8 + 3 * i)) as u8 % 9)))
        .collect()
}

/// An optional *payload* codec tag. Unlike hello advertisements, payload
/// tags must decode through the registry, so only registered ids appear.
fn payload_codec_from(seed: u64) -> Option<CodecId> {
    if seed & 8 == 8 {
        codec_from_u8(1 + (seed >> 13) as u8 % 4)
    } else {
        None
    }
}

/// Splits one random word into a dictionary update (install or remove,
/// basis length 1–9 bytes with a ragged bit tail).
fn update_from(seed: u64) -> DictionaryUpdate {
    let seq = seed & 0xFFFF;
    let at = (seed >> 16) & 0xFFFF;
    let id = (seed >> 32) & 0xFF;
    let op = if seed & 1 == 0 {
        let byte_count = 1 + (seed >> 33) % 9;
        let bytes: Vec<u8> = (0..byte_count).map(|i| (seed >> (i % 8)) as u8).collect();
        let mut basis = BitVec::from_bytes(&bytes);
        let bit_len = basis.len() - (seed >> 40) as usize % 8;
        basis.truncate(bit_len);
        UpdateOp::Install { id, basis }
    } else {
        UpdateOp::Remove { id }
    };
    DictionaryUpdate { seq, at, op }
}

fn record_strategy() -> BoxedStrategy<Record> {
    prop_oneof![
        any::<u64>().prop_map(|seed| {
            let version = version_from(seed);
            Record::ClientHello(ClientHello {
                version,
                stream_id: seed,
                entries_held: seed.rotate_left(17) & 0xFFFF,
                multiplex: seed & 2 == 2,
                codecs: advertised_from(seed, version),
            })
        }),
        proptest::collection::vec(any::<u8>(), 0..200).prop_map(Record::Data),
        Just(Record::End),
        any::<u64>().prop_map(|seed| {
            let version = version_from(seed);
            Record::ServerHello(ServerHello {
                version,
                resume_bytes_in: seed >> 8,
                replay_entries: seed & 0x7F,
                reseed_entries: (seed >> 32) & 0x7F,
                warm: seed & 1 == 1,
                codecs: advertised_from(seed.rotate_left(9), version),
            })
        }),
        proptest::collection::vec(any::<u8>(), 2..160).prop_map(|mut bytes| {
            let codec = payload_codec_from(u64::from(bytes.pop().expect("non-empty draw")));
            let packet_type = match bytes.pop().expect("non-empty draw") % 3 {
                0 => PacketType::Raw,
                1 => PacketType::Uncompressed,
                _ => PacketType::Compressed,
            };
            Record::Payload {
                codec,
                packet_type,
                bytes,
            }
        }),
        any::<u64>().prop_map(|seed| Record::Control(update_from(seed))),
        any::<u64>().prop_map(|seed| Record::Reseed(update_from(seed))),
        any::<u64>().prop_map(|seed| Record::Done(DoneSummary {
            bytes_in: seed,
            payloads_emitted: seed >> 3,
            wire_bytes: seed >> 7,
            compressed_payloads: seed % 7,
            control_updates: seed % 5,
            server_initiated: seed & 1 == 0,
        })),
        proptest::collection::vec(0x20u8..0x7F, 0..60)
            .prop_map(|bytes| Record::Error(String::from_utf8(bytes).expect("ascii"))),
        any::<u64>().prop_map(|seed| Record::FlowOpen {
            key: key_from(seed),
            entries_held: seed.rotate_left(29) & 0xFFFF,
        }),
        any::<u64>().prop_map(|seed| {
            let bytes: Vec<u8> = (0..seed % 120).map(|i| (seed >> (i % 57)) as u8).collect();
            Record::FlowData {
                key: key_from(seed),
                bytes,
            }
        }),
        any::<u64>().prop_map(|seed| Record::FlowEnd {
            key: key_from(seed)
        }),
        any::<u64>().prop_map(|seed| {
            let bytes: Vec<u8> = (0..seed % 120).map(|i| (seed >> (i % 61)) as u8).collect();
            let packet_type = match seed % 3 {
                0 => PacketType::Raw,
                1 => PacketType::Uncompressed,
                _ => PacketType::Compressed,
            };
            Record::FlowPayload {
                key: key_from(seed),
                codec: payload_codec_from(seed.rotate_right(7)),
                packet_type,
                bytes,
            }
        }),
        any::<u64>().prop_map(|seed| Record::FlowControl {
            key: key_from(seed),
            update: update_from(seed.rotate_right(11)),
        }),
        any::<u64>().prop_map(|seed| Record::FlowReseed {
            key: key_from(seed),
            update: update_from(seed.rotate_right(23)),
        }),
        any::<u64>().prop_map(|seed| Record::FlowDone {
            key: key_from(seed),
            summary: DoneSummary {
                bytes_in: seed >> 2,
                payloads_emitted: seed >> 5,
                wire_bytes: seed >> 9,
                compressed_payloads: seed % 11,
                control_updates: seed % 3,
                server_initiated: seed & 1 == 1,
            },
        }),
    ]
    .boxed()
}

/// Encodes `records` back to back, returning the stream and the byte offset
/// of each record boundary (0 and the total length included).
fn encode_all(records: &[Record]) -> (Vec<u8>, Vec<usize>) {
    let mut codec = WireCodec::new();
    let mut wire = Vec::new();
    let mut boundaries = vec![0usize];
    for record in records {
        codec.encode_into(record, &mut wire);
        boundaries.push(wire.len());
    }
    (wire, boundaries)
}

/// Reads records until EOF or error, returning both.
fn drain(bytes: &[u8]) -> (Vec<Record>, Option<WireError>) {
    let mut reader = RecordReader::new(Cursor::new(bytes));
    let mut decoded = Vec::new();
    loop {
        match reader.read_record() {
            Ok(Some(record)) => decoded.push(record),
            Ok(None) => return (decoded, None),
            Err(e) => return (decoded, Some(e)),
        }
    }
}

/// A reader that serves at most `step` bytes per call (exercises reframing).
struct Chunked<'a> {
    data: &'a [u8],
    pos: usize,
    step: usize,
}

impl Read for Chunked<'_> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let n = self.step.min(out.len()).min(self.data.len() - self.pos);
        out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any record sequence roundtrips bit-exactly, whatever the read
    /// chunking of the underlying stream.
    #[test]
    fn arbitrary_sequences_roundtrip_under_arbitrary_chunking(
        records in proptest::collection::vec(record_strategy(), 0..12),
        step in 1usize..64,
    ) {
        let (wire, _) = encode_all(&records);
        let mut reader = RecordReader::new(Chunked { data: &wire, pos: 0, step });
        let mut decoded = Vec::new();
        while let Some(record) = reader.read_record().expect("valid frames decode") {
            decoded.push(record);
        }
        prop_assert_eq!(decoded, records);
    }

    /// Cutting the stream at any byte offset yields exactly the records
    /// whose frames lie fully before the cut, then `Truncated` — or a clean
    /// EOF when the cut lands on a record boundary.
    #[test]
    fn truncation_at_any_offset_is_loud(
        records in proptest::collection::vec(record_strategy(), 1..8),
        cut_selector in any::<u64>(),
    ) {
        let (wire, boundaries) = encode_all(&records);
        let cut = (cut_selector % (wire.len() as u64 + 1)) as usize;
        let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        let (decoded, error) = drain(&wire[..cut]);
        prop_assert_eq!(&decoded[..], &records[..whole]);
        if boundaries.contains(&cut) {
            prop_assert!(error.is_none(), "boundary cut must be a clean EOF");
        } else {
            prop_assert!(
                matches!(error, Some(WireError::Truncated)),
                "mid-record cut must be Truncated, got {:?}",
                error
            );
        }
    }

    /// Flipping any single byte is detected: the reader hands back a strict
    /// prefix of the original records, then errors — and never panics.
    #[test]
    fn single_byte_flips_never_pass_and_never_panic(
        records in proptest::collection::vec(record_strategy(), 1..8),
        position_selector in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let (mut wire, _) = encode_all(&records);
        let position = (position_selector % wire.len() as u64) as usize;
        wire[position] ^= flip;
        let (decoded, error) = drain(&wire);
        prop_assert!(
            error.is_some(),
            "a flipped byte must surface as an error (CRC, framing or parse)"
        );
        prop_assert!(decoded.len() < records.len(), "corruption loses a record");
        prop_assert_eq!(&decoded[..], &records[..decoded.len()]);
    }

    /// Foreign garbage never panics the decoder; it decodes nothing valid
    /// or errors, but stays total.
    #[test]
    fn arbitrary_garbage_never_panics(
        garbage in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let (_decoded, _error) = drain(&garbage);
    }
}
