//! ISSUE 9 acceptance, over the socket: **many tenant-scoped flows
//! multiplexed on one connection** decode losslessly and independently —
//! each flow's record stream is bit-identical to a dedicated single-stream
//! connection carrying the same data, so one tenant's dictionary churn
//! never perturbs another tenant's decoder — and a **durable multiplexed
//! server killed mid-run resumes every flow bit-identically** from its
//! tenant-scoped journal. A v1 peer is rejected with a typed `ERROR`
//! record before any stream state exists.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::PathBuf;

use zipline::host::HostPathConfig;
use zipline_engine::{flow_dir, CodecId, DictionaryUpdate, EngineConfig, SpawnPolicy, SyncPolicy};
use zipline_gd::packet::PacketType;
use zipline_gd::{CrcEngine, CrcSpec, GdConfig};
use zipline_server::wire::REQUEST_MAGIC;
use zipline_server::{
    ClientSession, Endpoint, FlowDecoderPool, FlowKey, Record, RecordReader, ServerConfigBuilder,
    ServerEvent, ServerHandle,
};

const CHUNK: usize = 32;
const BATCH: usize = 8;

/// Churn-heavy host shape: 64-identifier dictionary, 8-chunk batches.
fn host(durable: Option<PathBuf>) -> HostPathConfig {
    HostPathConfig {
        engine: EngineConfig {
            gd: GdConfig::for_parameters(8, 6).expect("valid GD parameters"),
            shards: 4,
            workers: 2,
            spawn: SpawnPolicy::Inline,
        },
        batch_chunks: BATCH,
        sync: SyncPolicy::Data,
        durable,
        ..HostPathConfig::paper_default()
    }
}

fn bind(durable: Option<PathBuf>) -> ServerHandle {
    ServerHandle::bind_tcp(
        "127.0.0.1:0",
        ServerConfigBuilder::new()
            .host(host(durable))
            .build()
            .expect("valid server config"),
    )
    .expect("server binds")
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zipline-mux-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic churny input for one flow: mostly-distinct 32-byte chunks
/// so the 64-entry dictionary installs and evicts continuously, with every
/// flow's patterns disjoint from every other's.
fn flow_bytes(seed: u64, chunks: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(chunks * CHUNK);
    for i in 0..chunks as u64 {
        for j in 0..CHUNK as u64 {
            let word = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i.wrapping_mul(31))
                .wrapping_add(j.wrapping_mul(7));
            out.push((word >> 16) as u8);
        }
    }
    out
}

/// One client-observed record of one flow, tag stripped, in arrival order.
#[derive(Debug, Clone, PartialEq)]
enum Entry {
    Payload(Option<CodecId>, PacketType, Vec<u8>),
    Control(DictionaryUpdate),
}

/// Buckets a multiplexed event by flow; `None` for lifecycle records.
fn flow_entry(event: &ServerEvent) -> Option<(FlowKey, Entry)> {
    match event {
        ServerEvent::FlowPayload {
            key,
            codec,
            packet_type,
            bytes,
        } => Some((*key, Entry::Payload(*codec, *packet_type, bytes.clone()))),
        ServerEvent::FlowControl { key, update } => Some((*key, Entry::Control(update.clone()))),
        _ => None,
    }
}

/// Streams `bytes` through one dedicated classic connection, returning the
/// flow-agnostic record stream — the isolation reference a multiplexed
/// flow must be indistinguishable from.
fn dedicated_run(endpoint: &Endpoint, stream_id: u64, bytes: &[u8]) -> Vec<Entry> {
    let mut session = ClientSession::connect(endpoint).expect("connects");
    session.hello(stream_id, 0).expect("hello answered");
    for chunk in bytes.chunks(CHUNK) {
        session.send_data(chunk).expect("data sent");
    }
    session.end().expect("end sent");
    let mut entries = Vec::new();
    session
        .drain_to_done(|event| match event {
            ServerEvent::Payload {
                codec,
                packet_type,
                bytes,
            } => {
                entries.push(Entry::Payload(codec, packet_type, bytes));
            }
            ServerEvent::Control(update) => entries.push(Entry::Control(update)),
            _ => {}
        })
        .expect("clean finish");
    entries
}

/// Three flows across two tenants, with pairwise-disjoint data.
fn flows() -> Vec<(FlowKey, Vec<u8>)> {
    vec![
        (FlowKey::new(1, 0), flow_bytes(0xA11CE, 48)),
        (FlowKey::new(1, 1), flow_bytes(0xB0B, 48)),
        (FlowKey::new(2, 0), flow_bytes(0xC44B, 48)),
    ]
}

/// Pushes `flows` chunk-interleaved over one multiplexed session, ends
/// every flow and the connection, and returns the per-flow record streams
/// plus the per-flow `FLOW_DONE` summaries.
fn multiplexed_run(
    endpoint: &Endpoint,
    flows: &[(FlowKey, Vec<u8>)],
) -> (BTreeMap<FlowKey, Vec<Entry>>, BTreeMap<FlowKey, u64>) {
    let mut session = ClientSession::connect(endpoint).expect("connects");
    session.hello_multiplex().expect("hello answered");
    for (key, _) in flows {
        session.open_flow(*key, 0).expect("open sent");
    }
    let mut streams: BTreeMap<FlowKey, Vec<Entry>> = BTreeMap::new();
    let mut done_bytes: BTreeMap<FlowKey, u64> = BTreeMap::new();
    let chunks: Vec<Vec<&[u8]>> = flows
        .iter()
        .map(|(_, bytes)| bytes.chunks(CHUNK).collect())
        .collect();
    let rounds = chunks.iter().map(Vec::len).max().unwrap_or(0);
    for round in 0..rounds {
        for (i, (key, _)) in flows.iter().enumerate() {
            if let Some(chunk) = chunks[i].get(round) {
                session.send_flow_data(*key, chunk).expect("data sent");
            }
            while let Some(event) = session.try_event() {
                if let Some((key, entry)) = flow_entry(&event) {
                    streams.entry(key).or_default().push(entry);
                }
            }
        }
    }
    for (key, _) in flows {
        session.end_flow(*key).expect("end sent");
    }
    session.end().expect("end sent");
    session
        .drain_to_done(|event| {
            if let Some((key, entry)) = flow_entry(&event) {
                streams.entry(key).or_default().push(entry);
            } else if let ServerEvent::FlowDone { key, summary } = event {
                assert!(!summary.server_initiated, "the client ended this flow");
                done_bytes.insert(key, summary.bytes_in);
            }
        })
        .expect("clean finish");
    (streams, done_bytes)
}

#[test]
fn many_flows_one_socket_decode_losslessly_and_independently() {
    let flows = flows();
    let server = bind(None);
    let (streams, done_bytes) = multiplexed_run(server.endpoint(), &flows);

    // Every flow restores bit-identically through one decoder pool driven
    // only by its tagged record stream.
    let mut pool = FlowDecoderPool::new(host(None).engine);
    for (key, bytes) in &flows {
        pool.open(*key).expect("pool open");
        assert_eq!(done_bytes[key], bytes.len() as u64);
        let mut restored = Vec::new();
        for entry in streams.get(key).expect("flow produced records") {
            match entry {
                Entry::Payload(codec, pt, payload) => pool
                    .decode_payload(*key, *codec, *pt, payload, &mut restored)
                    .expect("payload decodes"),
                Entry::Control(update) => {
                    pool.observe_control(*key, update)
                        .expect("in-order control");
                }
            }
        }
        assert_eq!(&restored, bytes, "{key} did not restore bit-identically");
    }

    // Isolation: each multiplexed flow's stream equals a dedicated
    // single-stream connection carrying the same data — the interleaved
    // churn of the other tenants changed nothing.
    for (i, (key, bytes)) in flows.iter().enumerate() {
        let reference = dedicated_run(server.endpoint(), 0x0DED + i as u64, bytes);
        assert_eq!(
            streams[key], reference,
            "{key} diverged from its dedicated-connection reference"
        );
    }

    let report = server.shutdown();
    assert!(report.errors.is_empty(), "{:?}", report.errors);
}

#[test]
fn killed_durable_multiplexed_server_resumes_every_flow_bit_identically() {
    let flows = flows();
    let pre_chunks = 24usize;

    // Ground truth: the same flows against a durable server that never dies.
    let ref_root = temp_root("ref");
    let ref_server = bind(Some(ref_root.clone()));
    let (reference, _) = multiplexed_run(ref_server.endpoint(), &flows);
    drop(ref_server.shutdown());
    assert!(
        reference
            .values()
            .flatten()
            .any(|e| matches!(e, Entry::Control(_))),
        "the workload must churn the dictionaries"
    );

    // Incarnation 1: interleave the pre-crash chunks, never end anything,
    // kill the server once responses have landed for every flow.
    let crash_root = temp_root("crash");
    let server_a = bind(Some(crash_root.clone()));
    let mut client1 = ClientSession::connect(server_a.endpoint()).expect("connects");
    client1.hello_multiplex().expect("hello answered");
    for (key, _) in &flows {
        client1.open_flow(*key, 0).expect("open sent");
    }
    let mut received: BTreeMap<FlowKey, Vec<Entry>> = BTreeMap::new();
    for round in 0..pre_chunks {
        for (key, bytes) in &flows {
            let chunk = &bytes[round * CHUNK..(round + 1) * CHUNK];
            client1.send_flow_data(*key, chunk).expect("data sent");
            while let Some(event) = client1.try_event() {
                if let Some((key, entry)) = flow_entry(&event) {
                    received.entry(key).or_default().push(entry);
                }
            }
        }
    }
    while received.len() < flows.len() || received.values().any(|entries| entries.len() < 4) {
        match client1.next_event() {
            Some(event) => {
                if let Some((key, entry)) = flow_entry(&event) {
                    received.entry(key).or_default().push(entry);
                }
            }
            None => panic!("server hung up before the staged crash"),
        }
    }
    server_a.abort();
    // Only complete records count; the torn tail is dropped by the reader —
    // exactly the client's view of a real crash.
    for event in client1.close() {
        if let Some((key, entry)) = flow_entry(&event) {
            received.entry(key).or_default().push(entry);
        }
    }
    for (key, _) in &flows {
        assert!(
            flow_dir(&crash_root, *key).exists(),
            "{key} journaled under its tenant-scoped directory"
        );
    }

    // Incarnation 2: restart over the same root, reopen every flow with its
    // replay cursor, resume each at the server-named offset.
    let server_b = bind(Some(crash_root.clone()));
    let mut client2 = ClientSession::connect(server_b.endpoint()).expect("connects");
    client2.hello_multiplex().expect("hello answered");
    for (key, _) in &flows {
        let held = received.get(key).map_or(0, |entries| entries.len() as u64);
        client2.open_flow(*key, held).expect("open sent");
    }
    // The FLOW_OPENED answers arrive in order, strictly before each flow's
    // replayed records; collect the resume offsets as they appear.
    let mut resume: BTreeMap<FlowKey, u64> = BTreeMap::new();
    while resume.len() < flows.len() {
        match client2.next_event() {
            Some(ServerEvent::FlowOpened { key, resume: hello }) => {
                assert!(hello.warm, "restart must restore the durable store");
                assert_eq!(
                    hello.resume_bytes_in % (CHUNK as u64),
                    0,
                    "commits cut at whole-chunk boundaries"
                );
                resume.insert(key, hello.resume_bytes_in);
            }
            Some(event) => {
                if let Some((key, entry)) = flow_entry(&event) {
                    assert!(
                        resume.contains_key(&key),
                        "{key} replayed records before its FLOW_OPENED"
                    );
                    received.entry(key).or_default().push(entry);
                }
            }
            None => panic!("server hung up during resume"),
        }
    }
    for (key, bytes) in &flows {
        for chunk in bytes[resume[key] as usize..].chunks(CHUNK) {
            client2.send_flow_data(*key, chunk).expect("data sent");
            while let Some(event) = client2.try_event() {
                if let Some((key, entry)) = flow_entry(&event) {
                    received.entry(key).or_default().push(entry);
                }
            }
        }
    }
    for (key, _) in &flows {
        client2.end_flow(*key).expect("end sent");
    }
    client2.end().expect("end sent");
    client2
        .drain_to_done(|event| {
            if let Some((key, entry)) = flow_entry(&event) {
                received.entry(key).or_default().push(entry);
            }
        })
        .expect("clean finish");
    let report = server_b.shutdown();
    assert!(report.errors.is_empty(), "{:?}", report.errors);

    // The acceptance property, per flow: pre-crash + replayed + resumed
    // records, concatenated, are bit-identical to the uninterrupted run.
    for (key, _) in &flows {
        assert_eq!(
            received[key], reference[key],
            "{key} diverged from the uninterrupted multiplexed run"
        );
    }

    let _ = std::fs::remove_dir_all(&ref_root);
    let _ = std::fs::remove_dir_all(&crash_root);
}

#[test]
fn version_one_peer_is_rejected_with_a_typed_error() {
    let server = bind(None);
    let addr = server
        .endpoint()
        .to_string()
        .trim_start_matches("tcp://")
        .to_string();
    let mut socket = std::net::TcpStream::connect(&addr).expect("connects");

    // Hand-craft a v1 CLIENT_HELLO frame: magic + version 1 + stream id +
    // cursor, without the v2 multiplex byte.
    let mut body = vec![0x41u8]; // KIND_CLIENT_HELLO
    body.extend_from_slice(&REQUEST_MAGIC);
    body.extend_from_slice(&1u16.to_le_bytes());
    body.extend_from_slice(&0x77u64.to_le_bytes());
    body.extend_from_slice(&0u64.to_le_bytes());
    let crc_engine = CrcEngine::new(CrcSpec::new(32, 0x04C1_1DB7).expect("valid CRC spec"));
    let crc = crc_engine.compute_bytes(&body) as u32;
    let mut frame = (body.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&body);
    frame.extend_from_slice(&crc.to_le_bytes());
    socket.write_all(&frame).expect("frame sent");
    socket.flush().expect("flushed");

    // The server answers with a typed ERROR record naming the version
    // mismatch, then closes — no stream state was created.
    let mut reader = RecordReader::new(socket);
    let record = reader
        .read_record()
        .expect("the rejection is a well-formed record")
        .expect("the server answers before closing");
    match record {
        Record::Error(message) => assert!(
            message.contains("version"),
            "the rejection must name the version mismatch, got: {message}"
        ),
        other => panic!("expected an ERROR record, got {}", other.kind_name()),
    }
    let report = server.shutdown();
    assert_eq!(report.stats.streams_completed, 0);
    assert_eq!(report.stats.failed_streams, 1);
}
