//! PR-10 acceptance over the socket: the self-describing container end to
//! end.
//!
//! * Property: a mixed-codec stream served by the `auto` router arrives
//!   fully tagged and a [`RegistryDecompressor`] reconstructs the input
//!   from the tags alone — no out-of-band codec agreement.
//! * Compatibility: a wire-v2 client gets a byte-compatible v2 session
//!   from a fixed-backend server, and a **typed** refusal (not a hang or
//!   a torn frame) from a tagging server; a v3 client advertising a codec
//!   set that misses a backend codec is refused the same way.
//! * Durability: a durable `auto` server killed mid-stream preserves the
//!   per-batch tags in its journal — after restart, replay + resumed
//!   stream decode bit-identically to the full input.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;

use proptest::prelude::*;
use zipline::host::HostPathConfig;
use zipline_engine::{
    CodecId, DictionaryUpdate, EngineConfig, RegistryDecompressor, SpawnPolicy, SyncPolicy,
    CODEC_DEFLATE, CODEC_GD,
};
use zipline_gd::packet::PacketType;
use zipline_gd::GdConfig;
use zipline_server::{
    BackendChoice, ClientHello, ClientSession, Endpoint, Record, RecordReader, ServerConfigBuilder,
    ServerEvent, ServerHandle, WireCodec, WIRE_VERSION,
};

const CHUNK: usize = 32;
const BATCH_CHUNKS: usize = 32;
const STREAM_ID: u64 = 0xC0DEC;

/// Small host shape shared by every test: 64-identifier dictionary,
/// 32-chunk batches.
fn host(durable: Option<PathBuf>) -> HostPathConfig {
    HostPathConfig {
        engine: EngineConfig {
            gd: GdConfig::for_parameters(8, 6).expect("valid GD parameters"),
            shards: 4,
            workers: 2,
            spawn: SpawnPolicy::Inline,
        },
        batch_chunks: BATCH_CHUNKS,
        durable,
        sync: SyncPolicy::Data,
        ..HostPathConfig::paper_default()
    }
}

fn bind(backend: BackendChoice, durable: Option<PathBuf>) -> ServerHandle {
    let config = ServerConfigBuilder::new()
        .host(host(durable))
        .backend(backend)
        .build()
        .expect("valid server config");
    ServerHandle::bind_tcp("127.0.0.1:0", config).expect("server binds")
}

/// Mixed workload in whole batches: GD-friendly segments (few chunk bases,
/// sparse deviations) alternating with text-like segments deflate wins,
/// so the auto router tags batches with both codecs.
fn mixed_data(seed: u64, segments: usize, batches_per_segment: usize) -> Vec<u8> {
    let mut data = Vec::new();
    for s in 0..segments {
        for i in 0..batches_per_segment * BATCH_CHUNKS {
            let mut chunk = vec![0u8; CHUNK];
            if (s + seed as usize).is_multiple_of(2) {
                chunk[0] = ((seed >> (s % 8)) as usize % 5) as u8;
                chunk[8] = 0xA5;
                if i % 7 == 0 {
                    chunk[20] ^= 0x10;
                }
            } else {
                for (j, byte) in chunk.iter_mut().enumerate() {
                    *byte = ((seed as usize + s * 131 + i * 17 + j * 7) % 9) as u8 + b'a';
                }
            }
            data.extend_from_slice(&chunk);
        }
    }
    data
}

/// One client-observed record, in arrival order, tag included.
#[derive(Debug, Clone, PartialEq)]
enum Entry {
    Payload(Option<CodecId>, PacketType, Vec<u8>),
    Control(DictionaryUpdate),
}

fn entry_of(event: ServerEvent) -> Option<Entry> {
    match event {
        ServerEvent::Payload {
            packet_type,
            codec,
            bytes,
        } => Some(Entry::Payload(codec, packet_type, bytes)),
        ServerEvent::Control(update) => Some(Entry::Control(update)),
        _ => None,
    }
}

/// Replays `entries` through a fresh registry decoder; panics (failing the
/// test) on unknown tags or misordered updates.
fn decode(entries: &[Entry]) -> Vec<u8> {
    let mut decoder =
        RegistryDecompressor::new(host(None).engine, CODEC_GD).expect("decoder builds");
    let mut out = Vec::new();
    for entry in entries {
        match entry {
            Entry::Control(update) => decoder.apply_update(update).expect("update applies"),
            Entry::Payload(codec, pt, bytes) => decoder
                .restore_payload_tagged(*codec, *pt, bytes, &mut out)
                .expect("payload decodes"),
        }
    }
    out
}

fn codecs_used(entries: &[Entry]) -> (bool, bool) {
    let mut gd = false;
    let mut deflate = false;
    for entry in entries {
        match entry {
            Entry::Payload(Some(codec), ..) if *codec == CODEC_GD => gd = true,
            Entry::Payload(Some(codec), ..) if *codec == CODEC_DEFLATE => deflate = true,
            _ => {}
        }
    }
    (gd, deflate)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tagged container over TCP: an auto-routed stream arrives fully
    /// tagged, uses both codecs, and decodes bit-identically through the
    /// registry.
    #[test]
    fn auto_served_streams_decode_from_their_tags_alone(
        seed in any::<u64>(),
        segments in 3usize..6,
        batches_per_segment in 1usize..3,
    ) {
        let data = mixed_data(seed, segments, batches_per_segment);
        let server = bind(BackendChoice::Auto, None);
        let mut session = ClientSession::connect(server.endpoint()).expect("connects");
        let hello = session.hello(STREAM_ID, 0).expect("hello answered");
        prop_assert_eq!(hello.version, WIRE_VERSION);
        prop_assert!(
            hello.codecs.contains(&CODEC_GD) && hello.codecs.contains(&CODEC_DEFLATE),
            "a tagging server advertises its codec set: {:?}", hello.codecs
        );
        for chunk in data.chunks(CHUNK) {
            session.send_data(chunk).expect("data sent");
        }
        session.end().expect("end sent");
        let mut entries = Vec::new();
        let done = session
            .drain_to_done(|event| entries.extend(entry_of(event)))
            .expect("clean finish");
        prop_assert_eq!(done.bytes_in, data.len() as u64);
        drop(server.shutdown());

        prop_assert!(
            entries.iter().all(|e| !matches!(e, Entry::Payload(None, ..))),
            "a tagging backend leaves no payload untagged"
        );
        let (gd, deflate) = codecs_used(&entries);
        prop_assert!(gd && deflate, "mixed data routes through both codecs");
        prop_assert_eq!(decode(&entries), data);
    }
}

/// Raw v2/v3 clients against fixed and tagging servers: the negotiation
/// matrix of `docs/container-format.md`, over real sockets.
#[test]
fn v2_clients_get_v2_sessions_from_fixed_backends_and_typed_refusals_from_tagging_ones() {
    let connect = |endpoint: &Endpoint| -> TcpStream {
        match endpoint {
            Endpoint::Tcp(addr) => TcpStream::connect(addr).expect("connects"),
            #[cfg(unix)]
            Endpoint::Unix(_) => unreachable!("tests bind TCP"),
        }
    };
    let hello = |version: u16, codecs: Vec<CodecId>| {
        let mut hello = ClientHello::new(STREAM_ID, 0);
        hello.version = version;
        hello.codecs = codecs;
        Record::ClientHello(hello)
    };

    // A v2 client against a fixed GD backend: full byte-compatible session
    // — v2 hello back, plain untagged payloads, clean DONE.
    let server = bind(BackendChoice::Gd, None);
    let mut conn = connect(server.endpoint());
    let mut codec = WireCodec::new();
    conn.write_all(&codec.encode(&hello(2, Vec::new())))
        .expect("hello sent");
    let data = vec![7u8; CHUNK * BATCH_CHUNKS];
    conn.write_all(&codec.encode(&Record::Data(data.clone())))
        .expect("data sent");
    conn.write_all(&codec.encode(&Record::End))
        .expect("end sent");
    let mut reader = RecordReader::new(conn.try_clone().expect("clone socket"));
    match reader.read_record().expect("reply parses") {
        Some(Record::ServerHello(answer)) => {
            assert_eq!(answer.version, 2, "v2 peers get v2-shaped replies");
            assert!(
                answer.codecs.is_empty(),
                "a v2 reply cannot carry a codec set"
            );
        }
        other => panic!("expected SERVER_HELLO, got {other:?}"),
    }
    let mut payloads = 0usize;
    loop {
        match reader.read_record().expect("record parses") {
            Some(Record::Payload { codec, .. }) => {
                assert_eq!(codec, None, "v2 sessions never carry tagged payloads");
                payloads += 1;
            }
            Some(Record::Control(_)) | Some(Record::Reseed(_)) => {}
            Some(Record::Done(done)) => {
                assert_eq!(done.bytes_in, data.len() as u64);
                break;
            }
            other => panic!("unexpected record {other:?}"),
        }
    }
    assert!(payloads > 0, "the batch produced at least one payload");
    drop(server.shutdown());

    // A v2 client against the tagging auto router: refused with a typed
    // ERROR record naming the problem, before any payload flows.
    let server = bind(BackendChoice::Auto, None);
    let mut conn = connect(server.endpoint());
    let mut codec = WireCodec::new();
    conn.write_all(&codec.encode(&hello(2, Vec::new())))
        .expect("hello sent");
    let mut reader = RecordReader::new(conn.try_clone().expect("clone socket"));
    match reader.read_record().expect("reply parses") {
        Some(Record::Error(message)) => assert!(
            message.contains("codec tags"),
            "the refusal names the incompatibility: {message}"
        ),
        other => panic!("expected ERROR, got {other:?}"),
    }
    drop(server.shutdown());

    // A v3 client whose advertised codec set misses a codec the backend
    // may emit: same typed refusal.
    let server = bind(BackendChoice::Auto, None);
    let mut conn = connect(server.endpoint());
    let mut codec = WireCodec::new();
    conn.write_all(&codec.encode(&hello(WIRE_VERSION, vec![CODEC_DEFLATE])))
        .expect("hello sent");
    let mut reader = RecordReader::new(conn.try_clone().expect("clone socket"));
    match reader.read_record().expect("reply parses") {
        Some(Record::Error(message)) => assert!(
            message.contains("missing codec"),
            "the refusal names the missing codec: {message}"
        ),
        other => panic!("expected ERROR, got {other:?}"),
    }
    drop(server.shutdown());
}

/// ISSUE-10 acceptance: a durable `auto` server killed mid-stream keeps
/// the per-batch codec tags in its journal. After restart, the replayed
/// entries plus the resumed stream decode **bit-identically** to the full
/// input through the registry.
#[test]
fn tagged_stream_resumes_bit_identically_after_crash_restart() {
    let data = mixed_data(3, 8, 2);
    let crash_feed = data.len() / 2;
    let dir =
        std::env::temp_dir().join(format!("zipline-server-codec-tags-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Incarnation 1: feed half the input, never send END, kill the server
    // once responses have landed.
    let server_a = bind(BackendChoice::Auto, Some(dir.clone()));
    let mut client1 = ClientSession::connect(server_a.endpoint()).expect("connects");
    let hello = client1.hello(STREAM_ID, 0).expect("hello answered");
    assert!(!hello.warm);
    let mut received: Vec<Entry> = Vec::new();
    for chunk in data[..crash_feed].chunks(CHUNK) {
        client1.send_data(chunk).expect("data sent");
        while let Some(event) = client1.try_event() {
            received.extend(entry_of(event));
        }
    }
    while received.len() < 8 {
        match client1.next_event() {
            Some(event) => received.extend(entry_of(event)),
            None => panic!("server hung up before the staged crash"),
        }
    }
    server_a.abort();
    for event in client1.close() {
        received.extend(entry_of(event));
    }
    let held = received.len() as u64;

    // Incarnation 2: restart over the same store; the replay past our
    // cursor and the resumed stream arrive tagged.
    let server_b = bind(BackendChoice::Auto, Some(dir.clone()));
    let mut client2 = ClientSession::connect(server_b.endpoint()).expect("connects");
    let hello = client2.hello(STREAM_ID, held).expect("hello answered");
    assert!(hello.warm, "restart must restore the durable store");
    let resume = hello.resume_bytes_in as usize;
    assert_eq!(resume % CHUNK, 0, "commits cut at whole-batch boundaries");
    assert!(resume <= crash_feed, "cannot commit past the crash point");

    let mut resumed: Vec<Entry> = Vec::new();
    for chunk in data[resume..].chunks(CHUNK) {
        client2.send_data(chunk).expect("data sent");
        while let Some(event) = client2.try_event() {
            resumed.extend(entry_of(event));
        }
    }
    client2.end().expect("end sent");
    let done = client2
        .drain_to_done(|event| resumed.extend(entry_of(event)))
        .expect("clean finish");
    assert!(!done.server_initiated);
    let report = server_b.shutdown();
    assert!(report.errors.is_empty(), "{:?}", report.errors);

    // The acceptance property: pre-crash + replayed + resumed entries,
    // concatenated, stay fully tagged, use both codecs, and decode
    // bit-identically to the full input.
    received.extend(resumed);
    assert!(
        received
            .iter()
            .all(|e| !matches!(e, Entry::Payload(None, ..))),
        "tags survive the journal and the restart"
    );
    let (gd, deflate) = codecs_used(&received);
    assert!(gd && deflate, "the mixed stream exercised both codecs");
    assert_eq!(
        decode(&received),
        data,
        "the restored stream must be bit-identical to the input"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
