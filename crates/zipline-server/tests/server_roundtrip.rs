//! End-to-end server suite: the socket path must be **bit-identical** to an
//! in-process [`PipelinedStream`] over the same configuration, on both
//! transports; concurrent connections stay isolated; shutdown is graceful
//! (`DONE` with `server_initiated`); protocol violations surface as typed
//! `ERROR` records instead of hangs or panics.

use zipline::host::HostPathConfig;
use zipline_engine::{
    CompressionBackend, DictionaryUpdate, EngineConfig, GdBackend, PipelinedStream, SpawnPolicy,
};
use zipline_gd::packet::PacketType;
use zipline_gd::GdConfig;
use zipline_server::{
    run_closed_loop, BackendChoice, ClientSession, Endpoint, LoadConfig, ServerConfigBuilder,
    ServerEvent, ServerHandle,
};
use zipline_traces::{ChunkWorkload, FlowMixConfig, FlowMixWorkload};

/// A small, churn-heavy host shape: 64-identifier dictionary, 32-byte
/// chunks, 64-chunk batches — every test below uses it so the reference
/// and server engines are built from the same struct.
fn small_host() -> HostPathConfig {
    HostPathConfig {
        engine: EngineConfig {
            gd: GdConfig::for_parameters(8, 6).expect("valid GD parameters"),
            shards: 4,
            workers: 2,
            spawn: SpawnPolicy::Inline,
        },
        batch_chunks: 64,
        ..HostPathConfig::paper_default()
    }
}

fn workload_chunks(seed: u64) -> Vec<Vec<u8>> {
    let config = FlowMixConfig {
        chunks: 2048,
        ..FlowMixConfig::small_with_seed(seed)
    };
    FlowMixWorkload::new(config).chunks().collect()
}

/// What one stream produced, in emission order.
#[derive(Debug, PartialEq)]
struct StreamOutput {
    payloads: Vec<(PacketType, Vec<u8>)>,
    controls: Vec<DictionaryUpdate>,
}

/// The in-process ground truth: the same chunks through a local pipelined
/// stream built from the same host configuration.
fn reference_run(host: &HostPathConfig, chunks: &[Vec<u8>]) -> StreamOutput {
    let mut host = host.clone();
    if host.pipeline_depth.is_none() {
        host.pipeline_depth = Some(2);
    }
    let backend = GdBackend::from_engine_config(&host.engine).expect("backend builds");
    let engine = host
        .engine_builder()
        .backend(backend)
        .build()
        .expect("engine builds");
    let mut payloads = Vec::new();
    let mut controls = Vec::new();
    let mut stream = PipelinedStream::with_control_sink(
        engine,
        host.batch_chunks,
        |pt, bytes: &[u8]| payloads.push((pt, bytes.to_vec())),
        Some(|update: &DictionaryUpdate| controls.push(update.clone())),
    )
    .expect("stream builds");
    for chunk in chunks {
        stream.push_record(chunk).expect("push succeeds");
    }
    stream.finish().expect("finish succeeds");
    StreamOutput { payloads, controls }
}

/// Streams `chunks` over a connected session and collects everything the
/// server sends back, asserting a clean client-ended `DONE`.
fn stream_over_socket(
    endpoint: &Endpoint,
    stream_id: u64,
    chunks: &[Vec<u8>],
) -> (StreamOutput, u64) {
    let mut session = ClientSession::connect(endpoint).expect("connects");
    let hello = session.hello(stream_id, 0).expect("hello answered");
    assert!(!hello.warm, "fresh in-memory stream");
    assert_eq!(hello.replay_entries, 0);
    for chunk in chunks {
        session.send_data(chunk).expect("data sent");
    }
    session.end().expect("end sent");
    let mut output = StreamOutput {
        payloads: Vec::new(),
        controls: Vec::new(),
    };
    let done = session
        .drain_to_done(|event| match event {
            ServerEvent::Payload {
                packet_type, bytes, ..
            } => output.payloads.push((packet_type, bytes)),
            ServerEvent::Control(update) => output.controls.push(update),
            other => panic!("unexpected event {other:?}"),
        })
        .expect("stream finishes cleanly");
    assert!(!done.server_initiated, "the client ended this stream");
    (output, done.bytes_in)
}

#[test]
fn tcp_stream_is_bit_identical_to_the_local_pipeline() {
    let host = small_host();
    let chunks = workload_chunks(1);
    let reference = reference_run(&host, &chunks);

    let handle = ServerHandle::bind_tcp(
        "127.0.0.1:0",
        ServerConfigBuilder::new()
            .host(host)
            .build()
            .expect("valid server config"),
    )
    .expect("server binds");
    let (output, bytes_in) = stream_over_socket(handle.endpoint(), 0xA, &chunks);
    assert_eq!(bytes_in, (chunks.len() * 32) as u64);
    assert!(!output.controls.is_empty(), "the workload churns");
    assert_eq!(output, reference, "socket path must match the local engine");

    let report = handle.shutdown();
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.stats.streams_completed, 1);
}

#[cfg(unix)]
#[test]
fn uds_stream_is_bit_identical_to_the_local_pipeline() {
    let host = small_host();
    let chunks = workload_chunks(2);
    let reference = reference_run(&host, &chunks);

    let path = std::env::temp_dir().join(format!("zipline-uds-{}.sock", std::process::id()));
    let handle = ServerHandle::bind_uds(
        &path,
        ServerConfigBuilder::new()
            .host(host)
            .build()
            .expect("valid server config"),
    )
    .expect("server binds");
    let (output, _) = stream_over_socket(handle.endpoint(), 0xB, &chunks);
    assert_eq!(output, reference, "UDS path must match the local engine");

    let report = handle.shutdown();
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(!path.exists(), "socket file removed on shutdown");
}

#[test]
fn concurrent_connections_each_match_their_own_reference() {
    let host = small_host();
    let handle = ServerHandle::bind_tcp(
        "127.0.0.1:0",
        ServerConfigBuilder::new()
            .host(host.clone())
            .build()
            .expect("valid server config"),
    )
    .expect("server binds");
    let endpoint = handle.endpoint().clone();

    let outputs: Vec<(u64, StreamOutput)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4u64)
            .map(|i| {
                let endpoint = endpoint.clone();
                scope.spawn(move || {
                    let chunks = workload_chunks(100 + i);
                    let (output, _) = stream_over_socket(&endpoint, 0x100 + i, &chunks);
                    (100 + i, output)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (seed, output) in outputs {
        let reference = reference_run(&host, &workload_chunks(seed));
        assert_eq!(output, reference, "stream seeded {seed} diverged");
    }
    let report = handle.shutdown();
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.stats.streams_completed, 4);
    assert_eq!(report.stats.connections, 4);
}

#[test]
fn graceful_shutdown_finishes_in_flight_streams_with_done() {
    let host = small_host();
    let handle = ServerHandle::bind_tcp(
        "127.0.0.1:0",
        ServerConfigBuilder::new()
            .host(host)
            .build()
            .expect("valid server config"),
    )
    .expect("server binds");

    let mut session = ClientSession::connect(handle.endpoint()).expect("connects");
    session.hello(0xC, 0).expect("hello answered");
    let chunks = workload_chunks(3);
    let sent: u64 = chunks.iter().map(|c| c.len() as u64).sum();
    for chunk in &chunks {
        session.send_data(chunk).expect("data sent");
    }
    // No END: let the data land, then shut the server down around the
    // still-open stream.
    std::thread::sleep(std::time::Duration::from_millis(300));
    let report = handle.shutdown();
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.stats.streams_completed, 1);

    let done = session
        .drain_to_done(|_| {})
        .expect("server-initiated finish still ends in DONE");
    assert!(done.server_initiated, "the server ended this stream");
    assert_eq!(done.bytes_in, sent, "every pushed byte was committed");
}

#[test]
fn duplicate_stream_ids_are_rejected_and_released() {
    let host = small_host();
    let handle = ServerHandle::bind_tcp(
        "127.0.0.1:0",
        ServerConfigBuilder::new()
            .host(host)
            .build()
            .expect("valid server config"),
    )
    .expect("server binds");

    let mut first = ClientSession::connect(handle.endpoint()).expect("connects");
    first.hello(0xD, 0).expect("hello answered");

    let mut second = ClientSession::connect(handle.endpoint()).expect("connects");
    let err = second.hello(0xD, 0).expect_err("duplicate id must fail");
    assert!(
        err.to_string().contains("already being served"),
        "unexpected error: {err}"
    );

    // The first stream is unaffected and still completes.
    let chunks = workload_chunks(4);
    for chunk in &chunks {
        first.send_data(chunk).expect("data sent");
    }
    first.end().expect("end sent");
    let done = first.drain_to_done(|_| {}).expect("clean finish");
    assert!(!done.server_initiated);

    // With the first stream done, the id becomes free again; the release
    // happens on the handler thread after DONE, so poll briefly.
    let mut reused = false;
    for _ in 0..50 {
        let mut third = ClientSession::connect(handle.endpoint()).expect("connects");
        if third.hello(0xD, 0).is_ok() {
            reused = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(reused, "released id is reusable");

    let report = handle.shutdown();
    assert!(
        report.stats.failed_streams >= 1,
        "the duplicate hello failed loudly"
    );
    assert!(report.stats.streams_completed >= 1);
}

#[test]
fn protocol_violations_surface_as_typed_error_records() {
    let host = small_host();
    let handle = ServerHandle::bind_tcp(
        "127.0.0.1:0",
        ServerConfigBuilder::new()
            .host(host)
            .build()
            .expect("valid server config"),
    )
    .expect("server binds");

    // DATA before CLIENT_HELLO.
    let mut rude = ClientSession::connect(handle.endpoint()).expect("connects");
    rude.send_data(b"no hello").expect("data sent");
    match rude.next_event() {
        Some(ServerEvent::ServerError(message)) => {
            assert!(message.contains("CLIENT_HELLO"), "got: {message}")
        }
        other => panic!("expected ERROR, got {other:?}"),
    }
    drop(rude);

    // A second CLIENT_HELLO mid-stream.
    let mut twice = ClientSession::connect(handle.endpoint()).expect("connects");
    twice.hello(0xE, 0).expect("hello answered");
    let err = twice.hello(0xE, 0).expect_err("second hello must fail");
    assert!(
        err.to_string().contains("CLIENT_HELLO"),
        "unexpected error: {err}"
    );

    let report = handle.shutdown();
    assert_eq!(report.stats.failed_streams, 2);
    assert_eq!(report.stats.streams_completed, 0);
}

#[test]
fn closed_loop_harness_reports_sane_numbers() {
    let host = small_host();
    let handle = ServerHandle::bind_tcp(
        "127.0.0.1:0",
        ServerConfigBuilder::new()
            .host(host.clone())
            .build()
            .expect("valid server config"),
    )
    .expect("server binds");

    let load = LoadConfig {
        connections: 2,
        window_chunks: 256,
        chunk_bytes: host.engine.gd.chunk_bytes,
        batch_chunks: host.batch_chunks,
        backend: BackendChoice::Gd,
    };
    let workloads: Vec<Box<dyn ChunkWorkload + Send>> = (0..2u64)
        .map(|i| {
            Box::new(FlowMixWorkload::new(FlowMixConfig {
                chunks: 2048,
                ..FlowMixConfig::small_with_seed(7 + i)
            })) as Box<dyn ChunkWorkload + Send>
        })
        .collect();
    let report =
        run_closed_loop(handle.endpoint(), &load, "flows", 0x200, workloads).expect("load runs");

    assert_eq!(report.connections, 2);
    assert_eq!(report.records_sent, 2 * 2048);
    assert_eq!(report.bytes_sent, 2 * 2048 * 32);
    assert!(report.payloads > 0);
    assert!(report.wire_bytes > 0);
    assert!(report.throughput_mbps() > 0.0);
    assert_eq!(report.latency.count(), report.records_sent);
    let p50 = report.latency.quantile(0.50);
    let p99 = report.latency.quantile(0.99);
    assert!(p50 > 0 && p50 <= p99 && p99 <= report.latency.max_ns());

    let server = handle.shutdown();
    assert!(server.errors.is_empty(), "{:?}", server.errors);
    assert_eq!(server.stats.streams_completed, 2);
}
