//! The PR-7 acceptance property, over the socket: a **durable server killed
//! mid-stream** and restarted over the same store yields a client-observed
//! record stream **bit-identical** to an uninterrupted run.
//!
//! The run is staged with [`ServerHandle::abort`] (sockets close both ways,
//! streams drop without finishing — exactly the state a process kill leaves
//! behind) against a churn-heavy [`CrashWorkload`], so the recovery has to
//! restore identifier-recycling state, not just a warm cache. The
//! reconnecting client presents its replay cursor (`entries_held`); the
//! server replays the committed journal past it and names the input byte
//! offset to resume from.

use std::path::PathBuf;

use zipline::host::HostPathConfig;
use zipline_engine::{DictionaryUpdate, EngineConfig, SpawnPolicy, SyncPolicy};
use zipline_gd::packet::PacketType;
use zipline_gd::GdConfig;
use zipline_server::{
    server::stream_dir, ClientSession, Endpoint, ServerConfigBuilder, ServerEvent, ServerHandle,
};
use zipline_traces::{ChunkWorkload, CrashWorkload};

const CHUNK: usize = 32;
const STREAM_ID: u64 = 0xCAFE;

/// One client-observed record, in arrival order.
#[derive(Debug, Clone, PartialEq)]
enum Entry {
    Payload(PacketType, Vec<u8>),
    Control(DictionaryUpdate),
}

fn entry_of(event: ServerEvent) -> Option<Entry> {
    match event {
        ServerEvent::Payload {
            packet_type, bytes, ..
        } => Some(Entry::Payload(packet_type, bytes)),
        ServerEvent::Control(update) => Some(Entry::Control(update)),
        _ => None,
    }
}

/// Churn-heavy durable host shape: 64-identifier dictionary, 32-chunk
/// batches, checkpoint every batch, fdatasync barriers.
fn durable_host(dir: PathBuf) -> HostPathConfig {
    HostPathConfig {
        engine: EngineConfig {
            gd: GdConfig::for_parameters(8, 6).expect("valid GD parameters"),
            shards: 4,
            workers: 2,
            spawn: SpawnPolicy::Inline,
        },
        batch_chunks: 32,
        durable: Some(dir),
        sync: SyncPolicy::Data,
        ..HostPathConfig::paper_default()
    }
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zipline-server-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bind(dir: PathBuf) -> ServerHandle {
    ServerHandle::bind_tcp(
        "127.0.0.1:0",
        ServerConfigBuilder::new()
            .host(durable_host(dir))
            .build()
            .expect("valid server config"),
    )
    .expect("server binds")
}

/// Streams `bytes` (chunked) through one clean session, returning every
/// payload/control entry in order.
fn uninterrupted_run(endpoint: &Endpoint, bytes: &[u8]) -> Vec<Entry> {
    let mut session = ClientSession::connect(endpoint).expect("connects");
    let hello = session.hello(STREAM_ID, 0).expect("hello answered");
    assert_eq!(hello.replay_entries, 0, "fresh store has nothing to replay");
    for chunk in bytes.chunks(CHUNK) {
        session.send_data(chunk).expect("data sent");
    }
    session.end().expect("end sent");
    let mut entries = Vec::new();
    let done = session
        .drain_to_done(|event| entries.extend(entry_of(event)))
        .expect("clean finish");
    assert_eq!(done.bytes_in, bytes.len() as u64);
    entries
}

#[test]
fn killed_mid_stream_and_restarted_is_bit_identical_to_uninterrupted() {
    let workload = CrashWorkload::exceeding_capacity(64, 4, CHUNK);
    let full_bytes = workload.full().bytes();

    // Ground truth: the same stream against a durable server that never
    // dies.
    let ref_dir = temp_root("ref");
    let ref_server = bind(ref_dir.clone());
    let reference = uninterrupted_run(ref_server.endpoint(), &full_bytes);
    let report = ref_server.shutdown();
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(
        reference
            .iter()
            .any(|e| matches!(e, Entry::Control(DictionaryUpdate { .. }))),
        "the workload must churn the dictionary"
    );

    // Incarnation 1: feed the pre-crash phase, never send END, kill the
    // server once some responses have arrived.
    let crash_dir = temp_root("crash");
    let server_a = bind(crash_dir.clone());
    let mut client1 = ClientSession::connect(server_a.endpoint()).expect("connects");
    let hello = client1.hello(STREAM_ID, 0).expect("hello answered");
    assert!(!hello.warm);
    let mut received: Vec<Entry> = Vec::new();
    for chunk in workload.pre_crash().chunks() {
        client1.send_data(&chunk).expect("data sent");
        while let Some(event) = client1.try_event() {
            received.extend(entry_of(event));
        }
    }
    // Let responses land so the kill happens with entries both delivered
    // and still in flight; completeness is not required — whatever arrived
    // becomes the replay cursor.
    while received.len() < 50 {
        match client1.next_event() {
            Some(event) => received.extend(entry_of(event)),
            None => panic!("server hung up before the staged crash"),
        }
    }
    server_a.abort();
    // Drain the tail: only complete records count, a torn one is dropped by
    // the reader — exactly the client's view of a real crash.
    for event in client1.close() {
        received.extend(entry_of(event));
    }
    let held = received.len() as u64;
    assert!(
        stream_dir(&crash_dir, STREAM_ID)
            .join("frames.log")
            .exists()
            || stream_dir(&crash_dir, STREAM_ID).exists(),
        "the stream journaled under its own directory"
    );

    // Incarnation 2: restart over the same store, reconnect with the
    // replay cursor, resume input at the server-named offset.
    let server_b = bind(crash_dir.clone());
    let mut client2 = ClientSession::connect(server_b.endpoint()).expect("connects");
    let hello = client2.hello(STREAM_ID, held).expect("hello answered");
    assert!(hello.warm, "restart must restore the durable store");
    assert_eq!(
        hello.reseed_entries, 0,
        "a live journal replays, not reseeds"
    );
    let resume = hello.resume_bytes_in as usize;
    assert_eq!(resume % CHUNK, 0, "commits cut at whole-batch boundaries");
    assert!(
        resume <= workload.crash_offset_bytes(),
        "cannot have committed past the crash point"
    );

    let mut resumed: Vec<Entry> = Vec::new();
    for chunk in full_bytes[resume..].chunks(CHUNK) {
        client2.send_data(chunk).expect("data sent");
        while let Some(event) = client2.try_event() {
            resumed.extend(entry_of(event));
        }
    }
    client2.end().expect("end sent");
    let done = client2
        .drain_to_done(|event| resumed.extend(entry_of(event)))
        .expect("clean finish");
    assert!(!done.server_initiated);
    let report = server_b.shutdown();
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert!(
        report.stats.replayed_entries > 0 || held == report.stats.replayed_entries,
        "journal replay is part of the resume path"
    );

    // The acceptance property: pre-crash + replayed + resumed records,
    // concatenated, are bit-identical to the uninterrupted run.
    received.extend(resumed);
    assert_eq!(
        received.len(),
        reference.len(),
        "crash-restart stream length diverges from the uninterrupted run"
    );
    assert_eq!(
        received, reference,
        "crash-restart stream must be bit-identical to the uninterrupted run"
    );

    // Epilogue: after the clean DONE the journal compacted and the cursor
    // reset — a cold reconnect is resynced by synthesized RESEED installs,
    // not by replay.
    let server_c = bind(crash_dir.clone());
    let mut client3 = ClientSession::connect(server_c.endpoint()).expect("connects");
    let hello = client3.hello(STREAM_ID, 0).expect("hello answered");
    assert!(hello.warm);
    assert_eq!(hello.replay_entries, 0, "compacted journal has no entries");
    assert!(
        hello.reseed_entries > 0,
        "a surviving dictionary reseeds a cold client"
    );
    let mut reseeds = 0u64;
    client3.end().expect("end sent");
    let done = client3
        .drain_to_done(|event| {
            if matches!(event, ServerEvent::Reseed(_)) {
                reseeds += 1;
            }
        })
        .expect("empty resumed stream still finishes");
    assert_eq!(reseeds, hello.reseed_entries);
    assert_eq!(done.bytes_in, 0, "nothing was pushed this incarnation");
    assert_eq!(
        hello.resume_bytes_in,
        full_bytes.len() as u64,
        "the store's input-byte total persists across the clean finish"
    );
    drop(server_c.shutdown());

    let _ = std::fs::remove_dir_all(&ref_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}
