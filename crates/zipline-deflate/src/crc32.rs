//! CRC-32 (IEEE 802.3, reflected) as used by the gzip trailer.
//!
//! This is the conventional byte-reflected CRC-32 with polynomial
//! `0xEDB88320`, initial value `0xFFFFFFFF` and final inversion — distinct
//! from the non-reflected, non-premultiplied CRC convention the GD transform
//! uses (`zipline-gd`).

/// Streaming CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

/// 256-entry lookup table for the reflected polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Creates a fresh CRC-32 state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the CRC.
    pub fn update(&mut self, data: &[u8]) {
        let table = table();
        for &b in data {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ table[idx];
        }
    }

    /// Finishes and returns the CRC value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 % 251) as u8).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(13) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(&data));
    }

    #[test]
    fn default_is_fresh_state() {
        let c: Crc32 = Default::default();
        assert_eq!(c.finalize(), crc32(b""));
    }
}
