//! LZ77 matching with hash chains.
//!
//! Produces the literal / (length, distance) token stream that the DEFLATE
//! block encoders consume. The matcher follows the classic zlib structure:
//! a hash of the next three bytes indexes a chain of previous positions, the
//! chain is searched up to a configurable depth, and an optional "lazy"
//! evaluation defers emitting a match by one byte when the next position
//! offers a longer one.

use crate::tables::{MAX_MATCH, MIN_MATCH, WINDOW_SIZE};

/// One element of the token stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference of `length` bytes starting `distance` bytes back.
    Match {
        /// Match length in bytes (3..=258).
        length: u16,
        /// Match distance in bytes (1..=32768).
        distance: u16,
    },
}

/// Matcher tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatcherConfig {
    /// Maximum number of chain positions examined per match attempt.
    pub max_chain: usize,
    /// Stop searching as soon as a match of at least this length is found.
    pub good_enough: usize,
    /// Enable lazy matching (defer a match if the next byte starts a longer
    /// one).
    pub lazy: bool,
}

impl MatcherConfig {
    /// Fast preset: shallow chains, greedy.
    pub fn fast() -> Self {
        Self {
            max_chain: 16,
            good_enough: 32,
            lazy: false,
        }
    }

    /// Default preset: a balance similar to zlib level 6.
    pub fn default_level() -> Self {
        Self {
            max_chain: 128,
            good_enough: 128,
            lazy: true,
        }
    }

    /// Best preset: deep chains, lazy.
    pub fn best() -> Self {
        Self {
            max_chain: 1024,
            good_enough: MAX_MATCH,
            lazy: true,
        }
    }
}

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

fn hash3(data: &[u8], pos: usize) -> usize {
    let v = (data[pos] as u32) | ((data[pos + 1] as u32) << 8) | ((data[pos + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Longest common prefix of `data[a..]` and `data[b..]`, capped at
/// `MAX_MATCH`.
fn match_length(data: &[u8], a: usize, b: usize) -> usize {
    let limit = MAX_MATCH.min(data.len() - b);
    let mut len = 0;
    while len < limit && data[a + len] == data[b + len] {
        len += 1;
    }
    len
}

/// Tokenizes `data` into literals and matches.
pub fn tokenize(data: &[u8], config: MatcherConfig) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(data.len() / 2 + 16);
    if data.len() < MIN_MATCH {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }

    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; data.len()];

    let insert = |head: &mut Vec<usize>, prev: &mut Vec<usize>, data: &[u8], pos: usize| {
        if pos + MIN_MATCH <= data.len() {
            let h = hash3(data, pos);
            prev[pos] = head[h];
            head[h] = pos;
        }
    };

    let find_best =
        |head: &[usize], prev: &[usize], data: &[u8], pos: usize| -> Option<(usize, usize)> {
            if pos + MIN_MATCH > data.len() {
                return None;
            }
            let h = hash3(data, pos);
            let mut candidate = head[h];
            let mut best_len = MIN_MATCH - 1;
            let mut best_dist = 0usize;
            let mut chain = 0usize;
            while candidate != usize::MAX && chain < config.max_chain {
                let distance = pos - candidate;
                if distance > WINDOW_SIZE {
                    break;
                }
                let len = match_length(data, candidate, pos);
                if len > best_len {
                    best_len = len;
                    best_dist = distance;
                    if len >= config.good_enough || len == MAX_MATCH {
                        break;
                    }
                }
                candidate = prev[candidate];
                chain += 1;
            }
            if best_len >= MIN_MATCH {
                Some((best_len, best_dist))
            } else {
                None
            }
        };

    let mut pos = 0usize;
    while pos < data.len() {
        let current = find_best(&head, &prev, data, pos);
        match current {
            None => {
                tokens.push(Token::Literal(data[pos]));
                insert(&mut head, &mut prev, data, pos);
                pos += 1;
            }
            Some((mut len, mut dist)) => {
                // Lazy evaluation: if the next position has a strictly longer
                // match, emit the current byte as a literal instead.
                if config.lazy && pos + 1 < data.len() {
                    insert(&mut head, &mut prev, data, pos);
                    if let Some((next_len, next_dist)) = find_best(&head, &prev, data, pos + 1) {
                        if next_len > len {
                            tokens.push(Token::Literal(data[pos]));
                            pos += 1;
                            len = next_len;
                            dist = next_dist;
                        }
                    }
                    // Emit the (possibly deferred) match starting at `pos`.
                    tokens.push(Token::Match {
                        length: len as u16,
                        distance: dist as u16,
                    });
                    let end = pos + len;
                    // `pos` itself may or may not have been inserted above
                    // (it was, when lazy); insert the remaining covered
                    // positions so later matches can reference them.
                    let mut p = pos + 1;
                    while p < end && p + MIN_MATCH <= data.len() {
                        insert(&mut head, &mut prev, data, p);
                        p += 1;
                    }
                    pos = end;
                } else {
                    tokens.push(Token::Match {
                        length: len as u16,
                        distance: dist as u16,
                    });
                    let end = pos + len;
                    let mut p = pos;
                    while p < end && p + MIN_MATCH <= data.len() {
                        insert(&mut head, &mut prev, data, p);
                        p += 1;
                    }
                    pos = end;
                }
            }
        }
    }
    tokens
}

/// Expands a token stream back into bytes (the reference decoder used by
/// tests; the real decoder works from the bit stream in `inflate`).
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for token in tokens {
        match *token {
            Token::Literal(b) => out.push(b),
            Token::Match { length, distance } => {
                let start = out.len() - distance as usize;
                for i in 0..length as usize {
                    let b = out[start + i];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8], config: MatcherConfig) {
        let tokens = tokenize(data, config);
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn short_inputs_are_all_literals() {
        for data in [&b""[..], b"a", b"ab"] {
            let tokens = tokenize(data, MatcherConfig::default_level());
            assert_eq!(tokens.len(), data.len());
            assert!(tokens.iter().all(|t| matches!(t, Token::Literal(_))));
        }
    }

    #[test]
    fn repeated_data_produces_matches() {
        let data = b"abcabcabcabcabcabc";
        let tokens = tokenize(data, MatcherConfig::default_level());
        assert!(tokens.iter().any(|t| matches!(t, Token::Match { .. })));
        assert_eq!(expand(&tokens), data);
        // The match distance for a period-3 repeat is 3.
        let first_match = tokens.iter().find_map(|t| match t {
            Token::Match { distance, .. } => Some(*distance),
            _ => None,
        });
        assert_eq!(first_match, Some(3));
    }

    #[test]
    fn run_of_identical_bytes_uses_overlapping_match() {
        let data = vec![0x41u8; 1000];
        let tokens = tokenize(&data, MatcherConfig::default_level());
        // 1 literal + a few long matches, far fewer tokens than bytes.
        assert!(tokens.len() < 20, "tokens: {}", tokens.len());
        assert_eq!(expand(&tokens), data);
        // Overlapping match: distance 1, lengths up to 258.
        assert!(tokens.iter().any(
            |t| matches!(t, Token::Match { distance: 1, length } if *length == MAX_MATCH as u16)
        ));
    }

    #[test]
    fn matches_never_exceed_window_or_max_length() {
        let mut data = Vec::new();
        for i in 0..40_000u32 {
            data.push((i % 251) as u8);
            data.push((i % 7) as u8);
        }
        let tokens = tokenize(&data, MatcherConfig::fast());
        for t in &tokens {
            if let Token::Match { length, distance } = t {
                assert!((*length as usize) <= MAX_MATCH);
                assert!((*length as usize) >= MIN_MATCH);
                assert!((*distance as usize) <= WINDOW_SIZE);
                assert!(*distance >= 1);
            }
        }
        assert_eq!(expand(&tokens), data);
    }

    #[test]
    fn all_presets_roundtrip_structured_data() {
        let mut data = Vec::new();
        for i in 0..5_000u32 {
            data.extend_from_slice(format!("sensor-{} value={}\n", i % 50, i % 13).as_bytes());
        }
        for config in [
            MatcherConfig::fast(),
            MatcherConfig::default_level(),
            MatcherConfig::best(),
        ] {
            roundtrip(&data, config);
        }
    }

    #[test]
    fn lazy_matching_never_hurts_correctness() {
        let data = b"abcdebcdefghibcdefghijklmnop".repeat(20);
        roundtrip(
            &data,
            MatcherConfig {
                max_chain: 64,
                good_enough: 258,
                lazy: true,
            },
        );
        roundtrip(
            &data,
            MatcherConfig {
                max_chain: 64,
                good_enough: 258,
                lazy: false,
            },
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn arbitrary_data_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4000)) {
            roundtrip(&data, MatcherConfig::default_level());
        }

        #[test]
        fn low_entropy_data_roundtrips_and_compresses(
            pattern in proptest::collection::vec(any::<u8>(), 1..20),
            repeats in 10usize..200,
        ) {
            let data: Vec<u8> = pattern.iter().copied().cycle().take(pattern.len() * repeats).collect();
            let tokens = tokenize(&data, MatcherConfig::default_level());
            prop_assert_eq!(expand(&tokens), data.clone());
            // Repetitive input must yield fewer tokens than bytes.
            prop_assert!(tokens.len() < data.len());
        }
    }
}
