//! LSB-first bit streams as required by DEFLATE.
//!
//! RFC 1951 packs data elements starting at the least-significant bit of each
//! byte; Huffman codes are emitted most-significant-bit first *within the
//! code* but the codes themselves fill bytes LSB-first. These helpers expose
//! exactly the two primitives the encoder and decoder need: `write_bits` /
//! `read_bits` for "normal" values (LSB-first) and explicit byte alignment
//! for stored blocks.

use crate::error::{DeflateError, Result};

/// LSB-first bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    out: Vec<u8>,
    /// Bits accumulated but not yet flushed to `out` (LSB = oldest).
    bit_buffer: u64,
    /// Number of valid bits in `bit_buffer`.
    bit_count: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer that appends to an existing byte buffer (which must
    /// end on a byte boundary, as every byte buffer does). This is what lets
    /// the streaming entry points (`deflate_compress_into`,
    /// `gzip_compress_into`) reuse one caller-owned allocation across
    /// members instead of building and copying a fresh `Vec` per call.
    pub fn with_buffer(out: Vec<u8>) -> Self {
        Self {
            out,
            ..Self::default()
        }
    }

    /// Writes the low `count` bits of `value`, LSB first.
    pub fn write_bits(&mut self, value: u32, count: u32) {
        debug_assert!(count <= 32);
        debug_assert!(count == 32 || value < (1 << count));
        self.bit_buffer |= (value as u64) << self.bit_count;
        self.bit_count += count;
        while self.bit_count >= 8 {
            self.out.push((self.bit_buffer & 0xFF) as u8);
            self.bit_buffer >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Writes a Huffman code of `len` bits. Huffman codes are defined
    /// MSB-first, so the bits are reversed before the LSB-first write.
    pub fn write_code(&mut self, code: u32, len: u32) {
        let reversed = reverse_bits(code, len);
        self.write_bits(reversed, len);
    }

    /// Pads with zero bits to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        if self.bit_count > 0 {
            self.out.push((self.bit_buffer & 0xFF) as u8);
            self.bit_buffer = 0;
            self.bit_count = 0;
        }
    }

    /// Appends whole bytes; the stream must be byte aligned.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        debug_assert_eq!(self.bit_count, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Number of whole bytes produced so far (excluding buffered bits).
    pub fn byte_len(&self) -> usize {
        self.out.len()
    }

    /// Finishes the stream, flushing any partial byte.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.out
    }
}

/// Reverses the low `len` bits of `value`.
pub fn reverse_bits(value: u32, len: u32) -> u32 {
    let mut v = value;
    let mut out = 0;
    for _ in 0..len {
        out = (out << 1) | (v & 1);
        v >>= 1;
    }
    out
}

/// LSB-first bit reader.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Index of the next byte to load.
    pos: usize,
    bit_buffer: u64,
    bit_count: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            bit_buffer: 0,
            bit_count: 0,
        }
    }

    fn refill(&mut self) {
        while self.bit_count <= 56 && self.pos < self.data.len() {
            self.bit_buffer |= (self.data[self.pos] as u64) << self.bit_count;
            self.pos += 1;
            self.bit_count += 8;
        }
    }

    /// Reads `count` bits, LSB first.
    pub fn read_bits(&mut self, count: u32) -> Result<u32> {
        debug_assert!(count <= 32);
        self.refill();
        if self.bit_count < count {
            return Err(DeflateError::UnexpectedEof);
        }
        let mask = if count == 32 {
            u32::MAX
        } else {
            (1u32 << count) - 1
        };
        let value = (self.bit_buffer as u32) & mask;
        self.bit_buffer >>= count;
        self.bit_count -= count;
        Ok(value)
    }

    /// Reads a single bit.
    pub fn read_bit(&mut self) -> Result<u32> {
        self.read_bits(1)
    }

    /// Discards bits up to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        let partial = self.bit_count % 8;
        self.bit_buffer >>= partial;
        self.bit_count -= partial;
    }

    /// Reads `len` whole bytes; the stream must be byte aligned.
    pub fn read_bytes(&mut self, len: usize) -> Result<Vec<u8>> {
        debug_assert_eq!(self.bit_count % 8, 0, "read_bytes requires byte alignment");
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.read_bits(8)? as u8);
        }
        Ok(out)
    }

    /// True when every bit has been consumed (ignoring up to 7 trailing
    /// padding bits in the final byte).
    pub fn is_exhausted(&mut self) -> bool {
        self.refill();
        self.bit_count < 8 && self.pos >= self.data.len()
    }

    /// Number of input bytes fully or partially consumed so far. Exact when
    /// the reader is byte aligned (call [`align_to_byte`](Self::align_to_byte)
    /// first); used by the gzip container to locate its trailer.
    pub fn bytes_consumed(&self) -> usize {
        self.pos - (self.bit_count as usize) / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip_lsb_first() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b1, 1);
        w.write_bits(0xABCD, 16);
        w.write_bits(0x3, 2);
        let bytes = w.into_bytes();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bit().unwrap(), 1);
        assert_eq!(r.read_bits(16).unwrap(), 0xABCD);
        assert_eq!(r.read_bits(2).unwrap(), 0x3);
    }

    #[test]
    fn first_written_bit_is_lsb_of_first_byte() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1); // a single 1 bit
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b0000_0001]);
    }

    #[test]
    fn reverse_bits_examples() {
        assert_eq!(reverse_bits(0b110, 3), 0b011);
        assert_eq!(reverse_bits(0b1, 1), 0b1);
        assert_eq!(reverse_bits(0b10000000, 8), 0b00000001);
        assert_eq!(reverse_bits(0, 5), 0);
    }

    #[test]
    fn huffman_codes_are_written_msb_first() {
        // A 2-bit code 0b10 must appear MSB-first in the stream: reading the
        // stream bit by bit yields 1 then 0.
        let mut w = BitWriter::new();
        w.write_code(0b10, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit().unwrap(), 1); // MSB of the code first
        assert_eq!(r.read_bit().unwrap(), 0);
    }

    #[test]
    fn alignment_and_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 1);
        w.align_to_byte();
        w.write_bytes(&[0xDE, 0xAD]);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x01, 0xDE, 0xAD]);

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit().unwrap(), 1);
        r.align_to_byte();
        assert_eq!(r.read_bytes(2).unwrap(), vec![0xDE, 0xAD]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn reading_past_the_end_errors() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(r.read_bits(1).is_err());
        let mut r = BitReader::new(&[]);
        assert!(r.read_bit().is_err());
        assert!(r.is_exhausted());
    }

    #[test]
    fn byte_len_tracks_flushed_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.byte_len(), 0);
        w.write_bits(0xFF, 8);
        assert_eq!(w.byte_len(), 1);
        w.write_bits(0x1, 2);
        assert_eq!(w.byte_len(), 1, "partial byte not flushed yet");
    }
}
