//! DEFLATE (RFC 1951) and gzip (RFC 1952), implemented from scratch.
//!
//! The ZipLine evaluation compares its in-network compression against the
//! `gzip` command-line tool (Figure 3). This crate is that baseline: an
//! LZ77 matcher, canonical Huffman coding, the three DEFLATE block types
//! (stored, fixed, dynamic) for both compression and decompression, and the
//! gzip container with its CRC-32 integrity check.
//!
//! The paper's point about DEFLATE — that it "requires a minimum of 3 kB to
//! compress data" and has unbounded execution time, making it impossible to
//! run in a Tofino data plane — is precisely why this implementation lives
//! on the host side of the benchmark harness and not in a switch program.
//!
//! # Example
//!
//! ```
//! let data = b"aaaaaaaaaabbbbbbbbbbaaaaaaaaaa".repeat(10);
//! let compressed = zipline_deflate::gzip_compress(&data, zipline_deflate::Level::Default);
//! assert!(compressed.len() < data.len());
//! let restored = zipline_deflate::gzip_decompress(&compressed).unwrap();
//! assert_eq!(restored, data);
//! ```

pub mod bitstream;
pub mod crc32;
pub mod deflate;
pub mod error;
pub mod gzip;
pub mod huffman;
pub mod inflate;
pub mod lz77;
pub mod tables;

pub use deflate::{deflate_compress, deflate_compress_into, Level};
pub use error::DeflateError;
pub use gzip::{gzip_compress, gzip_compress_into, gzip_decompress, gzip_decompress_into};
pub use inflate::{inflate_decompress, inflate_into};

/// Compresses `data` into a raw DEFLATE stream.
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    deflate_compress(data, level)
}

/// Decompresses a raw DEFLATE stream.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, DeflateError> {
    inflate_decompress(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_level_roundtrip() {
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 17) as u8).collect();
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            let c = compress(&data, level);
            assert_eq!(decompress(&c).unwrap(), data, "level {level:?}");
        }
    }

    #[test]
    fn doc_example_compiles_and_compresses() {
        let data = b"aaaaaaaaaabbbbbbbbbbaaaaaaaaaa".repeat(10);
        let compressed = gzip_compress(&data, Level::Default);
        assert!(compressed.len() < data.len());
        assert_eq!(gzip_decompress(&compressed).unwrap(), data);
    }
}
