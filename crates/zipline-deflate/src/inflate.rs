//! DEFLATE decoding (RFC 1951).

use crate::bitstream::BitReader;
use crate::error::{DeflateError, Result};
use crate::huffman::HuffmanDecoder;
use crate::tables::{
    fixed_dist_lengths, fixed_litlen_lengths, symbol_to_distance, symbol_to_length, CLC_ORDER,
    END_OF_BLOCK, WINDOW_SIZE,
};

/// Decompresses a raw DEFLATE stream.
pub fn inflate_decompress(data: &[u8]) -> Result<Vec<u8>> {
    Ok(inflate_with_consumed(data)?.0)
}

/// Decompresses a raw DEFLATE stream and also reports how many input bytes
/// it occupied (used by the gzip container to find its trailer).
pub fn inflate_with_consumed(data: &[u8]) -> Result<(Vec<u8>, usize)> {
    let mut out = Vec::new();
    let consumed = inflate_into(data, &mut out)?;
    Ok((out, consumed))
}

/// Streaming-friendly variant: appends the decompressed bytes to `out`
/// (reusing its allocation) and returns how many input bytes the DEFLATE
/// stream occupied. Back-references are validated against the bytes this
/// stream produced, never against whatever the caller already accumulated
/// in `out`, so a corrupt stream cannot read across member boundaries.
pub fn inflate_into(data: &[u8], out: &mut Vec<u8>) -> Result<usize> {
    let start = out.len();
    let mut reader = BitReader::new(data);
    loop {
        let bfinal = reader.read_bit()?;
        let btype = reader.read_bits(2)?;
        match btype {
            0b00 => inflate_stored(&mut reader, out)?,
            0b01 => {
                let litlen = HuffmanDecoder::from_lengths(&fixed_litlen_lengths())?;
                let dist = HuffmanDecoder::from_lengths(&fixed_dist_lengths())?;
                inflate_block(&mut reader, out, start, &litlen, &dist)?;
            }
            0b10 => {
                let (litlen, dist) = read_dynamic_tables(&mut reader)?;
                inflate_block(&mut reader, out, start, &litlen, &dist)?;
            }
            _ => return Err(DeflateError::Corrupt("reserved block type 11".into())),
        }
        if bfinal == 1 {
            break;
        }
    }
    reader.align_to_byte();
    Ok(reader.bytes_consumed())
}

fn inflate_stored(reader: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<()> {
    reader.align_to_byte();
    let len_bytes = reader.read_bytes(2)?;
    let nlen_bytes = reader.read_bytes(2)?;
    let len = u16::from_le_bytes([len_bytes[0], len_bytes[1]]);
    let nlen = u16::from_le_bytes([nlen_bytes[0], nlen_bytes[1]]);
    if len != !nlen {
        return Err(DeflateError::Corrupt(
            "stored block LEN/NLEN mismatch".into(),
        ));
    }
    let data = reader.read_bytes(len as usize)?;
    out.extend_from_slice(&data);
    Ok(())
}

fn read_dynamic_tables(reader: &mut BitReader<'_>) -> Result<(HuffmanDecoder, HuffmanDecoder)> {
    let hlit = reader.read_bits(5)? as usize + 257;
    let hdist = reader.read_bits(5)? as usize + 1;
    let hclen = reader.read_bits(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(DeflateError::Corrupt(format!(
            "HLIT {hlit} / HDIST {hdist} out of range"
        )));
    }

    let mut clc_lengths = [0u8; 19];
    for &sym in CLC_ORDER.iter().take(hclen) {
        clc_lengths[sym] = reader.read_bits(3)? as u8;
    }
    let clc = HuffmanDecoder::from_lengths(&clc_lengths)?;

    // Decode the HLIT + HDIST code lengths with the code-length code.
    let total = hlit + hdist;
    let mut lengths = Vec::with_capacity(total);
    while lengths.len() < total {
        let symbol = clc.decode(reader)?;
        match symbol {
            0..=15 => lengths.push(symbol as u8),
            16 => {
                let &prev = lengths.last().ok_or_else(|| {
                    DeflateError::Corrupt("repeat with no previous length".into())
                })?;
                let count = reader.read_bits(2)? + 3;
                for _ in 0..count {
                    lengths.push(prev);
                }
            }
            17 => {
                let count = reader.read_bits(3)? as usize + 3;
                lengths.resize(lengths.len() + count, 0);
            }
            18 => {
                let count = reader.read_bits(7)? as usize + 11;
                lengths.resize(lengths.len() + count, 0);
            }
            other => {
                return Err(DeflateError::Corrupt(format!(
                    "invalid code-length symbol {other}"
                )))
            }
        }
    }
    if lengths.len() != total {
        return Err(DeflateError::Corrupt(
            "code length run overflows table".into(),
        ));
    }
    if lengths[END_OF_BLOCK as usize] == 0 {
        return Err(DeflateError::Corrupt(
            "end-of-block symbol has no code".into(),
        ));
    }
    let litlen = HuffmanDecoder::from_lengths(&lengths[..hlit])?;
    let dist = HuffmanDecoder::from_lengths(&lengths[hlit..])?;
    Ok((litlen, dist))
}

fn inflate_block(
    reader: &mut BitReader<'_>,
    out: &mut Vec<u8>,
    stream_start: usize,
    litlen: &HuffmanDecoder,
    dist: &HuffmanDecoder,
) -> Result<()> {
    loop {
        let symbol = litlen.decode(reader)?;
        match symbol {
            0..=255 => out.push(symbol as u8),
            s if s == END_OF_BLOCK => return Ok(()),
            256..=285 => {
                let (base_len, len_extra) = symbol_to_length(symbol)
                    .ok_or_else(|| DeflateError::Corrupt(format!("bad length symbol {symbol}")))?;
                let length = base_len as usize + reader.read_bits(len_extra as u32)? as usize;

                let dist_symbol = dist.decode(reader)?;
                let (base_dist, dist_extra) = symbol_to_distance(dist_symbol).ok_or_else(|| {
                    DeflateError::Corrupt(format!("bad distance symbol {dist_symbol}"))
                })?;
                let distance = base_dist as usize + reader.read_bits(dist_extra as u32)? as usize;

                if distance == 0 || distance > out.len() - stream_start || distance > WINDOW_SIZE {
                    return Err(DeflateError::Corrupt(format!(
                        "back-reference distance {distance} exceeds output ({} bytes so far)",
                        out.len() - stream_start
                    )));
                }
                let start = out.len() - distance;
                for i in 0..length {
                    let byte = out[start + i];
                    out.push(byte);
                }
            }
            other => return Err(DeflateError::Corrupt(format!("invalid symbol {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::{deflate_compress, Level};
    use proptest::prelude::*;

    #[test]
    fn decodes_a_stored_block() {
        // Hand-built stored block: BFINAL=1, BTYPE=00, LEN=3.
        let mut stream = vec![0b0000_0001u8];
        stream.extend_from_slice(&3u16.to_le_bytes());
        stream.extend_from_slice(&(!3u16).to_le_bytes());
        stream.extend_from_slice(b"abc");
        assert_eq!(inflate_decompress(&stream).unwrap(), b"abc");
    }

    #[test]
    fn rejects_len_nlen_mismatch() {
        let mut stream = vec![0b0000_0001u8];
        stream.extend_from_slice(&3u16.to_le_bytes());
        stream.extend_from_slice(&3u16.to_le_bytes()); // wrong complement
        stream.extend_from_slice(b"abc");
        assert!(inflate_decompress(&stream).is_err());
    }

    #[test]
    fn rejects_reserved_block_type() {
        // BFINAL=1, BTYPE=11.
        let stream = [0b0000_0111u8];
        assert!(matches!(
            inflate_decompress(&stream),
            Err(DeflateError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_truncated_streams() {
        let data = b"some reasonably long test input to make several bytes".repeat(4);
        let compressed = deflate_compress(&data, Level::Default);
        for cut in [0, 1, compressed.len() / 2, compressed.len() - 1] {
            assert!(
                inflate_decompress(&compressed[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_distance_beyond_output() {
        // Fixed block whose first symbol is a match (no previous output).
        // Fixed code for length symbol 257 (len 3) is 7 bits: 0000001;
        // distance symbol 0 is 5 bits: 00000.
        use crate::bitstream::BitWriter;
        use crate::huffman::HuffmanEncoder;
        let litlen = HuffmanEncoder::from_lengths(&crate::tables::fixed_litlen_lengths()).unwrap();
        let dist = HuffmanEncoder::from_lengths(&crate::tables::fixed_dist_lengths()).unwrap();
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        litlen.write(&mut w, 257).unwrap();
        dist.write(&mut w, 0).unwrap();
        litlen.write(&mut w, 256).unwrap();
        let stream = w.into_bytes();
        let err = inflate_decompress(&stream).unwrap_err();
        assert!(matches!(err, DeflateError::Corrupt(_)));
    }

    #[test]
    fn consumed_bytes_excludes_trailing_garbage() {
        let data = b"hello hello hello hello";
        let mut compressed = deflate_compress(data, Level::Default);
        let clean_len = compressed.len();
        compressed.extend_from_slice(&[0xAA; 8]); // trailer-like garbage
        let (out, consumed) = inflate_with_consumed(&compressed).unwrap();
        assert_eq!(out, data);
        assert_eq!(consumed, clean_len);
    }

    #[test]
    fn corrupting_compressed_bytes_is_detected_or_changes_output() {
        // DEFLATE has no integrity check of its own, so corruption either
        // fails to parse or yields different bytes — it must never panic.
        let data = b"abcdefgabcdefgabcdefg".repeat(50);
        let compressed = deflate_compress(&data, Level::Default);
        for i in (0..compressed.len()).step_by(7) {
            let mut corrupted = compressed.clone();
            corrupted[i] ^= 0x10;
            if let Ok(out) = inflate_decompress(&corrupted) {
                assert_ne!(out.is_empty(), data.is_empty())
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn roundtrip_all_levels(data in proptest::collection::vec(any::<u8>(), 0..3000)) {
            for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
                let compressed = deflate_compress(&data, level);
                prop_assert_eq!(inflate_decompress(&compressed).unwrap(), data.clone());
            }
        }

        #[test]
        fn roundtrip_structured(data in proptest::collection::vec(0u8..4, 0..6000)) {
            // Heavily repetitive alphabet exercises long matches and RLE paths.
            let compressed = deflate_compress(&data, Level::Best);
            prop_assert_eq!(inflate_decompress(&compressed).unwrap(), data.clone());
            if data.len() > 1000 {
                prop_assert!(compressed.len() < data.len());
            }
        }

        #[test]
        fn random_input_bytes_never_panic_the_decoder(data in proptest::collection::vec(any::<u8>(), 0..400)) {
            let _ = inflate_decompress(&data);
        }
    }
}
