//! DEFLATE block encoding (RFC 1951).

use crate::bitstream::BitWriter;
use crate::huffman::{build_code_lengths, HuffmanEncoder};
use crate::lz77::{tokenize, MatcherConfig, Token};
use crate::tables::{
    distance_to_symbol, fixed_dist_lengths, fixed_litlen_lengths, length_to_symbol, CLC_ORDER,
    END_OF_BLOCK, MAX_CLC_BITS, MAX_CODE_BITS, NUM_DIST_SYMBOLS, NUM_LITLEN_SYMBOLS,
};

/// Compression level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Level {
    /// No compression: stored blocks only.
    Store,
    /// Shallow match search, fixed Huffman codes.
    Fast,
    /// zlib-level-6-like: lazy matching, dynamic Huffman codes.
    #[default]
    Default,
    /// Deep match search, dynamic Huffman codes.
    Best,
}

impl Level {
    fn matcher(&self) -> MatcherConfig {
        match self {
            Level::Store => MatcherConfig::fast(), // unused
            Level::Fast => MatcherConfig::fast(),
            Level::Default => MatcherConfig::default_level(),
            Level::Best => MatcherConfig::best(),
        }
    }
}

/// Maximum number of tokens per compressed block: keeps the dynamic Huffman
/// statistics reasonably local, like zlib's block splitting.
const TOKENS_PER_BLOCK: usize = 100_000;
/// Maximum bytes in a stored block (16-bit length field).
const STORED_BLOCK_MAX: usize = 65_535;

/// Compresses `data` into a raw DEFLATE stream.
pub fn deflate_compress(data: &[u8], level: Level) -> Vec<u8> {
    let mut out = Vec::new();
    deflate_compress_into(data, level, &mut out);
    out
}

/// Streaming-friendly variant of [`deflate_compress`]: appends the DEFLATE
/// stream to `out`, reusing its allocation. This is the entry point the
/// engine-side `DeflateBackend` recycles its per-worker encoder scratch
/// through — steady-state compression of a stream of members touches the
/// allocator only when a member outgrows the buffer.
pub fn deflate_compress_into(data: &[u8], level: Level, out: &mut Vec<u8>) {
    let mut writer = BitWriter::with_buffer(std::mem::take(out));
    match level {
        Level::Store => write_stored(&mut writer, data),
        _ => write_compressed(&mut writer, data, level),
    }
    *out = writer.into_bytes();
}

fn write_stored(writer: &mut BitWriter, data: &[u8]) {
    if data.is_empty() {
        writer.write_bits(1, 1); // BFINAL
        writer.write_bits(0b00, 2); // BTYPE = stored
        writer.align_to_byte();
        writer.write_bytes(&0u16.to_le_bytes());
        writer.write_bytes(&0xFFFFu16.to_le_bytes());
        return;
    }
    let chunks: Vec<&[u8]> = data.chunks(STORED_BLOCK_MAX).collect();
    for (i, chunk) in chunks.iter().enumerate() {
        let last = i == chunks.len() - 1;
        writer.write_bits(last as u32, 1);
        writer.write_bits(0b00, 2);
        writer.align_to_byte();
        let len = chunk.len() as u16;
        writer.write_bytes(&len.to_le_bytes());
        writer.write_bytes(&(!len).to_le_bytes());
        writer.write_bytes(chunk);
    }
}

fn write_compressed(writer: &mut BitWriter, data: &[u8], level: Level) {
    let tokens = tokenize(data, level.matcher());
    if tokens.is_empty() {
        // Empty input: emit one final fixed block containing only EOB.
        write_fixed_block(writer, &[], true);
        return;
    }
    let blocks: Vec<&[Token]> = tokens.chunks(TOKENS_PER_BLOCK).collect();
    for (i, block) in blocks.iter().enumerate() {
        let last = i == blocks.len() - 1;
        match level {
            Level::Fast => write_fixed_block(writer, block, last),
            _ => write_best_block(writer, block, last),
        }
    }
}

/// Symbol frequency tables for one block.
struct BlockStats {
    litlen_freqs: Vec<u64>,
    dist_freqs: Vec<u64>,
}

fn block_stats(tokens: &[Token]) -> BlockStats {
    let mut litlen_freqs = vec![0u64; NUM_LITLEN_SYMBOLS];
    let mut dist_freqs = vec![0u64; NUM_DIST_SYMBOLS];
    for token in tokens {
        match *token {
            Token::Literal(b) => litlen_freqs[b as usize] += 1,
            Token::Match { length, distance } => {
                let (sym, _, _) = length_to_symbol(length as usize);
                litlen_freqs[sym as usize] += 1;
                let (dsym, _, _) = distance_to_symbol(distance as usize);
                dist_freqs[dsym as usize] += 1;
            }
        }
    }
    litlen_freqs[END_OF_BLOCK as usize] += 1;
    BlockStats {
        litlen_freqs,
        dist_freqs,
    }
}

/// Cost in bits of encoding the tokens with the given code lengths
/// (excluding any block header).
fn body_cost(tokens: &[Token], litlen_lengths: &[u8], dist_lengths: &[u8]) -> u64 {
    let mut bits = 0u64;
    for token in tokens {
        match *token {
            Token::Literal(b) => bits += litlen_lengths[b as usize] as u64,
            Token::Match { length, distance } => {
                let (sym, extra_bits, _) = length_to_symbol(length as usize);
                bits += litlen_lengths[sym as usize] as u64 + extra_bits as u64;
                let (dsym, dextra, _) = distance_to_symbol(distance as usize);
                bits += dist_lengths[dsym as usize] as u64 + dextra as u64;
            }
        }
    }
    bits + litlen_lengths[END_OF_BLOCK as usize] as u64
}

fn write_tokens(
    writer: &mut BitWriter,
    tokens: &[Token],
    litlen: &HuffmanEncoder,
    dist: &HuffmanEncoder,
) {
    for token in tokens {
        match *token {
            Token::Literal(b) => {
                litlen
                    .write(writer, b as usize)
                    .expect("literal symbol has a code");
            }
            Token::Match { length, distance } => {
                let (sym, extra_bits, extra) = length_to_symbol(length as usize);
                litlen
                    .write(writer, sym as usize)
                    .expect("length symbol has a code");
                if extra_bits > 0 {
                    writer.write_bits(extra as u32, extra_bits as u32);
                }
                let (dsym, dextra_bits, dextra) = distance_to_symbol(distance as usize);
                dist.write(writer, dsym as usize)
                    .expect("distance symbol has a code");
                if dextra_bits > 0 {
                    writer.write_bits(dextra as u32, dextra_bits as u32);
                }
            }
        }
    }
    litlen
        .write(writer, END_OF_BLOCK as usize)
        .expect("end-of-block has a code");
}

fn write_fixed_block(writer: &mut BitWriter, tokens: &[Token], last: bool) {
    let litlen = HuffmanEncoder::from_lengths(&fixed_litlen_lengths()).expect("fixed code valid");
    let dist = HuffmanEncoder::from_lengths(&fixed_dist_lengths()).expect("fixed code valid");
    writer.write_bits(last as u32, 1);
    writer.write_bits(0b01, 2);
    write_tokens(writer, tokens, &litlen, &dist);
}

/// Chooses between a fixed and a dynamic block based on exact bit cost.
fn write_best_block(writer: &mut BitWriter, tokens: &[Token], last: bool) {
    let stats = block_stats(tokens);
    let litlen_lengths = build_code_lengths(&stats.litlen_freqs, MAX_CODE_BITS);
    let mut dist_lengths = build_code_lengths(&stats.dist_freqs, MAX_CODE_BITS);
    if dist_lengths.iter().all(|&l| l == 0) {
        // RFC 1951 requires HDIST >= 1; give distance symbol 0 a 1-bit code.
        dist_lengths[0] = 1;
    }

    let dynamic_header = DynamicHeader::build(&litlen_lengths, &dist_lengths);
    let dynamic_cost = dynamic_header.cost_bits + body_cost(tokens, &litlen_lengths, &dist_lengths);
    let fixed_cost = body_cost(tokens, &fixed_litlen_lengths(), &fixed_dist_lengths());

    writer.write_bits(last as u32, 1);
    if dynamic_cost < fixed_cost {
        writer.write_bits(0b10, 2);
        dynamic_header.write(writer);
        let litlen = HuffmanEncoder::from_lengths(&litlen_lengths).expect("built lengths valid");
        let dist = HuffmanEncoder::from_lengths(&dist_lengths).expect("built lengths valid");
        write_tokens(writer, tokens, &litlen, &dist);
    } else {
        writer.write_bits(0b01, 2);
        let litlen = HuffmanEncoder::from_lengths(&fixed_litlen_lengths()).expect("fixed valid");
        let dist = HuffmanEncoder::from_lengths(&fixed_dist_lengths()).expect("fixed valid");
        write_tokens(writer, tokens, &litlen, &dist);
    }
}

/// A code-length symbol with its extra-bit payload.
#[derive(Debug, Clone, Copy)]
struct ClSymbol {
    symbol: u16,
    extra_bits: u8,
    extra: u16,
}

/// The HLIT/HDIST/HCLEN header of a dynamic block, precomputed so its cost
/// can be compared against a fixed block before committing.
struct DynamicHeader {
    hlit: usize,
    hdist: usize,
    hclen: usize,
    clc_lengths: Vec<u8>,
    cl_symbols: Vec<ClSymbol>,
    cost_bits: u64,
}

impl DynamicHeader {
    fn build(litlen_lengths: &[u8], dist_lengths: &[u8]) -> Self {
        let hlit = (257..=NUM_LITLEN_SYMBOLS)
            .rev()
            .find(|&n| litlen_lengths[n - 1] != 0)
            .unwrap_or(257)
            .max(257);
        let hdist = (1..=NUM_DIST_SYMBOLS)
            .rev()
            .find(|&n| dist_lengths[n - 1] != 0)
            .unwrap_or(1)
            .max(1);

        let mut combined = Vec::with_capacity(hlit + hdist);
        combined.extend_from_slice(&litlen_lengths[..hlit]);
        combined.extend_from_slice(&dist_lengths[..hdist]);
        let cl_symbols = rle_code_lengths(&combined);

        let mut clc_freqs = vec![0u64; 19];
        for s in &cl_symbols {
            clc_freqs[s.symbol as usize] += 1;
        }
        let clc_lengths = build_code_lengths(&clc_freqs, MAX_CLC_BITS);
        let hclen = CLC_ORDER
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &sym)| clc_lengths[sym] != 0)
            .map(|(i, _)| i + 1)
            .unwrap_or(4)
            .max(4);

        let mut cost_bits = 5 + 5 + 4 + 3 * hclen as u64;
        for s in &cl_symbols {
            cost_bits += clc_lengths[s.symbol as usize] as u64 + s.extra_bits as u64;
        }

        Self {
            hlit,
            hdist,
            hclen,
            clc_lengths,
            cl_symbols,
            cost_bits,
        }
    }

    fn write(&self, writer: &mut BitWriter) {
        writer.write_bits((self.hlit - 257) as u32, 5);
        writer.write_bits((self.hdist - 1) as u32, 5);
        writer.write_bits((self.hclen - 4) as u32, 4);
        for &sym in CLC_ORDER.iter().take(self.hclen) {
            writer.write_bits(self.clc_lengths[sym] as u32, 3);
        }
        let clc = HuffmanEncoder::from_lengths(&self.clc_lengths).expect("clc lengths valid");
        for s in &self.cl_symbols {
            clc.write(writer, s.symbol as usize)
                .expect("cl symbol has a code");
            if s.extra_bits > 0 {
                writer.write_bits(s.extra as u32, s.extra_bits as u32);
            }
        }
    }
}

/// Run-length encodes a sequence of code lengths into code-length-code
/// symbols (RFC 1951 §3.2.7: 16 = repeat previous 3–6, 17 = zeros 3–10,
/// 18 = zeros 11–138).
fn rle_code_lengths(lengths: &[u8]) -> Vec<ClSymbol> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < lengths.len() {
        let value = lengths[i];
        let mut run = 1usize;
        while i + run < lengths.len() && lengths[i + run] == value {
            run += 1;
        }
        if value == 0 {
            let mut remaining = run;
            while remaining >= 3 {
                if remaining >= 11 {
                    let take = remaining.min(138);
                    out.push(ClSymbol {
                        symbol: 18,
                        extra_bits: 7,
                        extra: (take - 11) as u16,
                    });
                    remaining -= take;
                } else {
                    let take = remaining.min(10);
                    out.push(ClSymbol {
                        symbol: 17,
                        extra_bits: 3,
                        extra: (take - 3) as u16,
                    });
                    remaining -= take;
                }
            }
            for _ in 0..remaining {
                out.push(ClSymbol {
                    symbol: 0,
                    extra_bits: 0,
                    extra: 0,
                });
            }
        } else {
            // The first occurrence is sent literally; repeats may use 16.
            out.push(ClSymbol {
                symbol: value as u16,
                extra_bits: 0,
                extra: 0,
            });
            let mut remaining = run - 1;
            while remaining >= 3 {
                let take = remaining.min(6);
                out.push(ClSymbol {
                    symbol: 16,
                    extra_bits: 2,
                    extra: (take - 3) as u16,
                });
                remaining -= take;
            }
            for _ in 0..remaining {
                out.push(ClSymbol {
                    symbol: value as u16,
                    extra_bits: 0,
                    extra: 0,
                });
            }
        }
        i += run;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate_decompress;

    fn roundtrip(data: &[u8], level: Level) -> Vec<u8> {
        let compressed = deflate_compress(data, level);
        assert_eq!(
            inflate_decompress(&compressed).unwrap(),
            data,
            "level {level:?}"
        );
        compressed
    }

    #[test]
    fn empty_input_all_levels() {
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            roundtrip(b"", level);
        }
    }

    #[test]
    fn small_literal_only_input() {
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            roundtrip(b"hello", level);
            roundtrip(&[0u8], level);
            roundtrip(&[0xFFu8; 2], level);
        }
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(200);
        let compressed = roundtrip(&data, Level::Default);
        assert!(
            compressed.len() < data.len() / 5,
            "expected >5x compression, got {} -> {}",
            data.len(),
            compressed.len()
        );
        // Best should not be worse than Fast.
        let fast = deflate_compress(&data, Level::Fast);
        let best = deflate_compress(&data, Level::Best);
        assert!(best.len() <= fast.len());
    }

    #[test]
    fn stored_level_roundtrips_large_buffers() {
        // Exercise multi-block stored output (> 65535 bytes).
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 256) as u8).collect();
        let compressed = roundtrip(&data, Level::Store);
        // Stored adds 5 bytes per 65535-byte block plus the data itself.
        assert!(compressed.len() >= data.len());
        assert!(compressed.len() < data.len() + 64);
    }

    #[test]
    fn random_like_data_does_not_blow_up() {
        let data: Vec<u8> = (0..50_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        let compressed = roundtrip(&data, Level::Default);
        // Incompressible data should stay within a few percent of original.
        assert!(compressed.len() < data.len() + data.len() / 10);
    }

    #[test]
    fn rle_code_length_encoding_covers_all_cases() {
        // Long zero run (uses 18), short zero run (17), literal repeats (16).
        let mut lengths = vec![0u8; 140];
        lengths.extend_from_slice(&[5; 9]);
        lengths.extend_from_slice(&[0; 4]);
        lengths.extend_from_slice(&[3, 3]);
        let symbols = rle_code_lengths(&lengths);
        let symbols_used: std::collections::HashSet<u16> =
            symbols.iter().map(|s| s.symbol).collect();
        assert!(symbols_used.contains(&18));
        assert!(symbols_used.contains(&17));
        assert!(symbols_used.contains(&16));
        // Expanding the RLE must reproduce the original lengths.
        let mut expanded = Vec::new();
        let mut prev = 0u8;
        for s in &symbols {
            match s.symbol {
                16 => {
                    for _ in 0..(s.extra + 3) {
                        expanded.push(prev);
                    }
                }
                17 => {
                    expanded.extend(std::iter::repeat_n(0, (s.extra + 3) as usize));
                }
                18 => {
                    expanded.extend(std::iter::repeat_n(0, (s.extra + 11) as usize));
                }
                v => {
                    expanded.push(v as u8);
                    prev = v as u8;
                }
            }
        }
        assert_eq!(expanded, lengths);
    }

    #[test]
    fn fixed_and_dynamic_blocks_are_both_produced() {
        // Tiny input: fixed block header is cheaper.
        let tiny = deflate_compress(b"abc", Level::Default);
        // BTYPE lives in bits 1..3 of the first byte.
        assert_eq!(
            (tiny[0] >> 1) & 0b11,
            0b01,
            "tiny input should use a fixed block"
        );
        // Large skewed input: dynamic must win.
        let data = b"aaaaaaaaaaaaaaaabbbbcccc".repeat(2000);
        let big = deflate_compress(&data, Level::Default);
        assert_eq!(
            (big[0] >> 1) & 0b11,
            0b10,
            "large input should use a dynamic block"
        );
    }

    #[test]
    fn multi_block_output_for_very_long_token_streams() {
        // Enough distinct short matches/literals to exceed TOKENS_PER_BLOCK.
        let mut data = Vec::new();
        for i in 0..120_000u32 {
            data.push((i.wrapping_mul(2654435761) >> 11) as u8);
        }
        roundtrip(&data, Level::Fast);
    }

    #[test]
    fn level_default_is_default() {
        assert_eq!(Level::default(), Level::Default);
    }
}
