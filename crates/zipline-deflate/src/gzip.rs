//! The gzip container (RFC 1952).
//!
//! The paper's Figure 3 baseline "extract\[s\] all payloads in a regular file
//! that we compress with the gzip compression tool"; this module provides the
//! same end-to-end format: a 10-byte header, a DEFLATE stream, and a trailer
//! with CRC-32 and the uncompressed length modulo 2³².

use crate::crc32::crc32;
use crate::deflate::{deflate_compress_into, Level};
use crate::error::{DeflateError, Result};
use crate::inflate::inflate_into;

/// gzip magic bytes.
const MAGIC: [u8; 2] = [0x1F, 0x8B];
/// Compression method 8 = DEFLATE.
const CM_DEFLATE: u8 = 8;

/// Header flag bits (RFC 1952 §2.3.1).
const FTEXT: u8 = 1 << 0;
const FHCRC: u8 = 1 << 1;
const FEXTRA: u8 = 1 << 2;
const FNAME: u8 = 1 << 3;
const FCOMMENT: u8 = 1 << 4;

/// Compresses `data` into a single-member gzip file.
pub fn gzip_compress(data: &[u8], level: Level) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 32);
    gzip_compress_into(data, level, &mut out);
    out
}

/// Streaming-friendly variant of [`gzip_compress`]: appends one gzip member
/// to `out`, reusing its allocation (header and trailer included). Repeated
/// calls produce a valid multi-member stream; clearing `out` between calls
/// gives a per-member scratch buffer that a long-running compressor — such
/// as the engine-side `DeflateBackend` — can recycle indefinitely.
pub fn gzip_compress_into(data: &[u8], level: Level, out: &mut Vec<u8>) {
    out.extend_from_slice(&MAGIC);
    out.push(CM_DEFLATE);
    out.push(0); // FLG: no optional fields
    out.extend_from_slice(&0u32.to_le_bytes()); // MTIME unknown
    out.push(match level {
        Level::Best => 2,
        Level::Fast | Level::Store => 4,
        Level::Default => 0,
    }); // XFL
    out.push(255); // OS = unknown
    deflate_compress_into(data, level, out);
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
}

/// Decompresses a single-member gzip file, verifying the CRC-32 and length
/// trailer.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    gzip_decompress_into(data, &mut out)?;
    Ok(out)
}

/// Streaming-friendly variant of [`gzip_decompress`]: appends the restored
/// bytes of one gzip member to `out` (reusing its allocation) and returns
/// how many of them were appended. The CRC-32 and ISIZE trailer checks
/// apply to exactly the appended range, so interleaving members from
/// several streams into one output buffer stays integrity-checked per
/// member. On error `out` is left truncated back to its original length.
pub fn gzip_decompress_into(data: &[u8], out: &mut Vec<u8>) -> Result<usize> {
    let start = out.len();
    let result = gzip_member_into(data, out, start);
    if result.is_err() {
        out.truncate(start);
    }
    result
}

fn gzip_member_into(data: &[u8], out: &mut Vec<u8>, start: usize) -> Result<usize> {
    let body_offset = parse_header(data)?;
    let consumed = inflate_into(&data[body_offset..], out)?;
    let restored = &out[start..];
    let trailer_offset = body_offset + consumed;
    if data.len() < trailer_offset + 8 {
        return Err(DeflateError::UnexpectedEof);
    }
    let expected_crc = u32::from_le_bytes([
        data[trailer_offset],
        data[trailer_offset + 1],
        data[trailer_offset + 2],
        data[trailer_offset + 3],
    ]);
    let expected_len = u32::from_le_bytes([
        data[trailer_offset + 4],
        data[trailer_offset + 5],
        data[trailer_offset + 6],
        data[trailer_offset + 7],
    ]);
    let actual_crc = crc32(restored);
    if actual_crc != expected_crc {
        return Err(DeflateError::ChecksumMismatch {
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    if expected_len != restored.len() as u32 {
        return Err(DeflateError::Corrupt(format!(
            "ISIZE mismatch: header says {expected_len}, got {}",
            restored.len() as u32
        )));
    }
    Ok(restored.len())
}

/// Parses the gzip header and returns the offset of the DEFLATE body.
fn parse_header(data: &[u8]) -> Result<usize> {
    if data.len() < 10 {
        return Err(DeflateError::UnexpectedEof);
    }
    if data[0..2] != MAGIC {
        return Err(DeflateError::BadGzipHeader("wrong magic bytes".into()));
    }
    if data[2] != CM_DEFLATE {
        return Err(DeflateError::BadGzipHeader(format!(
            "unsupported method {}",
            data[2]
        )));
    }
    let flags = data[3];
    if flags & !(FTEXT | FHCRC | FEXTRA | FNAME | FCOMMENT) != 0 {
        return Err(DeflateError::BadGzipHeader(format!(
            "reserved flag bits set: {flags:#x}"
        )));
    }
    let mut offset = 10usize;
    if flags & FEXTRA != 0 {
        if data.len() < offset + 2 {
            return Err(DeflateError::UnexpectedEof);
        }
        let xlen = u16::from_le_bytes([data[offset], data[offset + 1]]) as usize;
        offset += 2 + xlen;
    }
    for flag in [FNAME, FCOMMENT] {
        if flags & flag != 0 {
            let terminator = data[offset.min(data.len())..]
                .iter()
                .position(|&b| b == 0)
                .ok_or(DeflateError::UnexpectedEof)?;
            offset += terminator + 1;
        }
    }
    if flags & FHCRC != 0 {
        offset += 2;
    }
    if offset > data.len() {
        return Err(DeflateError::UnexpectedEof);
    }
    Ok(offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deflate::deflate_compress;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_basic() {
        let data = b"gzip container roundtrip test data ".repeat(100);
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            let gz = gzip_compress(&data, level);
            assert_eq!(&gz[0..2], &MAGIC);
            assert_eq!(gz[2], CM_DEFLATE);
            assert_eq!(gzip_decompress(&gz).unwrap(), data, "level {level:?}");
        }
    }

    #[test]
    fn empty_input_roundtrips() {
        let gz = gzip_compress(b"", Level::Default);
        assert_eq!(gzip_decompress(&gz).unwrap(), b"");
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let data = b"integrity protected payload".repeat(50);
        let mut gz = gzip_compress(&data, Level::Default);
        // Flip a bit in the middle of the DEFLATE body.
        let mid = gz.len() / 2;
        gz[mid] ^= 0x01;
        let result = gzip_decompress(&gz);
        assert!(result.is_err(), "corruption must not go unnoticed");
    }

    #[test]
    fn corrupted_trailer_is_detected() {
        let data = b"payload".repeat(10);
        let mut gz = gzip_compress(&data, Level::Default);
        let n = gz.len();
        gz[n - 1] ^= 0xFF; // ISIZE
        assert!(gzip_decompress(&gz).is_err());
        let mut gz = gzip_compress(&data, Level::Default);
        gz[n - 8] ^= 0xFF; // CRC
        assert!(matches!(
            gzip_decompress(&gz),
            Err(DeflateError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn header_validation() {
        let data = b"x".repeat(20);
        let gz = gzip_compress(&data, Level::Default);

        let mut bad_magic = gz.clone();
        bad_magic[0] = 0x00;
        assert!(matches!(
            gzip_decompress(&bad_magic),
            Err(DeflateError::BadGzipHeader(_))
        ));

        let mut bad_method = gz.clone();
        bad_method[2] = 7;
        assert!(matches!(
            gzip_decompress(&bad_method),
            Err(DeflateError::BadGzipHeader(_))
        ));

        let mut reserved_flag = gz.clone();
        reserved_flag[3] = 0x80;
        assert!(gzip_decompress(&reserved_flag).is_err());

        assert!(gzip_decompress(&gz[..5]).is_err());
        assert!(gzip_decompress(&[]).is_err());
    }

    #[test]
    fn optional_header_fields_are_skipped() {
        // Build a gzip file with FNAME and FEXTRA by hand around our own
        // deflate body and trailer.
        let data = b"optional header field test".repeat(5);
        let body = deflate_compress(&data, Level::Default);
        let mut gz = Vec::new();
        gz.extend_from_slice(&MAGIC);
        gz.push(CM_DEFLATE);
        gz.push(FNAME | FEXTRA);
        gz.extend_from_slice(&0u32.to_le_bytes());
        gz.push(0);
        gz.push(255);
        // FEXTRA: 4 bytes of payload.
        gz.extend_from_slice(&4u16.to_le_bytes());
        gz.extend_from_slice(&[1, 2, 3, 4]);
        // FNAME: null-terminated.
        gz.extend_from_slice(b"trace.bin\0");
        gz.extend_from_slice(&body);
        gz.extend_from_slice(&crc32(&data).to_le_bytes());
        gz.extend_from_slice(&(data.len() as u32).to_le_bytes());
        assert_eq!(gzip_decompress(&gz).unwrap(), data);
    }

    #[test]
    fn truncated_trailer_is_detected() {
        let data = b"trailer test".repeat(10);
        let gz = gzip_compress(&data, Level::Default);
        assert!(gzip_decompress(&gz[..gz.len() - 4]).is_err());
    }

    #[test]
    fn into_variants_append_and_recycle() {
        let first = b"first member first member first member".repeat(20);
        let second = b"second member with different content".repeat(20);
        // Compress both members into one recycled scratch buffer.
        let mut scratch = Vec::new();
        gzip_compress_into(&first, Level::Default, &mut scratch);
        let first_len = scratch.len();
        assert_eq!(gzip_decompress(&scratch).unwrap(), first);
        gzip_compress_into(&second, Level::Default, &mut scratch);
        // Restore both members into one accumulating output buffer.
        let mut out = Vec::new();
        let n1 = gzip_decompress_into(&scratch[..first_len], &mut out).unwrap();
        assert_eq!(n1, first.len());
        let n2 = gzip_decompress_into(&scratch[first_len..], &mut out).unwrap();
        assert_eq!(n2, second.len());
        assert_eq!(out.len(), first.len() + second.len());
        assert_eq!(&out[..n1], &first[..]);
        assert_eq!(&out[n1..], &second[..]);
    }

    #[test]
    fn failed_into_decode_truncates_back() {
        let data = b"payload".repeat(30);
        let mut gz = gzip_compress(&data, Level::Default);
        let n = gz.len();
        gz[n - 1] ^= 0xFF; // corrupt ISIZE
        let mut out = b"prefix".to_vec();
        assert!(gzip_decompress_into(&gz, &mut out).is_err());
        assert_eq!(out, b"prefix", "error leaves the accumulator untouched");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn roundtrip_arbitrary_data(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            let gz = gzip_compress(&data, Level::Default);
            prop_assert_eq!(gzip_decompress(&gz).unwrap(), data);
        }

        #[test]
        fn random_bytes_never_panic_the_gzip_decoder(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = gzip_decompress(&data);
        }
    }
}
