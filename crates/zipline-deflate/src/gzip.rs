//! The gzip container (RFC 1952).
//!
//! The paper's Figure 3 baseline "extract[s] all payloads in a regular file
//! that we compress with the gzip compression tool"; this module provides the
//! same end-to-end format: a 10-byte header, a DEFLATE stream, and a trailer
//! with CRC-32 and the uncompressed length modulo 2³².

use crate::crc32::crc32;
use crate::deflate::{deflate_compress, Level};
use crate::error::{DeflateError, Result};
use crate::inflate::inflate_with_consumed;

/// gzip magic bytes.
const MAGIC: [u8; 2] = [0x1F, 0x8B];
/// Compression method 8 = DEFLATE.
const CM_DEFLATE: u8 = 8;

/// Header flag bits (RFC 1952 §2.3.1).
const FTEXT: u8 = 1 << 0;
const FHCRC: u8 = 1 << 1;
const FEXTRA: u8 = 1 << 2;
const FNAME: u8 = 1 << 3;
const FCOMMENT: u8 = 1 << 4;

/// Compresses `data` into a single-member gzip file.
pub fn gzip_compress(data: &[u8], level: Level) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 32);
    out.extend_from_slice(&MAGIC);
    out.push(CM_DEFLATE);
    out.push(0); // FLG: no optional fields
    out.extend_from_slice(&0u32.to_le_bytes()); // MTIME unknown
    out.push(match level {
        Level::Best => 2,
        Level::Fast | Level::Store => 4,
        Level::Default => 0,
    }); // XFL
    out.push(255); // OS = unknown
    out.extend_from_slice(&deflate_compress(data, level));
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Decompresses a single-member gzip file, verifying the CRC-32 and length
/// trailer.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>> {
    let body_offset = parse_header(data)?;
    let (out, consumed) = inflate_with_consumed(&data[body_offset..])?;
    let trailer_offset = body_offset + consumed;
    if data.len() < trailer_offset + 8 {
        return Err(DeflateError::UnexpectedEof);
    }
    let expected_crc = u32::from_le_bytes([
        data[trailer_offset],
        data[trailer_offset + 1],
        data[trailer_offset + 2],
        data[trailer_offset + 3],
    ]);
    let expected_len = u32::from_le_bytes([
        data[trailer_offset + 4],
        data[trailer_offset + 5],
        data[trailer_offset + 6],
        data[trailer_offset + 7],
    ]);
    let actual_crc = crc32(&out);
    if actual_crc != expected_crc {
        return Err(DeflateError::ChecksumMismatch {
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    if expected_len != out.len() as u32 {
        return Err(DeflateError::Corrupt(format!(
            "ISIZE mismatch: header says {expected_len}, got {}",
            out.len() as u32
        )));
    }
    Ok(out)
}

/// Parses the gzip header and returns the offset of the DEFLATE body.
fn parse_header(data: &[u8]) -> Result<usize> {
    if data.len() < 10 {
        return Err(DeflateError::UnexpectedEof);
    }
    if data[0..2] != MAGIC {
        return Err(DeflateError::BadGzipHeader("wrong magic bytes".into()));
    }
    if data[2] != CM_DEFLATE {
        return Err(DeflateError::BadGzipHeader(format!(
            "unsupported method {}",
            data[2]
        )));
    }
    let flags = data[3];
    if flags & !(FTEXT | FHCRC | FEXTRA | FNAME | FCOMMENT) != 0 {
        return Err(DeflateError::BadGzipHeader(format!(
            "reserved flag bits set: {flags:#x}"
        )));
    }
    let mut offset = 10usize;
    if flags & FEXTRA != 0 {
        if data.len() < offset + 2 {
            return Err(DeflateError::UnexpectedEof);
        }
        let xlen = u16::from_le_bytes([data[offset], data[offset + 1]]) as usize;
        offset += 2 + xlen;
    }
    for flag in [FNAME, FCOMMENT] {
        if flags & flag != 0 {
            let terminator = data[offset.min(data.len())..]
                .iter()
                .position(|&b| b == 0)
                .ok_or(DeflateError::UnexpectedEof)?;
            offset += terminator + 1;
        }
    }
    if flags & FHCRC != 0 {
        offset += 2;
    }
    if offset > data.len() {
        return Err(DeflateError::UnexpectedEof);
    }
    Ok(offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_basic() {
        let data = b"gzip container roundtrip test data ".repeat(100);
        for level in [Level::Store, Level::Fast, Level::Default, Level::Best] {
            let gz = gzip_compress(&data, level);
            assert_eq!(&gz[0..2], &MAGIC);
            assert_eq!(gz[2], CM_DEFLATE);
            assert_eq!(gzip_decompress(&gz).unwrap(), data, "level {level:?}");
        }
    }

    #[test]
    fn empty_input_roundtrips() {
        let gz = gzip_compress(b"", Level::Default);
        assert_eq!(gzip_decompress(&gz).unwrap(), b"");
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let data = b"integrity protected payload".repeat(50);
        let mut gz = gzip_compress(&data, Level::Default);
        // Flip a bit in the middle of the DEFLATE body.
        let mid = gz.len() / 2;
        gz[mid] ^= 0x01;
        let result = gzip_decompress(&gz);
        assert!(result.is_err(), "corruption must not go unnoticed");
    }

    #[test]
    fn corrupted_trailer_is_detected() {
        let data = b"payload".repeat(10);
        let mut gz = gzip_compress(&data, Level::Default);
        let n = gz.len();
        gz[n - 1] ^= 0xFF; // ISIZE
        assert!(gzip_decompress(&gz).is_err());
        let mut gz = gzip_compress(&data, Level::Default);
        gz[n - 8] ^= 0xFF; // CRC
        assert!(matches!(
            gzip_decompress(&gz),
            Err(DeflateError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn header_validation() {
        let data = b"x".repeat(20);
        let gz = gzip_compress(&data, Level::Default);

        let mut bad_magic = gz.clone();
        bad_magic[0] = 0x00;
        assert!(matches!(
            gzip_decompress(&bad_magic),
            Err(DeflateError::BadGzipHeader(_))
        ));

        let mut bad_method = gz.clone();
        bad_method[2] = 7;
        assert!(matches!(
            gzip_decompress(&bad_method),
            Err(DeflateError::BadGzipHeader(_))
        ));

        let mut reserved_flag = gz.clone();
        reserved_flag[3] = 0x80;
        assert!(gzip_decompress(&reserved_flag).is_err());

        assert!(gzip_decompress(&gz[..5]).is_err());
        assert!(gzip_decompress(&[]).is_err());
    }

    #[test]
    fn optional_header_fields_are_skipped() {
        // Build a gzip file with FNAME and FEXTRA by hand around our own
        // deflate body and trailer.
        let data = b"optional header field test".repeat(5);
        let body = deflate_compress(&data, Level::Default);
        let mut gz = Vec::new();
        gz.extend_from_slice(&MAGIC);
        gz.push(CM_DEFLATE);
        gz.push(FNAME | FEXTRA);
        gz.extend_from_slice(&0u32.to_le_bytes());
        gz.push(0);
        gz.push(255);
        // FEXTRA: 4 bytes of payload.
        gz.extend_from_slice(&4u16.to_le_bytes());
        gz.extend_from_slice(&[1, 2, 3, 4]);
        // FNAME: null-terminated.
        gz.extend_from_slice(b"trace.bin\0");
        gz.extend_from_slice(&body);
        gz.extend_from_slice(&crc32(&data).to_le_bytes());
        gz.extend_from_slice(&(data.len() as u32).to_le_bytes());
        assert_eq!(gzip_decompress(&gz).unwrap(), data);
    }

    #[test]
    fn truncated_trailer_is_detected() {
        let data = b"trailer test".repeat(10);
        let gz = gzip_compress(&data, Level::Default);
        assert!(gzip_decompress(&gz[..gz.len() - 4]).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn roundtrip_arbitrary_data(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
            let gz = gzip_compress(&data, Level::Default);
            prop_assert_eq!(gzip_decompress(&gz).unwrap(), data);
        }

        #[test]
        fn random_bytes_never_panic_the_gzip_decoder(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = gzip_decompress(&data);
        }
    }
}
