//! Error type for DEFLATE / gzip decoding.

use std::fmt;

/// Errors produced while decoding DEFLATE or gzip streams.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DeflateError {
    /// The input ended before the stream was complete.
    UnexpectedEof,
    /// A block header, Huffman code or back-reference is invalid.
    Corrupt(String),
    /// The gzip container header is invalid or uses unsupported features.
    BadGzipHeader(String),
    /// The gzip CRC-32 or size trailer does not match the decompressed data.
    ChecksumMismatch { expected: u32, actual: u32 },
}

impl fmt::Display for DeflateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeflateError::UnexpectedEof => write!(f, "unexpected end of input"),
            DeflateError::Corrupt(msg) => write!(f, "corrupt DEFLATE stream: {msg}"),
            DeflateError::BadGzipHeader(msg) => write!(f, "bad gzip header: {msg}"),
            DeflateError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for DeflateError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DeflateError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert_eq!(
            DeflateError::UnexpectedEof.to_string(),
            "unexpected end of input"
        );
        assert!(DeflateError::Corrupt("bad code".into())
            .to_string()
            .contains("bad code"));
        assert!(DeflateError::BadGzipHeader("magic".into())
            .to_string()
            .contains("magic"));
        let e = DeflateError::ChecksumMismatch {
            expected: 1,
            actual: 2,
        };
        assert!(e.to_string().contains("0x00000001"));
    }
}
