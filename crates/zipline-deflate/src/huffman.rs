//! Canonical Huffman coding.
//!
//! DEFLATE transmits only the *lengths* of the Huffman codes; both sides then
//! derive the canonical codes (RFC 1951 §3.2.2). The encoder side also needs
//! to choose lengths from symbol frequencies under a maximum-length
//! constraint (15 bits for literal/length and distance codes, 7 bits for the
//! code-length code); [`build_code_lengths`] implements the package-merge
//! algorithm, which produces optimal length-limited codes.

use crate::bitstream::{BitReader, BitWriter};
use crate::error::{DeflateError, Result};

/// Builds optimal length-limited code lengths from symbol frequencies using
/// the package-merge algorithm.
///
/// Symbols with zero frequency receive length 0 (they are not part of the
/// code). If only one symbol has a non-zero frequency it receives length 1,
/// as DEFLATE cannot express a zero-bit code.
pub fn build_code_lengths(freqs: &[u64], max_bits: u32) -> Vec<u8> {
    let active: Vec<usize> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, _)| i)
        .collect();
    let mut lengths = vec![0u8; freqs.len()];
    match active.len() {
        0 => return lengths,
        1 => {
            lengths[active[0]] = 1;
            return lengths;
        }
        _ => {}
    }
    assert!(
        (1u64 << max_bits) >= active.len() as u64,
        "cannot fit {} symbols into {max_bits}-bit codes",
        active.len()
    );

    // Package-merge. An item is (weight, multiset of original symbols).
    type Item = (u64, Vec<usize>);
    let coins: Vec<Item> = {
        let mut c: Vec<Item> = active.iter().map(|&s| (freqs[s], vec![s])).collect();
        c.sort_by_key(|(w, _)| *w);
        c
    };

    let mut merged: Vec<Item> = coins.clone();
    for _level in 1..max_bits {
        // Package adjacent pairs of the current list…
        let mut packages: Vec<Item> = Vec::with_capacity(merged.len() / 2);
        let mut iter = merged.chunks_exact(2);
        for pair in &mut iter {
            let mut symbols = pair[0].1.clone();
            symbols.extend_from_slice(&pair[1].1);
            packages.push((pair[0].0 + pair[1].0, symbols));
        }
        // …and merge them with a fresh set of coins.
        merged = coins.clone();
        merged.extend(packages);
        merged.sort_by_key(|(w, _)| *w);
    }

    // The first 2(n-1) items of the final list define the code lengths.
    let take = 2 * (active.len() - 1);
    for (_, symbols) in merged.iter().take(take) {
        for &s in symbols {
            lengths[s] += 1;
        }
    }
    lengths
}

/// Canonical Huffman encoder: maps symbols to `(code, length)` pairs.
#[derive(Debug, Clone)]
pub struct HuffmanEncoder {
    codes: Vec<u32>,
    lengths: Vec<u8>,
}

impl HuffmanEncoder {
    /// Builds the canonical codes for the given lengths.
    pub fn from_lengths(lengths: &[u8]) -> Result<Self> {
        let codes = assign_canonical_codes(lengths)?;
        Ok(Self {
            codes,
            lengths: lengths.to_vec(),
        })
    }

    /// Convenience: build lengths from frequencies, then the encoder.
    pub fn from_frequencies(freqs: &[u64], max_bits: u32) -> Result<Self> {
        Self::from_lengths(&build_code_lengths(freqs, max_bits))
    }

    /// The code lengths this encoder was built from.
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Length in bits of a symbol's code (0 when the symbol is not coded).
    pub fn length(&self, symbol: usize) -> u8 {
        self.lengths[symbol]
    }

    /// Writes the code for `symbol` into the bit stream.
    pub fn write(&self, writer: &mut BitWriter, symbol: usize) -> Result<()> {
        let len = self.lengths[symbol];
        if len == 0 {
            return Err(DeflateError::Corrupt(format!(
                "attempt to encode symbol {symbol} which has no code"
            )));
        }
        writer.write_code(self.codes[symbol], len as u32);
        Ok(())
    }
}

/// Canonical Huffman decoder.
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    /// `count[len]` = number of codes with that length.
    count: Vec<u32>,
    /// First canonical code of each length.
    first_code: Vec<u32>,
    /// Index into `symbols` of the first symbol of each length.
    first_index: Vec<u32>,
    /// Symbols sorted by (length, symbol value).
    symbols: Vec<u16>,
    max_len: usize,
}

impl HuffmanDecoder {
    /// Builds a decoder from code lengths. Rejects over-subscribed codes;
    /// accepts incomplete ones (DEFLATE streams may use a single distance
    /// code of length 1).
    pub fn from_lengths(lengths: &[u8]) -> Result<Self> {
        let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
        if max_len == 0 {
            // A degenerate decoder with no symbols; decoding will fail.
            return Ok(Self {
                count: vec![0; 1],
                first_code: vec![0; 1],
                first_index: vec![0; 1],
                symbols: Vec::new(),
                max_len: 0,
            });
        }
        let mut count = vec![0u32; max_len + 1];
        for &l in lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // Kraft check: must not be over-subscribed.
        let mut remaining = 1u64;
        for &count_at_len in count.iter().skip(1) {
            remaining <<= 1;
            let c = count_at_len as u64;
            if c > remaining {
                return Err(DeflateError::Corrupt("over-subscribed Huffman code".into()));
            }
            remaining -= c;
        }

        let mut first_code = vec![0u32; max_len + 1];
        let mut first_index = vec![0u32; max_len + 1];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=max_len {
            code = (code + count[len - 1]) << 1;
            first_code[len] = code;
            first_index[len] = index;
            index += count[len];
        }

        let mut symbols: Vec<(u8, u16)> = lengths
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0)
            .map(|(s, &l)| (l, s as u16))
            .collect();
        symbols.sort_unstable();
        let symbols = symbols.into_iter().map(|(_, s)| s).collect();

        Ok(Self {
            count,
            first_code,
            first_index,
            symbols,
            max_len,
        })
    }

    /// Decodes one symbol from the bit stream.
    pub fn decode(&self, reader: &mut BitReader<'_>) -> Result<u16> {
        if self.max_len == 0 {
            return Err(DeflateError::Corrupt(
                "decoding with an empty Huffman code".into(),
            ));
        }
        let mut code = 0u32;
        for len in 1..=self.max_len {
            code = (code << 1) | reader.read_bit()?;
            let cnt = self.count[len];
            if cnt > 0 && code >= self.first_code[len] && code < self.first_code[len] + cnt {
                let idx = self.first_index[len] + (code - self.first_code[len]);
                return Ok(self.symbols[idx as usize]);
            }
        }
        Err(DeflateError::Corrupt(
            "invalid Huffman code in stream".into(),
        ))
    }
}

/// Assigns canonical codes to lengths (RFC 1951 §3.2.2).
fn assign_canonical_codes(lengths: &[u8]) -> Result<Vec<u32>> {
    let max_len = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut bl_count = vec![0u32; max_len + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    // Over-subscription check mirrors the decoder's.
    let mut remaining = 1u64;
    for &count_at_len in bl_count.iter().skip(1) {
        remaining <<= 1;
        let c = count_at_len as u64;
        if c > remaining {
            return Err(DeflateError::Corrupt("over-subscribed Huffman code".into()));
        }
        remaining -= c;
    }
    let mut next_code = vec![0u32; max_len + 2];
    let mut code = 0u32;
    for len in 1..=max_len {
        code = (code + bl_count[len - 1]) << 1;
        next_code[len] = code;
    }
    let mut codes = vec![0u32; lengths.len()];
    for (symbol, &len) in lengths.iter().enumerate() {
        if len > 0 {
            codes[symbol] = next_code[len as usize];
            next_code[len as usize] += 1;
        }
    }
    Ok(codes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rfc_example_canonical_codes() {
        // RFC 1951 §3.2.2 example: lengths (3,3,3,3,3,2,4,4) produce codes
        // 010,011,100,101,110,00,1110,1111.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let enc = HuffmanEncoder::from_lengths(&lengths).unwrap();
        let expected = [0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111];
        for (sym, &code) in expected.iter().enumerate() {
            assert_eq!(enc.codes[sym], code, "symbol {sym}");
        }
    }

    #[test]
    fn encode_decode_roundtrip_rfc_example() {
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let enc = HuffmanEncoder::from_lengths(&lengths).unwrap();
        let dec = HuffmanDecoder::from_lengths(&lengths).unwrap();
        let symbols = [0usize, 5, 7, 3, 6, 1, 2, 4, 5, 5, 0];
        let mut w = BitWriter::new();
        for &s in &symbols {
            enc.write(&mut w, s).unwrap();
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec.decode(&mut r).unwrap() as usize, s);
        }
    }

    #[test]
    fn build_code_lengths_simple_cases() {
        // No active symbols.
        assert_eq!(build_code_lengths(&[0, 0, 0], 15), vec![0, 0, 0]);
        // One active symbol gets length 1.
        assert_eq!(build_code_lengths(&[0, 7, 0], 15), vec![0, 1, 0]);
        // Two symbols get one bit each.
        assert_eq!(build_code_lengths(&[3, 9], 15), vec![1, 1]);
        // Classic skewed distribution.
        let lengths = build_code_lengths(&[45, 13, 12, 16, 9, 5], 15);
        // Kraft equality for a complete optimal code.
        let kraft: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 2f64.powi(-(l as i32)))
            .sum();
        assert!((kraft - 1.0).abs() < 1e-9, "lengths {lengths:?}");
        // The most frequent symbol has the shortest code.
        assert!(lengths[0] <= lengths[4]);
        assert!(lengths[0] <= lengths[5]);
    }

    #[test]
    fn length_limit_is_respected() {
        // Fibonacci-like frequencies force long codes in unlimited Huffman;
        // the limited version must cap them.
        let freqs: Vec<u64> = vec![
            1, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987,
        ];
        for max_bits in [5u32, 7, 15] {
            let lengths = build_code_lengths(&freqs, max_bits);
            assert!(
                lengths.iter().all(|&l| (l as u32) <= max_bits),
                "max_bits {max_bits}"
            );
            let kraft: f64 = lengths
                .iter()
                .filter(|&&l| l > 0)
                .map(|&l| 2f64.powi(-(l as i32)))
                .sum();
            assert!(
                kraft <= 1.0 + 1e-9,
                "Kraft violated for max_bits {max_bits}"
            );
        }
    }

    #[test]
    fn oversubscribed_codes_are_rejected() {
        // Three codes of length 1 cannot exist.
        assert!(HuffmanDecoder::from_lengths(&[1, 1, 1]).is_err());
        assert!(HuffmanEncoder::from_lengths(&[1, 1, 1]).is_err());
    }

    #[test]
    fn incomplete_codes_are_accepted_by_the_decoder() {
        // A single code of length 1 (used for single-distance streams).
        let dec = HuffmanDecoder::from_lengths(&[1, 0, 0]).unwrap();
        let mut w = BitWriter::new();
        let enc = HuffmanEncoder::from_lengths(&[1, 0, 0]).unwrap();
        enc.write(&mut w, 0).unwrap();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), 0);
    }

    #[test]
    fn writing_an_uncoded_symbol_fails() {
        let enc = HuffmanEncoder::from_lengths(&[1, 1, 0]).unwrap();
        let mut w = BitWriter::new();
        assert!(enc.write(&mut w, 2).is_err());
        assert_eq!(enc.length(2), 0);
        assert_eq!(enc.lengths().len(), 3);
    }

    #[test]
    fn empty_decoder_errors_on_decode() {
        let dec = HuffmanDecoder::from_lengths(&[0, 0]).unwrap();
        let mut r = BitReader::new(&[0xFF]);
        assert!(dec.decode(&mut r).is_err());
    }

    #[test]
    fn invalid_code_in_stream_is_detected() {
        // Incomplete code: only "0" is valid; a stream of all 1s never
        // resolves to a symbol.
        let dec = HuffmanDecoder::from_lengths(&[1, 0]).unwrap();
        let mut r = BitReader::new(&[0xFF, 0xFF]);
        assert!(dec.decode(&mut r).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn random_frequency_tables_roundtrip(freqs in proptest::collection::vec(0u64..1000, 2..60)) {
            let lengths = build_code_lengths(&freqs, 15);
            prop_assume!(lengths.iter().any(|&l| l > 0));
            let enc = HuffmanEncoder::from_lengths(&lengths).unwrap();
            let dec = HuffmanDecoder::from_lengths(&lengths).unwrap();
            // Encode every active symbol a few times.
            let active: Vec<usize> =
                lengths.iter().enumerate().filter(|(_, &l)| l > 0).map(|(s, _)| s).collect();
            let mut w = BitWriter::new();
            for &s in active.iter().cycle().take(200) {
                enc.write(&mut w, s).unwrap();
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &s in active.iter().cycle().take(200) {
                prop_assert_eq!(dec.decode(&mut r).unwrap() as usize, s);
            }
        }

        #[test]
        fn package_merge_respects_kraft_inequality(freqs in proptest::collection::vec(0u64..500, 2..40)) {
            let lengths = build_code_lengths(&freqs, 15);
            let kraft: f64 =
                lengths.iter().filter(|&&l| l > 0).map(|&l| 2f64.powi(-(l as i32))).sum();
            prop_assert!(kraft <= 1.0 + 1e-9);
            // Zero-frequency symbols never get a code.
            for (i, &f) in freqs.iter().enumerate() {
                if f == 0 {
                    prop_assert_eq!(lengths[i], 0);
                }
            }
        }
    }
}
