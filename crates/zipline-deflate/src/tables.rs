//! Fixed tables from RFC 1951: length/distance code mappings and the fixed
//! Huffman code lengths.

/// Number of literal/length symbols (0–285).
pub const NUM_LITLEN_SYMBOLS: usize = 286;
/// Number of distance symbols (0–29).
pub const NUM_DIST_SYMBOLS: usize = 30;
/// Number of code-length-code symbols (0–18).
pub const NUM_CLC_SYMBOLS: usize = 19;
/// End-of-block symbol.
pub const END_OF_BLOCK: u16 = 256;
/// Maximum bits in a literal/length or distance Huffman code.
pub const MAX_CODE_BITS: u32 = 15;
/// Maximum bits in a code-length-code Huffman code.
pub const MAX_CLC_BITS: u32 = 7;
/// Minimum/maximum match lengths representable by DEFLATE.
pub const MIN_MATCH: usize = 3;
/// Maximum match length.
pub const MAX_MATCH: usize = 258;
/// Size of the LZ77 window.
pub const WINDOW_SIZE: usize = 32 * 1024;

/// Order in which code-length-code lengths are transmitted (RFC 1951 §3.2.7).
pub const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// `(base length, extra bits)` for length codes 257..=285.
pub const LENGTH_CODES: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// `(base distance, extra bits)` for distance codes 0..=29.
pub const DIST_CODES: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// Maps a match length (3..=258) to `(symbol, extra bits, extra value)`.
pub fn length_to_symbol(length: usize) -> (u16, u8, u16) {
    debug_assert!((MIN_MATCH..=MAX_MATCH).contains(&length));
    // Find the last code whose base is <= length.
    let mut idx = LENGTH_CODES.len() - 1;
    for (i, (base, _)) in LENGTH_CODES.iter().enumerate() {
        if (*base as usize) > length {
            idx = i - 1;
            break;
        }
    }
    // Length 258 maps to code 285 with 0 extra bits (not 284 + extra).
    if length == MAX_MATCH {
        idx = LENGTH_CODES.len() - 1;
    }
    let (base, extra_bits) = LENGTH_CODES[idx];
    (
        257 + idx as u16,
        extra_bits,
        (length - base as usize) as u16,
    )
}

/// Maps a distance (1..=32768) to `(symbol, extra bits, extra value)`.
pub fn distance_to_symbol(distance: usize) -> (u16, u8, u16) {
    debug_assert!((1..=WINDOW_SIZE).contains(&distance));
    let mut idx = DIST_CODES.len() - 1;
    for (i, (base, _)) in DIST_CODES.iter().enumerate() {
        if (*base as usize) > distance {
            idx = i - 1;
            break;
        }
    }
    let (base, extra_bits) = DIST_CODES[idx];
    (idx as u16, extra_bits, (distance - base as usize) as u16)
}

/// Base length and extra-bit count for a length symbol (257..=285).
pub fn symbol_to_length(symbol: u16) -> Option<(u16, u8)> {
    let idx = symbol.checked_sub(257)? as usize;
    LENGTH_CODES.get(idx).copied()
}

/// Base distance and extra-bit count for a distance symbol (0..=29).
pub fn symbol_to_distance(symbol: u16) -> Option<(u16, u8)> {
    DIST_CODES.get(symbol as usize).copied()
}

/// Code lengths of the fixed literal/length Huffman code (RFC 1951 §3.2.6).
pub fn fixed_litlen_lengths() -> Vec<u8> {
    let mut lengths = vec![0u8; NUM_LITLEN_SYMBOLS + 2]; // 288 codes defined
    for (i, len) in lengths.iter_mut().enumerate() {
        *len = match i {
            0..=143 => 8,
            144..=255 => 9,
            256..=279 => 7,
            _ => 8,
        };
    }
    lengths
}

/// Code lengths of the fixed distance Huffman code: 5 bits for all 30 codes
/// (and the two reserved ones).
pub fn fixed_dist_lengths() -> Vec<u8> {
    vec![5u8; 32]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_symbol_boundaries() {
        assert_eq!(length_to_symbol(3), (257, 0, 0));
        assert_eq!(length_to_symbol(4), (258, 0, 0));
        assert_eq!(length_to_symbol(10), (264, 0, 0));
        assert_eq!(length_to_symbol(11), (265, 1, 0));
        assert_eq!(length_to_symbol(12), (265, 1, 1));
        assert_eq!(length_to_symbol(13), (266, 1, 0));
        assert_eq!(length_to_symbol(257), (284, 5, 30));
        assert_eq!(length_to_symbol(258), (285, 0, 0));
    }

    #[test]
    fn distance_symbol_boundaries() {
        assert_eq!(distance_to_symbol(1), (0, 0, 0));
        assert_eq!(distance_to_symbol(4), (3, 0, 0));
        assert_eq!(distance_to_symbol(5), (4, 1, 0));
        assert_eq!(distance_to_symbol(6), (4, 1, 1));
        assert_eq!(distance_to_symbol(7), (5, 1, 0));
        assert_eq!(distance_to_symbol(24577), (29, 13, 0));
        assert_eq!(distance_to_symbol(32768), (29, 13, 8191));
    }

    #[test]
    fn every_length_roundtrips_through_its_symbol() {
        for length in MIN_MATCH..=MAX_MATCH {
            let (symbol, extra_bits, extra) = length_to_symbol(length);
            let (base, eb) = symbol_to_length(symbol).unwrap();
            assert_eq!(eb, extra_bits);
            assert_eq!(base as usize + extra as usize, length, "length {length}");
            assert!(extra < (1 << extra_bits) || extra_bits == 0);
        }
    }

    #[test]
    fn every_distance_roundtrips_through_its_symbol() {
        for distance in 1..=WINDOW_SIZE {
            let (symbol, extra_bits, extra) = distance_to_symbol(distance);
            let (base, eb) = symbol_to_distance(symbol).unwrap();
            assert_eq!(eb, extra_bits);
            assert_eq!(
                base as usize + extra as usize,
                distance,
                "distance {distance}"
            );
        }
    }

    #[test]
    fn symbol_lookup_rejects_out_of_range() {
        assert!(symbol_to_length(256).is_none());
        assert!(symbol_to_length(286).is_none());
        assert!(symbol_to_distance(30).is_none());
    }

    #[test]
    fn fixed_code_lengths_match_rfc() {
        let litlen = fixed_litlen_lengths();
        assert_eq!(litlen.len(), 288);
        assert_eq!(litlen[0], 8);
        assert_eq!(litlen[143], 8);
        assert_eq!(litlen[144], 9);
        assert_eq!(litlen[255], 9);
        assert_eq!(litlen[256], 7);
        assert_eq!(litlen[279], 7);
        assert_eq!(litlen[280], 8);
        assert_eq!(litlen[287], 8);
        assert_eq!(fixed_dist_lengths(), vec![5u8; 32]);
    }

    #[test]
    fn clc_order_is_a_permutation() {
        let mut sorted = CLC_ORDER;
        sorted.sort_unstable();
        let expected: Vec<usize> = (0..19).collect();
        assert_eq!(sorted.to_vec(), expected);
    }
}
