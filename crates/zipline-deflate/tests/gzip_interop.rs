//! Interoperability tests against the system `gzip`/`gunzip` binaries.
//!
//! These verify that the from-scratch DEFLATE/gzip implementation produces
//! files the reference tool accepts and can read files the reference tool
//! produces — i.e. that the Figure 3 baseline really is "gzip", not merely
//! something gzip-shaped. The tests skip silently when no `gzip` binary is
//! installed so the suite stays hermetic.

use std::io::Write;
use std::process::{Command, Stdio};

fn gzip_available() -> bool {
    Command::new("gzip")
        .arg("--version")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

fn sample_data() -> Vec<u8> {
    let mut data = Vec::new();
    for i in 0..4000u32 {
        data.extend_from_slice(
            format!("sensor-{:03} temperature={:04}\n", i % 37, i % 100).as_bytes(),
        );
    }
    data
}

#[test]
fn system_gunzip_accepts_our_output() {
    if !gzip_available() {
        eprintln!("skipping: gzip not installed");
        return;
    }
    let data = sample_data();
    for level in [
        zipline_deflate::Level::Store,
        zipline_deflate::Level::Fast,
        zipline_deflate::Level::Default,
        zipline_deflate::Level::Best,
    ] {
        let ours = zipline_deflate::gzip_compress(&data, level);
        let mut child = Command::new("gzip")
            .args(["-d", "-c"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn gzip");
        child.stdin.as_mut().unwrap().write_all(&ours).unwrap();
        let output = child.wait_with_output().unwrap();
        assert!(
            output.status.success(),
            "gzip -d rejected our output at {level:?}"
        );
        assert_eq!(
            output.stdout, data,
            "gzip -d produced different bytes at {level:?}"
        );
    }
}

#[test]
fn we_accept_system_gzip_output() {
    if !gzip_available() {
        eprintln!("skipping: gzip not installed");
        return;
    }
    let data = sample_data();
    for flag in ["-1", "-6", "-9"] {
        let mut child = Command::new("gzip")
            .args([flag, "-c"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn gzip");
        child.stdin.as_mut().unwrap().write_all(&data).unwrap();
        let output = child.wait_with_output().unwrap();
        assert!(output.status.success());
        let decoded = zipline_deflate::gzip_decompress(&output.stdout)
            .unwrap_or_else(|e| panic!("failed to decode gzip {flag} output: {e}"));
        assert_eq!(decoded, data, "mismatch decoding gzip {flag} output");
    }
}

#[test]
fn our_compression_ratio_is_in_the_same_ballpark_as_system_gzip() {
    if !gzip_available() {
        eprintln!("skipping: gzip not installed");
        return;
    }
    let data = sample_data();
    let mut child = Command::new("gzip")
        .args(["-6", "-c"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn gzip");
    child.stdin.as_mut().unwrap().write_all(&data).unwrap();
    let system = child.wait_with_output().unwrap().stdout;
    let ours = zipline_deflate::gzip_compress(&data, zipline_deflate::Level::Default);
    let ratio = ours.len() as f64 / system.len() as f64;
    assert!(
        ratio < 1.35,
        "our output is {ratio:.2}x the size of system gzip ({} vs {} bytes)",
        ours.len(),
        system.len()
    );
}
