//! # zipline-flow — multi-tenant flow routing
//!
//! The routing layer in front of
//! [`CompressionEngine`](zipline_engine::CompressionEngine): many
//! concurrent flows from many tenants multiplex over one process (and,
//! via `zipline-server`, over one socket) without sharing compression
//! state. The implementation lives in
//! [`zipline_engine::tenant`] — next to the engine seams it rides — and
//! this crate is its public face.
//!
//! ## Placement invariant
//!
//! A flow's partition is a pure function of its [`FlowKey`]:
//! [`flow_placement`] hashes `(tenant, flow)` onto the tenant's pool and
//! collisions probe linearly, so placement depends only on which flows
//! are active — never on time or iteration order. Routing never changes
//! bytes: a flow pushed through the router emits bit-identical output to
//! the same data pushed through an isolated single-tenant engine (pinned
//! by the `flow_router` proptest suite in `zipline-engine`).
//!
//! ## Fairness invariant
//!
//! Tenants never share dictionary state — each flow owns its engine
//! partition, so the dictionary namespace is partitioned by construction
//! and one tenant's churn cannot evict another's bases. Capacity is a
//! budgeted slab share: at most
//! [`partitions_per_tenant`](FlowRouterConfig::partitions_per_tenant)
//! concurrent flows per tenant, opens past the budget rejected with
//! [`FlowError::TenantSaturated`], and the per-tenant ledger
//! ([`TenantStats`]) surfaces install/evict/ratio counters the way
//! per-shard stats do for one engine.
//!
//! ## Tagged control plane
//!
//! Every emission is a [`FlowEvent`] carrying its key; per flow,
//! dictionary updates interleave strictly before the payloads that need
//! them — the single-stream live-sync invariant, preserved per flow. The
//! receive side is [`FlowDecoderPool`]: one decoder per flow, so one
//! pool tracks many interleaved streams and one flow's churn never
//! perturbs another tenant's decoder state.

pub use zipline_engine::tenant::{
    flow_dir, flow_placement, plan_resume, reseed_updates, tenant_dir, FlowDecoderPool, FlowError,
    FlowEvent, FlowKey, FlowResume, FlowRouter, FlowRouterConfig, FlowSummary, TenantStats,
};

#[cfg(test)]
mod tests {
    use super::*;

    /// The re-export surface is usable end to end through this crate
    /// alone: open, push, finish, decode.
    #[test]
    fn crate_surface_roundtrips_one_flow() {
        use zipline_engine::{EngineConfig, SpawnPolicy};
        use zipline_gd::GdConfig;

        let engine = EngineConfig {
            gd: GdConfig::for_parameters(8, 6).expect("valid parameters"),
            shards: 2,
            workers: 1,
            spawn: SpawnPolicy::Inline,
        };
        let mut config = FlowRouterConfig::new(engine);
        config.batch_units = 4;
        let mut router: FlowRouter = FlowRouter::new(config).expect("valid router config");
        let key = FlowKey::new(42, 7);
        router.open_flow(key, 0).expect("cold open");
        let data: Vec<u8> = (0..256u32).map(|i| (i % 251) as u8).collect();
        router.push(key, &data).expect("push");
        router.end_flow(key).expect("finish");

        let mut pool = FlowDecoderPool::new(engine);
        pool.open(key).expect("decoder open");
        let mut out = Vec::new();
        for event in router.drain_events() {
            pool.decode_event(&event, &mut out).expect("decode");
        }
        assert_eq!(out, data);
    }
}
