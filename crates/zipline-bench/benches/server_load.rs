//! PR-7 bench: the network ingest path end to end — `zipline-server`'s
//! accept/pipeline/ordered-writer stack driven by the closed-loop load
//! harness over real loopback sockets.
//!
//! * `tcp_single_stream`: one connection, one stream, TCP loopback — the
//!   per-stream price of the socket path (framing, CRC, the response
//!   writer) over the in-process engine it wraps.
//! * `tcp_closed_loop_2conn`: two concurrent connections with a bounded
//!   in-flight window — the shape CI's load smoke runs, measuring how the
//!   accept loop and per-connection engines overlap.
//! * `uds_closed_loop_2conn`: the same loop over a Unix-domain socket,
//!   isolating transport cost from protocol cost.
//!
//! Every iteration opens fresh connections and streams fresh ids against
//! one long-lived server, so the measurement includes connect/hello/DONE —
//! the whole closed loop, not just steady-state bytes.
//!
//! Snapshots are committed as `BENCH_PR7.json` (regenerate with
//! `BENCH_JSON=bench.jsonl cargo bench -p zipline-bench --bench server_load`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use zipline::host::HostPathConfig;
use zipline_engine::{EngineConfig, SpawnPolicy};
use zipline_gd::config::GdConfig;
use zipline_server::{
    run_closed_loop, BackendChoice, LoadConfig, ServerConfigBuilder, ServerHandle,
};
use zipline_traces::{ChunkWorkload, FlowMixConfig, FlowMixWorkload};

/// Chunks per connection per iteration (32-byte chunks → 16 KiB each).
const CHUNKS_PER_CONN: usize = 512;

/// Small churn-heavy host shape (64-identifier dictionary, 64-chunk
/// batches) so every iteration exercises learning and eviction, not just a
/// warm dictionary.
fn small_host() -> HostPathConfig {
    HostPathConfig {
        engine: EngineConfig {
            gd: GdConfig::for_parameters(8, 6).expect("valid GD parameters"),
            shards: 4,
            workers: 2,
            spawn: SpawnPolicy::Inline,
        },
        batch_chunks: 64,
        ..HostPathConfig::paper_default()
    }
}

/// Replays pre-generated chunks so the PRNG cost stays out of the loop.
struct Replay {
    chunks: Vec<Vec<u8>>,
}

impl ChunkWorkload for Replay {
    fn chunk_len(&self) -> usize {
        self.chunks.first().map_or(0, Vec::len)
    }

    fn total_chunks(&self) -> usize {
        self.chunks.len()
    }

    fn chunks(&self) -> Box<dyn Iterator<Item = Vec<u8>> + '_> {
        Box::new(self.chunks.iter().cloned())
    }
}

fn flow_chunks(seed: u64) -> Vec<Vec<u8>> {
    let config = FlowMixConfig {
        chunks: CHUNKS_PER_CONN,
        ..FlowMixConfig::small_with_seed(seed)
    };
    FlowMixWorkload::new(config).chunks().collect()
}

/// One closed-loop pass: `connections` fresh sessions, distinct stream ids.
fn run_pass(
    handle: &ServerHandle,
    load: &LoadConfig,
    connections: usize,
    next_id: &mut u64,
) -> u64 {
    let workloads: Vec<Box<dyn ChunkWorkload + Send>> = (0..connections as u64)
        .map(|i| {
            Box::new(Replay {
                chunks: flow_chunks(11 + i),
            }) as Box<dyn ChunkWorkload + Send>
        })
        .collect();
    let base = *next_id;
    *next_id += connections as u64;
    let report =
        run_closed_loop(handle.endpoint(), load, "bench", base, workloads).expect("load runs");
    assert_eq!(
        report.records_sent,
        (connections * CHUNKS_PER_CONN) as u64,
        "every record must round-trip"
    );
    report.wire_bytes
}

fn bench_server_load(c: &mut Criterion) {
    let host = small_host();
    let load = LoadConfig {
        connections: 2,
        window_chunks: 256,
        chunk_bytes: host.engine.gd.chunk_bytes,
        batch_chunks: host.batch_chunks,
        backend: BackendChoice::Gd,
    };
    let bytes_per_conn = (CHUNKS_PER_CONN * host.engine.gd.chunk_bytes) as u64;
    let mut group = c.benchmark_group("server_load");

    let tcp = ServerHandle::bind_tcp(
        "127.0.0.1:0",
        ServerConfigBuilder::new()
            .host(host.clone())
            .build()
            .expect("valid server config"),
    )
    .expect("server binds");
    let mut next_id = 0x5E17_0000u64;

    group.throughput(Throughput::Bytes(bytes_per_conn));
    group.bench_function("tcp_single_stream", |b| {
        b.iter(|| black_box(run_pass(&tcp, &load, 1, &mut next_id)))
    });

    group.throughput(Throughput::Bytes(2 * bytes_per_conn));
    group.bench_function("tcp_closed_loop_2conn", |b| {
        b.iter(|| black_box(run_pass(&tcp, &load, 2, &mut next_id)))
    });
    let report = tcp.shutdown();
    assert!(report.errors.is_empty(), "{:?}", report.errors);

    #[cfg(unix)]
    {
        let path =
            std::env::temp_dir().join(format!("zipline-bench-server-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let uds = ServerHandle::bind_uds(
            &path,
            ServerConfigBuilder::new()
                .host(host)
                .build()
                .expect("valid server config"),
        )
        .expect("server binds");
        group.throughput(Throughput::Bytes(2 * bytes_per_conn));
        group.bench_function("uds_closed_loop_2conn", |b| {
            b.iter(|| black_box(run_pass(&uds, &load, 2, &mut next_id)))
        });
        let report = uds.shutdown();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
    }

    group.finish();
}

criterion_group!(benches, bench_server_load);
criterion_main!(benches);
