//! PR-10 codec selection: what the registry's routing layer costs on the
//! wire-facing compress path.
//!
//! One mixed workload (GD-friendly sensor-style segments alternating with
//! text-like segments deflate wins) runs batch-by-batch through four
//! backends behind the same [`CompressionBackend`] entry points:
//!
//! * `gd` / `deflate` — the fixed baselines;
//! * `hybrid` — GD, then one gzip member over the GD residue (the
//!   paper's "GD + secondary compressor");
//! * `auto` — the registry router: per-batch deflate sampling, EWMA-
//!   tracked GD ratio, hysteresis. Its delta over the winning fixed
//!   backend is the whole price of self-describing batch routing.
//!
//! Single-core container: compare against the committed `BENCH_PR10.json`
//! baselines, not wall-clock claims. Regenerate with
//! `BENCH_JSON=bench.jsonl cargo bench -p zipline-bench --bench codec_select`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use zipline_deflate::Level;
use zipline_engine::{
    AutoBackend, AutoConfig, CompressionBackend, DeflateBackend, EngineConfig, GdBackend,
    HybridGdDeflateBackend, SpawnPolicy,
};

const SEGMENTS: usize = 8;
const CHUNKS_PER_SEGMENT: usize = 256;

/// Mixed workload: alternating GD territory (few chunk bases, sparse
/// deviations) and deflate territory (fresh bases, low-entropy text), so
/// the router has real switching decisions to make.
fn mixed_data(chunk_bytes: usize) -> Vec<u8> {
    let mut data = Vec::new();
    for s in 0..SEGMENTS {
        for i in 0..CHUNKS_PER_SEGMENT {
            let mut chunk = vec![0u8; chunk_bytes];
            if s % 2 == 0 {
                chunk[0] = (s % 5) as u8;
                chunk[8] = 0xA5;
                if i % 7 == 0 {
                    chunk[20] ^= 0x10;
                }
            } else {
                for (j, byte) in chunk.iter_mut().enumerate() {
                    *byte = ((s * 131 + i * 17 + j * 7) % 9) as u8 + b'a';
                }
            }
            data.extend_from_slice(&chunk);
        }
    }
    data
}

fn engine_config() -> EngineConfig {
    let mut config = EngineConfig::paper_default();
    config.shards = 4;
    config.workers = 1;
    config.spawn = SpawnPolicy::Inline;
    config
}

/// Drives `backend` over the whole workload in 64-chunk batches — compress
/// plus emit, the full wire-facing path the router sits on.
fn drive<B: CompressionBackend>(backend: &mut B, data: &[u8], batch_bytes: usize) -> usize {
    let mut wire = 0usize;
    for batch in data.chunks(batch_bytes) {
        let compressed = backend.compress_batch(batch).unwrap();
        backend
            .emit_batch(compressed, &mut |_, bytes| wire += bytes.len())
            .unwrap();
    }
    wire
}

fn bench_codec_select(c: &mut Criterion) {
    let config = engine_config();
    let data = mixed_data(config.gd.chunk_bytes);
    let batch_bytes = 64 * config.gd.chunk_bytes;

    let mut group = c.benchmark_group("codec_select");
    group.throughput(Throughput::Bytes(data.len() as u64));

    let mut gd = GdBackend::new(config).unwrap();
    group.bench_function("gd", |b| {
        b.iter(|| black_box(drive(&mut gd, black_box(&data), batch_bytes)))
    });

    let mut deflate = DeflateBackend::new(Level::Default);
    group.bench_function("deflate", |b| {
        b.iter(|| black_box(drive(&mut deflate, black_box(&data), batch_bytes)))
    });

    let mut hybrid = HybridGdDeflateBackend::new(config, Level::Default).unwrap();
    group.bench_function("hybrid", |b| {
        b.iter(|| black_box(drive(&mut hybrid, black_box(&data), batch_bytes)))
    });

    let mut auto = AutoBackend::new(config, AutoConfig::default()).unwrap();
    group.bench_function("auto", |b| {
        b.iter(|| black_box(drive(&mut auto, black_box(&data), batch_bytes)))
    });

    group.finish();
}

criterion_group!(benches, bench_codec_select);
criterion_main!(benches);
