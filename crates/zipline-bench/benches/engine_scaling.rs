//! PR-2 scaling bench: the sharded `zipline-engine` against the
//! single-threaded `GdCompressor::compress_batch` baseline on the 9000 B
//! stream workload (one jumbo frame's worth of sensor-style chunks — the
//! same workload as `stream_compressor_9000B` in `switch_throughput.rs`).
//!
//! Grid: 1/2/4/8 workers × 1/4/16 dictionary shards, plus the batch-decode
//! group for the symmetric `decompress_batch` path. The engine runs under
//! [`SpawnPolicy::Auto`], so on a multi-core host the worker axis adds real
//! threads while on a single-core host (such as the CI container) it
//! measures the partitioned inline path — either way the sharded dictionary
//! and cached basis hash carry the chunk throughput. Snapshots are committed
//! as `BENCH_PR2.json` (regenerate with
//! `BENCH_JSON=bench.jsonl cargo bench -p zipline-bench --bench engine_scaling`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use zipline_engine::{CompressionEngine, EngineConfig, EngineDecompressor, SpawnPolicy};
use zipline_gd::{GdCompressor, GdConfig, GdDecompressor};

/// One jumbo frame's worth of sensor-style chunks (matches the
/// `stream_compressor_9000B` workload of the PR-1 bench).
fn stream_9000b(config: &GdConfig) -> Vec<u8> {
    let mut data = Vec::new();
    for i in 0..(9000 / config.chunk_bytes) as u32 {
        let mut chunk = vec![0u8; config.chunk_bytes];
        chunk[0] = (i % 6) as u8;
        chunk[8] = 0xA5;
        if i % 5 == 0 {
            chunk[20] ^= 0x10; // near-duplicate noise
        }
        data.extend_from_slice(&chunk);
    }
    data
}

fn bench_engine_scaling(c: &mut Criterion) {
    let gd = GdConfig::paper_default();
    let data = stream_9000b(&gd);

    let mut group = c.benchmark_group("engine_scaling");
    group.throughput(Throughput::Bytes(data.len() as u64));

    // Baseline: the single-threaded stream compressor. The compressor lives
    // outside the measurement so after the first iteration every basis is
    // known and the loop measures steady-state (all-Ref) compression.
    let mut baseline = GdCompressor::new(&gd).unwrap();
    group.bench_function("compress_batch_baseline", |b| {
        b.iter(|| black_box(baseline.compress_batch(black_box(&data)).unwrap()))
    });

    for &workers in &[1usize, 2, 4, 8] {
        for &shards in &[1usize, 4, 16] {
            let config = EngineConfig {
                gd,
                shards,
                workers,
                spawn: SpawnPolicy::Auto,
            };
            let mut engine = CompressionEngine::new(config).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("engine_w{workers}"), format!("s{shards}")),
                &config,
                |b, _| b.iter(|| black_box(engine.compress_batch(black_box(&data)).unwrap())),
            );
        }
    }
    group.finish();
}

fn bench_batch_decode(c: &mut Criterion) {
    let gd = GdConfig::paper_default();
    let data = stream_9000b(&gd);
    let stream = GdCompressor::new(&gd)
        .unwrap()
        .compress_batch(&data)
        .unwrap();

    let mut group = c.benchmark_group("batch_decode_9000B");
    group.throughput(Throughput::Bytes(data.len() as u64));

    group.bench_function("per_record_loop", |b| {
        b.iter(|| {
            let mut dec = GdDecompressor::new(&gd).unwrap();
            let mut out = Vec::new();
            for record in &stream.records {
                out.extend_from_slice(&dec.decompress_record(record).unwrap());
            }
            black_box(out)
        })
    });

    group.bench_function("batch_scratch", |b| {
        b.iter(|| {
            let mut dec = GdDecompressor::new(&gd).unwrap();
            black_box(dec.decompress_batch(black_box(&stream)).unwrap())
        })
    });

    // The sharded engine decoder on an engine stream (8 shards).
    let config = EngineConfig {
        gd,
        shards: 8,
        workers: 4,
        spawn: SpawnPolicy::Auto,
    };
    let engine_stream = CompressionEngine::new(config)
        .unwrap()
        .compress_batch(&data)
        .unwrap();
    group.bench_function("engine_batch_s8", |b| {
        b.iter(|| {
            let mut dec = EngineDecompressor::new(config).unwrap();
            black_box(dec.decompress_batch(black_box(&engine_stream)).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_engine_scaling, bench_batch_decode);
criterion_main!(benches);
