//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * Hamming parameter `m` — per-chunk transform cost as the deviation width
//!   grows (the compression-ratio side of this ablation is printed by
//!   `cargo run -p zipline-bench --bin ablations`);
//! * identifier width — dictionary behaviour under different capacities;
//! * eviction policy — LRU (the paper's choice) vs FIFO;
//! * CRC implementation — bit-serial vs table-driven (also covered by
//!   `crc_hamming`, repeated here over whole chunks for the ablation record).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use zipline_gd::bits::BitVec;
use zipline_gd::codec::ChunkCodec;
use zipline_gd::crc::CrcEngine;
use zipline_gd::dictionary::{BasisDictionary, EvictionPolicy};
use zipline_gd::hamming::HammingCode;
use zipline_gd::GdConfig;

fn bench_hamming_parameter_sweep(c: &mut Criterion) {
    // zipline-lint: allow(L003): paper ablation sweep, run manually for figures, not a CI-gated perf path
    let mut group = c.benchmark_group("ablation_hamming_parameter");
    for m in [3u32, 5, 8, 10, 12] {
        let config = GdConfig::for_parameters(m, 15).unwrap();
        let codec = ChunkCodec::new(&config).unwrap();
        let chunk: Vec<u8> = (0..config.chunk_bytes)
            .map(|i| (i as u8).wrapping_mul(73).wrapping_add(5))
            .collect();
        group.throughput(Throughput::Bytes(config.chunk_bytes as u64));
        group.bench_with_input(BenchmarkId::new("encode_chunk_m", m), &m, |b, _| {
            b.iter(|| black_box(codec.encode_chunk(black_box(&chunk)).unwrap()))
        });
    }
    group.finish();
}

fn bench_dictionary_capacity_sweep(c: &mut Criterion) {
    // zipline-lint: allow(L003): paper ablation sweep, run manually for figures, not a CI-gated perf path
    let mut group = c.benchmark_group("ablation_identifier_width");
    for id_bits in [7u32, 15, 20] {
        let mut dictionary = BasisDictionary::with_id_bits(id_bits);
        // Pre-fill to capacity so lookups and inserts run in steady state.
        for i in 0..dictionary.capacity() as u64 {
            dictionary.insert(BitVec::from_u64(i, 40), i).unwrap();
        }
        let present = BitVec::from_u64(17, 40);
        group.bench_with_input(BenchmarkId::new("lookup_hit", id_bits), &id_bits, |b, _| {
            let mut now = 0u64;
            b.iter(|| {
                now += 1;
                black_box(dictionary.lookup_basis(black_box(&present), now, true))
            })
        });
        group.bench_with_input(
            BenchmarkId::new("insert_with_eviction", id_bits),
            &id_bits,
            |b, _| {
                let mut now = u64::MAX / 2;
                b.iter(|| {
                    now += 1;
                    black_box(dictionary.insert(BitVec::from_u64(now, 40), now).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_eviction_policy(c: &mut Criterion) {
    // zipline-lint: allow(L003): paper ablation sweep, run manually for figures, not a CI-gated perf path
    let mut group = c.benchmark_group("ablation_eviction_policy");
    for (label, policy) in [("lru", EvictionPolicy::Lru), ("fifo", EvictionPolicy::Fifo)] {
        group.bench_function(BenchmarkId::new("churn", label), |b| {
            b.iter(|| {
                let mut dictionary = BasisDictionary::with_policy(256, policy, None);
                for i in 0..2_000u64 {
                    dictionary.insert(BitVec::from_u64(i % 512, 32), i).unwrap();
                }
                black_box(dictionary.evictions())
            })
        });
    }
    group.finish();
}

fn bench_crc_implementation(c: &mut Criterion) {
    // zipline-lint: allow(L003): paper ablation sweep, run manually for figures, not a CI-gated perf path
    let mut group = c.benchmark_group("ablation_crc_implementation");
    let code = HammingCode::new(8).unwrap();
    let engine: &CrcEngine = code.crc();
    let chunk: Vec<u8> = (0..255).map(|i| (i as u8).wrapping_mul(29)).collect();
    let bits = BitVec::from_bytes(&chunk);
    group.throughput(Throughput::Bytes(chunk.len() as u64));
    group.bench_function("bit_serial_255B", |b| {
        b.iter(|| black_box(engine.compute_bits_serial(black_box(&bits))))
    });
    group.bench_function("table_driven_255B", |b| {
        b.iter(|| black_box(engine.compute_bytes(black_box(&chunk))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hamming_parameter_sweep,
    bench_dictionary_capacity_sweep,
    bench_eviction_policy,
    bench_crc_implementation
);
criterion_main!(benches);
