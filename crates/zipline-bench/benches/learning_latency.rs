//! Dynamic-learning counterpart bench: cost of one learning-delay repetition
//! in the simulator, and the scaling of the measured delay with the
//! configured control-plane latency (the knob the paper's 1.77 ms hangs on).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zipline::experiment::learning::{run_learning_experiment, LearningExperimentConfig};
use zipline_net::time::SimDuration;

fn bench_learning_run(c: &mut Criterion) {
    // zipline-lint: allow(L003): paper learning-latency study, run manually, not a CI-gated perf path
    let mut group = c.benchmark_group("dynamic_learning_measurement");
    group.sample_size(10);
    for latency_us in [20u64, 200, 590] {
        let config = LearningExperimentConfig {
            control_plane_latency: SimDuration::from_micros(latency_us),
            repetitions: 1,
            packets_per_second: 1_000_000.0,
            packets_per_repetition: (latency_us * 5).max(500),
            ..LearningExperimentConfig::paper_default()
        };
        group.bench_with_input(
            BenchmarkId::new("control_plane_latency_us", latency_us),
            &config,
            |b, config| {
                b.iter(|| {
                    let result = run_learning_experiment(black_box(config)).unwrap();
                    // The measured delay must scale with the control-plane
                    // latency (three traversals), or the model is broken.
                    assert!(result.mean_delay.as_nanos() >= 3 * latency_us * 1_000);
                    black_box(result.mean_delay)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_learning_run);
criterion_main!(benches);
