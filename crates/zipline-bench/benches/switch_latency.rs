//! Figure 5 counterpart bench: cost of the RTT measurement itself, plus the
//! pure in-simulator forwarding latency of one probe for each switch
//! operation (which is what the figure compares).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use zipline::experiment::latency::{run_one, LatencyExperimentConfig};
use zipline::experiment::throughput::SwitchOperation;

fn bench_latency_experiment(c: &mut Criterion) {
    let config = LatencyExperimentConfig {
        probes: 10,
        ..LatencyExperimentConfig::paper_default()
    };
    // zipline-lint: allow(L003): paper figure-5 RTT study, run manually, not a CI-gated perf path
    let mut group = c.benchmark_group("figure5_rtt_measurement");
    group.sample_size(20);
    for op in SwitchOperation::all() {
        group.bench_with_input(BenchmarkId::new("op", op.label()), &op, |b, &op| {
            b.iter(|| black_box(run_one(&config, op).unwrap()))
        });
    }
    group.finish();
}

fn bench_reported_rtts_are_equal(c: &mut Criterion) {
    // Not a timing bench per se: asserts (under criterion's repeated
    // execution) that the three operations keep reporting identical
    // simulated RTTs, the Figure 5 claim.
    let config = LatencyExperimentConfig::paper_default();
    c.bench_function("figure5_invariance_check", |b| {
        b.iter(|| {
            let noop = run_one(&config, SwitchOperation::NoOp).unwrap().mean_rtt;
            let encode = run_one(&config, SwitchOperation::Encode).unwrap().mean_rtt;
            let decode = run_one(&config, SwitchOperation::Decode).unwrap().mean_rtt;
            assert_eq!(noop, encode);
            assert_eq!(noop, decode);
            black_box((noop, encode, decode))
        })
    });
}

criterion_group!(
    benches,
    bench_latency_experiment,
    bench_reported_rtts_are_equal
);
criterion_main!(benches);
