//! Micro-benchmarks of the GD building blocks: CRC computation (bit-serial
//! vs table-driven), Hamming syndrome/encode, and the full chunk transform.
//!
//! These correspond to the per-packet work the Tofino data plane does in
//! hardware; in the simulator they dominate the software packet rate
//! reported by the `switch_throughput` bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use zipline_gd::bits::BitVec;
use zipline_gd::codec::{ChunkCodec, EncodeScratch};
use zipline_gd::crc::{CrcEngine, CrcSpec};
use zipline_gd::hamming::HammingCode;
use zipline_gd::transform::HammingTransform;
use zipline_gd::GdConfig;

fn chunk_bytes(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(7))
        .collect()
}

fn bench_crc(c: &mut Criterion) {
    // zipline-lint: allow(L003): micro-kernel characterization bench, run manually, not a CI-gated perf path
    let mut group = c.benchmark_group("crc8_over_32B_chunk");
    group.throughput(Throughput::Bytes(32));
    let engine = CrcEngine::new(CrcSpec::new(8, 0x1D).unwrap());
    let bytes = chunk_bytes(32);
    let bits = BitVec::from_bytes(&bytes);

    group.bench_function("bit_serial", |b| {
        b.iter(|| black_box(engine.compute_bits_serial(black_box(&bits))))
    });
    group.bench_function("table_driven", |b| {
        b.iter(|| black_box(engine.compute_bytes(black_box(&bytes))))
    });
    group.bench_function("word_parallel", |b| {
        b.iter(|| black_box(engine.checksum_words(black_box(bits.words()), bits.len())))
    });
    group.finish();
}

/// The PR-1 comparison group: table-driven word-path syndromes vs the
/// bit-serial reference, over the exact `n`-bit Hamming blocks the GD data
/// path hashes. Acceptance: `word_parallel` >= 5x faster than `bit_serial`.
fn bench_syndrome_word_vs_bit_serial(c: &mut Criterion) {
    // zipline-lint: allow(L003): micro-kernel characterization bench, run manually, not a CI-gated perf path
    let mut group = c.benchmark_group("syndrome_word_vs_bit_serial");
    for m in [3u32, 8, 11] {
        let code = HammingCode::new(m).unwrap();
        let n = code.n();
        let word: BitVec = (0..n).map(|i| i % 5 < 2).collect();
        group.bench_with_input(BenchmarkId::new("bit_serial", m), &m, |b, _| {
            b.iter(|| black_box(code.crc().compute_bits_serial(black_box(&word))))
        });
        group.bench_with_input(BenchmarkId::new("word_parallel", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    code.crc()
                        .checksum_words(black_box(word.words()), word.len()),
                )
            })
        });
    }
    group.finish();
}

fn bench_hamming(c: &mut Criterion) {
    // zipline-lint: allow(L003): micro-kernel characterization bench, run manually, not a CI-gated perf path
    let mut group = c.benchmark_group("hamming_255_247");
    let code = HammingCode::new(8).unwrap();
    let word = BitVec::from_bytes(&chunk_bytes(32)).slice(0..255);
    let message = word.slice(8..255);

    group.bench_function("syndrome", |b| {
        b.iter(|| black_box(code.syndrome(black_box(&word)).unwrap()))
    });
    group.bench_function("encode", |b| {
        b.iter(|| black_box(code.encode(black_box(&message)).unwrap()))
    });
    group.bench_function("decode", |b| {
        b.iter(|| black_box(code.decode(black_box(&word)).unwrap()))
    });
    group.finish();
}

fn bench_transform(c: &mut Criterion) {
    // zipline-lint: allow(L003): micro-kernel characterization bench, run manually, not a CI-gated perf path
    let mut group = c.benchmark_group("gd_transform");
    for m in [3u32, 8, 11] {
        let transform = HammingTransform::new(m).unwrap();
        let n = transform.chunk_bits();
        let chunk: BitVec = (0..n).map(|i| i % 3 == 0).collect();
        let deconstructed = transform.deconstruct(&chunk).unwrap();
        group.bench_with_input(BenchmarkId::new("deconstruct", m), &m, |b, _| {
            b.iter(|| black_box(transform.deconstruct(black_box(&chunk)).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("reconstruct", m), &m, |b, _| {
            b.iter(|| {
                black_box(
                    transform
                        .reconstruct(black_box(&deconstructed.basis), deconstructed.deviation)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_chunk_codec(c: &mut Criterion) {
    // zipline-lint: allow(L003): micro-kernel characterization bench, run manually, not a CI-gated perf path
    let mut group = c.benchmark_group("chunk_codec_paper_params");
    group.throughput(Throughput::Bytes(32));
    let codec = ChunkCodec::new(&GdConfig::paper_default()).unwrap();
    let chunk = chunk_bytes(32);
    let encoded = codec.encode_chunk(&chunk).unwrap();
    group.bench_function("encode_chunk", |b| {
        b.iter(|| black_box(codec.encode_chunk(black_box(&chunk)).unwrap()))
    });
    group.bench_function("decode_chunk", |b| {
        b.iter(|| black_box(codec.decode_chunk(black_box(&encoded)).unwrap()))
    });
    group.finish();
}

/// The PR-1 batch-encode comparison: `encode_chunks` with a reused scratch
/// vs the per-chunk `encode_chunk` loop, over a 64-chunk (2 KiB) buffer.
/// Acceptance: `batch_scratch` >= 2x faster than `per_chunk_loop`.
fn bench_batch_encode(c: &mut Criterion) {
    const CHUNKS: usize = 64;
    let config = GdConfig::paper_default();
    let codec = ChunkCodec::new(&config).unwrap();
    let data = chunk_bytes(config.chunk_bytes * CHUNKS);

    // zipline-lint: allow(L003): micro-kernel characterization bench, run manually, not a CI-gated perf path
    let mut group = c.benchmark_group("batch_encode_64_chunks");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("per_chunk_loop", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(CHUNKS);
            for chunk in data.chunks_exact(config.chunk_bytes) {
                out.push(codec.encode_chunk(black_box(chunk)).unwrap());
            }
            black_box(out)
        })
    });
    group.bench_function("batch_scratch", |b| {
        // Steady state: scratch and output entries recycled across batches,
        // so the encode itself performs no heap allocation.
        let mut scratch = EncodeScratch::new();
        let mut out = Vec::new();
        b.iter(|| {
            let tail = codec
                .encode_chunks_into(black_box(&data), &mut scratch, &mut out)
                .unwrap();
            black_box((&out, tail));
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_crc,
    bench_syndrome_word_vs_bit_serial,
    bench_hamming,
    bench_transform,
    bench_chunk_codec,
    bench_batch_encode,
);
criterion_main!(benches);
