//! PR-9 bench: the multi-tenant flow router's dispatch overhead and its
//! scaling across flow counts.
//!
//! `single_stream` is the no-router baseline: the same total byte volume
//! through one dedicated [`PipelinedStream`]. `router_f<N>` routes the
//! zipf-skewed `ManyFlowsWorkload` interleaving through one [`FlowRouter`]
//! carrying N tenant-scoped flows — the delta over the baseline is the
//! price of per-flow placement, per-tenant accounting and event tagging,
//! and it must stay a bookkeeping-sized delta, not a second compression
//! pass. Flow-count scaling shows partition placement staying O(1) per
//! chunk as flows grow.
//!
//! Snapshots are committed as `BENCH_PR9.json` (regenerate with
//! `BENCH_JSON=bench.jsonl cargo bench -p zipline-bench --bench multi_tenant`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use zipline_engine::{EngineBuilder, EngineConfig, PipelinedStream, SpawnPolicy};
use zipline_flow::{FlowKey, FlowRouter, FlowRouterConfig};
use zipline_gd::GdConfig;
use zipline_traces::{FlowChunk, ManyFlowsConfig, ManyFlowsWorkload};

/// Chunks per run; small dictionary (64 identifiers) so the workload's
/// churn styles actually evict.
const CHUNKS: usize = 2048;
const BATCH_UNITS: usize = 8;

fn engine() -> EngineConfig {
    EngineConfig {
        gd: GdConfig::for_parameters(8, 6).unwrap(),
        shards: 4,
        workers: 2,
        spawn: SpawnPolicy::Auto,
    }
}

/// The interleaved tenant-tagged workload, materialized once per flow
/// count so iteration cost stays out of the measurement.
fn interleaving(flows: usize) -> Vec<FlowChunk> {
    let mut config = ManyFlowsConfig::small();
    config.tenants = flows.min(4);
    config.flows = flows;
    config.chunks = CHUNKS;
    ManyFlowsWorkload::new(config).events().collect()
}

fn bench_multi_tenant(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_tenant");

    // Baseline: the same byte volume through one dedicated pipelined
    // stream, no routing layer at all.
    let chunks = interleaving(1);
    let total: u64 = chunks.iter().map(|chunk| chunk.bytes.len() as u64).sum();
    group.throughput(Throughput::Bytes(total));
    group.bench_function("single_stream", |b| {
        b.iter(|| {
            let engine = EngineBuilder::new()
                .config(engine())
                .live_sync(true)
                .pipelined(2)
                .build()
                .unwrap();
            let mut wire = 0u64;
            let mut stream = PipelinedStream::new(engine, BATCH_UNITS, |_, bytes: &[u8]| {
                wire += bytes.len() as u64;
            })
            .unwrap();
            for chunk in &chunks {
                stream.push_record(black_box(&chunk.bytes)).unwrap();
            }
            stream.finish().unwrap();
            black_box(wire)
        })
    });

    // The router at increasing flow counts over the same total volume.
    for flows in [1usize, 8, 32] {
        let chunks = interleaving(flows);
        let keys: Vec<FlowKey> = {
            let mut config = ManyFlowsConfig::small();
            config.tenants = flows.min(4);
            config.flows = flows;
            config.chunks = CHUNKS;
            ManyFlowsWorkload::new(config)
                .keys()
                .into_iter()
                .map(|(tenant, flow)| FlowKey::new(tenant, flow))
                .collect()
        };
        let total: u64 = chunks.iter().map(|chunk| chunk.bytes.len() as u64).sum();
        group.throughput(Throughput::Bytes(total));
        group.bench_function(format!("router_f{flows}"), |b| {
            b.iter(|| {
                let mut config = FlowRouterConfig::new(engine());
                config.batch_units = BATCH_UNITS;
                let mut router: FlowRouter = FlowRouter::new(config).unwrap();
                for &key in &keys {
                    router.open_flow(key, 0).unwrap();
                }
                let mut wire = 0u64;
                for chunk in &chunks {
                    router
                        .push(
                            FlowKey::new(chunk.tenant, chunk.flow),
                            black_box(&chunk.bytes),
                        )
                        .unwrap();
                    for event in router.drain_events() {
                        wire += event_bytes(&event);
                    }
                }
                for &key in &keys {
                    router.end_flow(key).unwrap();
                }
                for event in router.drain_events() {
                    wire += event_bytes(&event);
                }
                black_box(wire)
            })
        });
    }
    group.finish();
}

fn event_bytes(event: &zipline_flow::FlowEvent) -> u64 {
    match event {
        zipline_flow::FlowEvent::Payload { bytes, .. } => bytes.len() as u64,
        zipline_flow::FlowEvent::Control { .. } => 1,
    }
}

criterion_group!(benches, bench_multi_tenant);
criterion_main!(benches);
