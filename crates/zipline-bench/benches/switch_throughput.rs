//! Figure 4 counterpart bench: software packet-processing rate of the switch
//! programs.
//!
//! On the hardware target the forwarding rate is the port line rate
//! regardless of the program (the figure's point); in this reproduction the
//! analogous measurement is the per-packet processing cost of the three
//! programs, which determines how fast the discrete-event simulation can
//! replay traces. The bar to watch is that encode/decode stay within a small
//! factor of plain forwarding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use zipline::decoder::{DecoderConfig, ZipLineDecodeProgram};
use zipline::encoder::{EncoderConfig, ZipLineEncodeProgram};
use zipline_net::ethernet::EthernetFrame;
use zipline_net::mac::MacAddress;
use zipline_net::time::SimTime;
use zipline_switch::packet_ctx::PacketContext;
use zipline_switch::program::{L2ForwardingProgram, PipelineProgram};

fn raw_frame(wire_size: usize) -> EthernetFrame {
    EthernetFrame::test_frame(MacAddress::local(2), MacAddress::local(1), wire_size, 0xA5)
}

fn bench_per_packet_processing(c: &mut Criterion) {
    // zipline-lint: allow(L003): paper figure-4 switch study, run manually, not a CI-gated perf path
    let mut group = c.benchmark_group("switch_program_per_packet");
    group.throughput(Throughput::Elements(1));

    for &size in &[64usize, 1500, 9000] {
        let frame = raw_frame(size);

        // No op.
        let mut noop = L2ForwardingProgram::two_port_wire();
        group.bench_with_input(BenchmarkId::new("noop", size), &size, |b, _| {
            b.iter(|| {
                let mut ctx = PacketContext::new(0, black_box(frame.clone()));
                noop.ingress(&mut ctx, SimTime::ZERO);
                black_box(ctx.egress_port)
            })
        });

        // Encode.
        let mut encoder = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
        encoder
            .preload_static_table(std::iter::once(frame.payload.clone()))
            .unwrap();
        group.bench_with_input(BenchmarkId::new("encode", size), &size, |b, _| {
            b.iter(|| {
                let mut ctx = PacketContext::new(0, black_box(frame.clone()));
                encoder.ingress(&mut ctx, SimTime::ZERO);
                black_box(ctx.frame.payload.len())
            })
        });

        // Decode (of the frame the encoder produced).
        let encoded_frame = {
            let mut ctx = PacketContext::new(0, frame.clone());
            encoder.ingress(&mut ctx, SimTime::ZERO);
            ctx.frame
        };
        let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
        for (id, basis) in encoder.control_plane().dictionary().iter() {
            decoder
                .install_mapping(id, basis.to_bytes(), SimTime::ZERO)
                .unwrap();
        }
        group.bench_with_input(BenchmarkId::new("decode", size), &size, |b, _| {
            b.iter(|| {
                let mut ctx = PacketContext::new(0, black_box(encoded_frame.clone()));
                decoder.ingress(&mut ctx, SimTime::ZERO);
                black_box(ctx.frame.payload.len())
            })
        });
    }
    group.finish();
}

fn bench_end_to_end_simulation_rate(c: &mut Criterion) {
    // Whole Figure 4 cell (generator + switch + capture in the DES), to track
    // the cost of regenerating the figure.
    use zipline::experiment::throughput::{run_one, SwitchOperation, ThroughputExperimentConfig};
    let config = ThroughputExperimentConfig {
        frames_per_run: 5_000,
        ..ThroughputExperimentConfig::paper_default()
    };
    // zipline-lint: allow(L003): paper figure-4 switch study, run manually, not a CI-gated perf path
    let mut group = c.benchmark_group("figure4_single_cell_simulation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(config.frames_per_run));
    for op in SwitchOperation::all() {
        group.bench_with_input(BenchmarkId::new("op", op.label()), &op, |b, &op| {
            b.iter(|| black_box(run_one(&config, op, 1500).unwrap()))
        });
    }
    group.finish();
}

/// PR-1 comparison group at the stream level: the word-parallel batch
/// compressor (`compress_batch`, scratch reuse) vs the per-chunk loop it
/// replaced, over one jumbo frame's worth of sensor-style chunks.
fn bench_stream_compressor_batch_vs_per_chunk(c: &mut Criterion) {
    use zipline_gd::GdCompressor;
    let config = zipline_gd::GdConfig::paper_default();
    let mut data = Vec::new();
    for i in 0..(9000 / config.chunk_bytes) as u32 {
        let mut chunk = vec![0u8; config.chunk_bytes];
        chunk[0] = (i % 6) as u8;
        chunk[8] = 0xA5;
        if i % 5 == 0 {
            chunk[20] ^= 0x10; // near-duplicate noise
        }
        data.extend_from_slice(&chunk);
    }

    // zipline-lint: allow(L003): paper figure-4 switch study, run manually, not a CI-gated perf path
    let mut group = c.benchmark_group("stream_compressor_9000B");
    group.throughput(Throughput::Bytes(data.len() as u64));
    // The compressors live outside the measurement so the dictionary build
    // cost is excluded; after the first iteration every basis is known and
    // the loop measures steady-state (all-Ref) compression.
    group.bench_function("per_chunk_loop", |b| {
        let mut compressor = GdCompressor::new(&config).unwrap();
        b.iter(|| {
            let mut records = Vec::new();
            for chunk in data.chunks_exact(config.chunk_bytes) {
                records.push(compressor.compress_chunk(black_box(chunk)).unwrap());
            }
            black_box(records)
        })
    });
    group.bench_function("batch", |b| {
        let mut compressor = GdCompressor::new(&config).unwrap();
        b.iter(|| black_box(compressor.compress_batch(black_box(&data)).unwrap()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_per_packet_processing,
    bench_stream_compressor_batch_vs_per_chunk,
    bench_end_to_end_simulation_rate,
);
criterion_main!(benches);
