//! Baseline benches: throughput of the from-scratch DEFLATE/gzip
//! implementation used as the Figure 3 comparison point, at each level and
//! on both evaluation workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use zipline_deflate::Level;
use zipline_traces::dns::{DnsWorkload, DnsWorkloadConfig};
use zipline_traces::sensor::{SensorWorkload, SensorWorkloadConfig};
use zipline_traces::ChunkWorkload;

fn dataset(workload: &dyn ChunkWorkload) -> Vec<u8> {
    let mut file = Vec::new();
    for chunk in workload.chunks() {
        file.extend_from_slice(&chunk);
    }
    file
}

fn bench_gzip_levels(c: &mut Criterion) {
    let sensor = dataset(&SensorWorkload::new(SensorWorkloadConfig {
        chunks: 8_000,
        sensors: 64,
        readings_per_sensor: 5,
        ..SensorWorkloadConfig::paper_scale()
    }));
    let dns = dataset(&DnsWorkload::new(DnsWorkloadConfig {
        queries: 8_000,
        distinct_names: 500,
        ..DnsWorkloadConfig::small()
    }));

    for (name, data) in [("sensor", &sensor), ("dns", &dns)] {
        // zipline-lint: allow(L003): expands to gzip_baseline_sensor / gzip_baseline_dns; manual comparison baselines, not CI-gated
        let mut group = c.benchmark_group(format!("gzip_baseline_{name}"));
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.sample_size(20);
        for level in [Level::Fast, Level::Default, Level::Best] {
            group.bench_with_input(
                BenchmarkId::new("compress", format!("{level:?}")),
                &level,
                |b, &level| {
                    b.iter(|| black_box(zipline_deflate::gzip_compress(black_box(data), level)))
                },
            );
        }
        let compressed = zipline_deflate::gzip_compress(data, Level::Default);
        group.bench_function("decompress_default", |b| {
            b.iter(|| black_box(zipline_deflate::gzip_decompress(black_box(&compressed)).unwrap()))
        });
        group.finish();
    }
}

criterion_group!(benches, bench_gzip_levels);
criterion_main!(benches);
