//! PR-5 bench: pipelined vs synchronous ingest on a producer-consumer
//! workload.
//!
//! The scenario the pipeline exists for: a producer generates records with
//! non-trivial per-record cost (here a word-mixing pass standing in for NIC
//! ingest work — checksumming, parsing, copying out of a ring), and the
//! engine compresses them. Synchronously, producer and engine take turns;
//! pipelined, the producer fills the next batch while the engine worker
//! compresses the previous one, so on a multi-core host wall-clock
//! approaches `max(produce, compress)` instead of their sum.
//!
//! On a single-core host (such as the CI container) [`SpawnPolicy::Auto`]
//! degrades the pipelined stream to inline execution: the numbers then
//! measure the pipeline's bookkeeping overhead over `EngineStream`, which
//! must stay within jitter of the `sync_stream` baseline — that is the
//! regression the committed `BENCH_PR5.json` baseline tracks. The `_d<N>`
//! suffix is the pipeline depth (batches in flight before ingest blocks).
//!
//! Snapshots are committed as `BENCH_PR5.json` (regenerate with
//! `BENCH_JSON=bench.jsonl cargo bench -p zipline-bench --bench pipelined_ingest`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use zipline_engine::{
    CompressionEngine, EngineBuilder, EngineStream, GdBackend, PipelinedStream, SpawnPolicy,
};
use zipline_gd::GdConfig;

/// Records per stream run and bytes per record (4 chunks each).
const RECORDS: usize = 256;
const RECORD_BYTES: usize = 128;

/// Simulated per-record producer cost: an xor-rotate mixing pass over the
/// record, cheap enough to stay realistic for NIC-adjacent work but heavy
/// enough that overlapping it with compression is worth a thread.
fn produce_record(seed: u64, out: &mut [u8; RECORD_BYTES]) {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for (i, byte) in out.iter_mut().enumerate() {
        // Sensor-style redundancy: most bytes repeat across records so the
        // dictionary deduplicates, with a little keyed noise.
        state = state.rotate_left(7) ^ (i as u64);
        *byte = if i % 32 < 28 {
            (i % 32) as u8
        } else {
            (state & 0x03) as u8
        };
    }
}

fn builder(depth: Option<usize>) -> EngineBuilder {
    let builder = EngineBuilder::new()
        .gd(GdConfig::paper_default())
        .shards(8)
        .workers(4)
        .spawn(SpawnPolicy::Auto);
    match depth {
        Some(depth) => builder.pipelined(depth),
        None => builder,
    }
}

fn bench_pipelined_ingest(c: &mut Criterion) {
    let total_bytes = (RECORDS * RECORD_BYTES) as u64;
    let mut group = c.benchmark_group("pipelined_ingest");
    group.throughput(Throughput::Bytes(total_bytes));

    // Baseline: the synchronous stream with the same producer inline.
    let mut engine = builder(None).build().unwrap();
    group.bench_function("sync_stream", |b| {
        b.iter(|| {
            let mut wire = 0u64;
            let mut stream = EngineStream::new(&mut engine, 64, |_, bytes| {
                wire += bytes.len() as u64;
            });
            let mut record = [0u8; RECORD_BYTES];
            for i in 0..RECORDS {
                produce_record(i as u64, &mut record);
                stream.push_record(black_box(&record)).unwrap();
            }
            stream.finish().unwrap();
            black_box(wire)
        })
    });

    // Pipelined at several depths. The engine is threaded through an Option
    // because the stream owns it for the duration of each run.
    for depth in [1usize, 2, 4] {
        let mut slot: Option<CompressionEngine<GdBackend>> =
            Some(builder(Some(depth)).build().unwrap());
        group.bench_function(format!("pipelined_d{depth}"), |b| {
            b.iter(|| {
                let engine = slot.take().expect("engine returned by finish");
                let mut wire = 0u64;
                let mut stream = PipelinedStream::new(engine, 64, |_, bytes: &[u8]| {
                    wire += bytes.len() as u64;
                })
                .unwrap();
                let mut record = [0u8; RECORD_BYTES];
                for i in 0..RECORDS {
                    produce_record(i as u64, &mut record);
                    stream.push_record(black_box(&record)).unwrap();
                }
                let (engine, _summary) = stream.finish().unwrap();
                slot = Some(engine);
                black_box(wire)
            })
        });
    }

    // The producer alone, for reading the overlap headroom off the report:
    // pipelined wall-clock can at best approach max(producer, sync - producer).
    group.bench_function("producer_only", |b| {
        b.iter(|| {
            let mut record = [0u8; RECORD_BYTES];
            let mut acc = 0u64;
            for i in 0..RECORDS {
                produce_record(i as u64, &mut record);
                acc = acc.wrapping_add(record[0] as u64);
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipelined_ingest);
criterion_main!(benches);
