//! PR-6 bench: the durable store's two costs — journaling on the hot
//! path and rehydration on restart.
//!
//! * `in_memory_stream` vs `durable_stream`: the same churn-heavy stream
//!   through `EngineStream` without and with a backing [`EngineStore`].
//!   The delta is the full commit-then-emit price (staging the batch,
//!   CRC-framing frame/control/delta/checkpoint records, two buffered
//!   flushes per batch). `finish` compacts the store, so the on-disk logs
//!   stay bounded across iterations and every iteration pays the same
//!   write pattern.
//! * `rehydrate_checkpoint`: `EngineStore::open` on a compacted store —
//!   the warm-restart path (parse, CRC-check, rebuild a 64-entry
//!   dictionary from its checkpoint).
//! * `rehydrate_fold`: `EngineStore::open` on a crashed store with *no*
//!   usable checkpoint — recovery replays the whole delta journal, the
//!   worst-case restart.
//!
//! Snapshots are committed as `BENCH_PR6.json` (regenerate with
//! `BENCH_JSON=bench.jsonl cargo bench -p zipline-bench --bench recovery`).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::path::PathBuf;
use zipline_engine::{
    CompressionEngine, EngineBuilder, EngineStore, EngineStream, GdBackend, SpawnPolicy,
};
use zipline_gd::config::GdConfig;
use zipline_traces::{ChurnWorkload, ChurnWorkloadConfig};

/// Chunks per committed batch.
const BATCH_UNITS: usize = 64;

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "zipline-bench-recovery-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// 64-identifier engine matched to the churn workload below; live sync on
/// so the journal carries control records too (the realistic shape).
fn builder() -> EngineBuilder {
    EngineBuilder::new()
        .gd(GdConfig::for_parameters(8, 6).unwrap())
        .shards(4)
        .workers(2)
        .spawn(SpawnPolicy::Inline)
        .live_sync(true)
}

/// Twice as many distinct bases as identifiers, each repeated twice:
/// every batch learns, evicts and emits — the store journals all of it.
fn churny_data() -> Vec<u8> {
    ChurnWorkload::new(ChurnWorkloadConfig::exceeding_capacity(64, 2, 32)).bytes()
}

fn run_stream(engine: &mut CompressionEngine<GdBackend>, data: &[u8]) -> u64 {
    let mut wire = 0u64;
    let mut stream = EngineStream::new(engine, BATCH_UNITS, |_, bytes| {
        wire += bytes.len() as u64;
    });
    stream.push_record(black_box(data)).unwrap();
    stream.finish().unwrap();
    wire
}

fn bench_recovery(c: &mut Criterion) {
    let data = churny_data();
    let mut group = c.benchmark_group("recovery");
    group.throughput(Throughput::Bytes(data.len() as u64));

    // Baseline: the same stream with no store attached.
    let mut plain = builder().build().unwrap();
    group.bench_function("in_memory_stream", |b| {
        b.iter(|| black_box(run_stream(&mut plain, &data)))
    });

    // Journaled: every batch commits to disk before the sinks see a byte.
    // The default cadence of 1 writes a full-state checkpoint per batch
    // (bit-exact recovery); cadence 8 amortizes it to deltas-plus-fold.
    let durable_dir = bench_dir("stream");
    let mut durable = builder().durable(durable_dir.clone()).build().unwrap();
    group.bench_function("durable_stream", |b| {
        b.iter(|| black_box(run_stream(&mut durable, &data)))
    });
    drop(durable);
    let sparse_dir = bench_dir("stream-c8");
    let mut sparse = builder()
        .durable(sparse_dir.clone())
        .checkpoint_cadence(8)
        .build()
        .unwrap();
    group.bench_function("durable_stream_cadence8", |b| {
        b.iter(|| black_box(run_stream(&mut sparse, &data)))
    });
    drop(sparse);

    // Warm restart off a compacted store: one checkpoint, no fold.
    let checkpoint_dir = bench_dir("checkpoint");
    let mut seeded = builder().durable(checkpoint_dir.clone()).build().unwrap();
    run_stream(&mut seeded, &data);
    drop(seeded);
    group.bench_function("rehydrate_checkpoint", |b| {
        b.iter(|| {
            let (store, warm) = EngineStore::open(&checkpoint_dir).unwrap();
            black_box(warm.expect("store is warm").dictionary.delta_seq);
            drop(store);
        })
    });

    // Worst-case restart: the writer died mid-stream with the checkpoint
    // cadence starved, so open() folds the full delta journal.
    let fold_dir = bench_dir("fold");
    let mut crashed = builder()
        .durable(fold_dir.clone())
        .checkpoint_cadence(u64::MAX)
        .build()
        .unwrap();
    {
        let mut stream = EngineStream::new(&mut crashed, BATCH_UNITS, |_, _| {});
        stream.push_record(&data).unwrap();
        // No finish: the store keeps its raw journal, checkpoint-free.
    }
    drop(crashed);
    group.bench_function("rehydrate_fold", |b| {
        b.iter(|| {
            let (store, warm) = EngineStore::open(&fold_dir).unwrap();
            let warm = warm.expect("store is warm");
            assert!(!warm.exact, "fold path must be the one measured");
            black_box(warm.dictionary.delta_seq);
            drop(store);
        })
    });

    group.finish();
    for dir in [durable_dir, sparse_dir, checkpoint_dir, fold_dir] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
