//! PR-4 backend matrix: the generic engine driving GD, deflate and
//! passthrough on the 9000 B stream workload (one jumbo frame's worth of
//! sensor-style chunks — the same workload as `stream_compressor_9000B` in
//! `switch_throughput.rs` and the `engine_scaling` grid).
//!
//! Every backend runs through the *same* `CompressionEngine<B>::compress_batch`
//! entry point, so the numbers expose backend cost, not harness skew:
//!
//! * `gd_s8_w4` — the sharded GD backend at the paper shape (steady state:
//!   after the first iteration every basis is known);
//! * `deflate_default` / `deflate_fast` — one gzip member per batch via
//!   `zipline-deflate`'s recycled-scratch entry points;
//! * `passthrough` — the copy floor (memcpy plus accounting).
//!
//! Single-core container: compare against the committed `BENCH_PR4.json`
//! baselines, not wall-clock claims. Regenerate with
//! `BENCH_JSON=bench.jsonl cargo bench -p zipline-bench --bench backend_matrix`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use zipline_deflate::Level;
use zipline_engine::{
    CompressionBackend, DeflateBackend, EngineBuilder, PassthroughBackend, SpawnPolicy,
};
use zipline_gd::GdConfig;

/// One jumbo frame's worth of sensor-style chunks (matches the
/// `stream_compressor_9000B` workload of the PR-1 bench).
fn stream_9000b(config: &GdConfig) -> Vec<u8> {
    let mut data = Vec::new();
    for i in 0..(9000 / config.chunk_bytes) as u32 {
        let mut chunk = vec![0u8; config.chunk_bytes];
        chunk[0] = (i % 6) as u8;
        chunk[8] = 0xA5;
        if i % 5 == 0 {
            chunk[20] ^= 0x10; // near-duplicate noise
        }
        data.extend_from_slice(&chunk);
    }
    data
}

fn bench_backend_matrix(c: &mut Criterion) {
    let gd = GdConfig::paper_default();
    let data = stream_9000b(&gd);

    let mut group = c.benchmark_group("backend_matrix");
    group.throughput(Throughput::Bytes(data.len() as u64));

    let mut gd_engine = EngineBuilder::new()
        .shards(8)
        .workers(4)
        .spawn(SpawnPolicy::Auto)
        .build()
        .unwrap();
    group.bench_function("gd_s8_w4", |b| {
        b.iter(|| black_box(gd_engine.compress_batch(black_box(&data)).unwrap()))
    });

    for (name, level) in [
        ("deflate_default", Level::Default),
        ("deflate_fast", Level::Fast),
    ] {
        let mut engine = EngineBuilder::new()
            .backend(DeflateBackend::new(level))
            .build()
            .unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let member = engine.compress_batch(black_box(&data)).unwrap();
                let len = member.len();
                // Hand the member back to the backend's scratch pool, as the
                // stream front-end would.
                engine
                    .backend_mut()
                    .emit_batch(member, &mut |_, _| {})
                    .unwrap();
                black_box(len)
            })
        });
    }

    let mut floor = EngineBuilder::new()
        .backend(PassthroughBackend::new())
        .build()
        .unwrap();
    group.bench_function("passthrough", |b| {
        b.iter(|| {
            let batch = floor.compress_batch(black_box(&data)).unwrap();
            let len = batch.len();
            floor
                .backend_mut()
                .emit_batch(batch, &mut |_, _| {})
                .unwrap();
            black_box(len)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_backend_matrix);
criterion_main!(benches);
