//! PR-3 churn bench: live decoder sync on a capacity-exceeding stream.
//!
//! The workload cycles through 4× more distinct bases than the dictionary
//! holds (64 identifiers, 32-byte chunks), each basis appearing twice — the
//! regime where identifiers are constantly evicted and recycled and the
//! snapshot-only decoder sync of PR 2 silently aliased earlier frames. The
//! groups measure what the fix costs:
//!
//! * `engine_batch` — raw engine compression of the churny stream (no
//!   streaming front-end), the floor;
//! * `snapshot_stream` — `EngineStream` without live sync plus one post-hoc
//!   snapshot per run (the old, incorrect-under-churn protocol);
//! * `live_sync_stream` — `EngineStream` with the update journal drained and
//!   every install/evict handed to a control sink (the correct protocol);
//! * `live_sync_frames` — the full `EngineHostPath`, control frames
//!   serialized in-band through `EngineControlPlane`.
//!
//! Single-core container: compare against the committed `BENCH_PR3.json`
//! baselines, not wall-clock claims. Regenerate with
//! `BENCH_JSON=bench.jsonl cargo bench -p zipline-bench --bench dictionary_churn`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use zipline::host::{EngineHostPath, HostPathConfig};
use zipline_engine::{CompressionEngine, EngineConfig, EngineStream, SpawnPolicy};
use zipline_gd::GdConfig;
use zipline_traces::{ChurnWorkload, ChurnWorkloadConfig};

/// 64 identifiers, 32-byte chunks: small enough that the workload below
/// recycles identifiers continuously.
fn churny_gd() -> GdConfig {
    GdConfig::for_parameters(8, 6).unwrap()
}

fn engine_config(gd: GdConfig) -> EngineConfig {
    EngineConfig {
        gd,
        shards: 4,
        workers: 4,
        spawn: SpawnPolicy::Auto,
    }
}

fn bench_dictionary_churn(c: &mut Criterion) {
    let gd = churny_gd();
    // 4x the identifier space of distinct bases, each twice in a row: the
    // second appearance compresses to a `Ref` whose identifier is evicted
    // soon after (the shared `zipline_traces::churn` fixture).
    let data = ChurnWorkload::new(ChurnWorkloadConfig::exceeding_capacity(
        gd.dictionary_capacity(),
        4,
        gd.chunk_bytes,
    ))
    .bytes();

    let mut group = c.benchmark_group("dictionary_churn");
    group.throughput(Throughput::Bytes(data.len() as u64));

    // Floor: the engine alone on the churny stream.
    let mut engine = CompressionEngine::new(engine_config(gd)).unwrap();
    group.bench_function("engine_batch", |b| {
        b.iter(|| black_box(engine.compress_batch(black_box(&data)).unwrap()))
    });

    // The PR-2 protocol: stream + one post-hoc snapshot (wrong under churn;
    // benchmarked as the cost baseline the live path is compared against).
    let mut engine = CompressionEngine::new(engine_config(gd)).unwrap();
    group.bench_function("snapshot_stream", |b| {
        b.iter(|| {
            let mut sink_bytes = 0u64;
            let mut stream = EngineStream::new(&mut engine, 64, |_, bytes: &[u8]| {
                sink_bytes += bytes.len() as u64;
            });
            stream.push_record(black_box(&data)).unwrap();
            let summary = stream.finish().unwrap();
            black_box((summary, engine.snapshot(), sink_bytes))
        })
    });

    // The PR-3 protocol: update journal drained per batch, every event
    // handed to the control sink interleaved with the payloads.
    let mut engine = CompressionEngine::new(engine_config(gd)).unwrap();
    engine.set_live_sync(true);
    group.bench_function("live_sync_stream", |b| {
        b.iter(|| {
            let mut sink_bytes = 0u64;
            let mut updates = 0u64;
            let mut stream = EngineStream::with_control_sink(
                &mut engine,
                64,
                |_, bytes: &[u8]| sink_bytes += bytes.len() as u64,
                Some(|_: &zipline_engine::DictionaryUpdate| updates += 1),
            );
            stream.push_record(black_box(&data)).unwrap();
            let summary = stream.finish().unwrap();
            black_box((summary, sink_bytes, updates))
        })
    });

    // The full host path: control frames serialized through the
    // EngineControlPlane, in-band with the data frames.
    let mut host = EngineHostPath::new(HostPathConfig {
        engine: engine_config(gd),
        batch_chunks: 64,
        ..HostPathConfig::paper_default()
    })
    .unwrap();
    group.bench_function("live_sync_frames", |b| {
        b.iter(|| black_box(host.compress_to_frames(black_box(&data)).unwrap()))
    });

    group.finish();
}

criterion_group!(benches, bench_dictionary_churn);
criterion_main!(benches);
