//! Regenerates Table 1: generator polynomials for Hamming codes and the
//! parameter to program into a CRC-m unit.
//!
//! ```sh
//! cargo run -p zipline-bench --bin table1
//! ```

use zipline_bench::print_header;
use zipline_gd::crc::table1;
use zipline_gd::hamming::HammingCode;

fn main() {
    print_header("Table 1 — Generator polynomials for Hamming codes and parameters for a CRC-m");
    println!(
        "{:<16} {:<36} {:>12} {:>12} {:<8}",
        "Code (n, k)", "Generator polynomial", "paper CRC-m", "derived", "match"
    );
    for row in table1::ROWS {
        let derived = row.derived_crc_parameter();
        let matches = if derived == row.paper_crc_parameter {
            "yes"
        } else {
            "NO (see EXPERIMENTS.md)"
        };
        println!(
            "({:>5}, {:>5})   {:<36} {:>#12x} {:>#12x} {:<8}",
            row.n,
            row.k,
            row.generator().to_string(),
            row.paper_crc_parameter,
            derived,
            matches
        );
        // Build the code to prove the (generator, m) pair actually yields a
        // working Hamming code with unique single-error syndromes.
        let code = HammingCode::with_generator(row.m, row.generator())
            .expect("every Table 1 generator must build a valid Hamming code");
        assert_eq!(code.n(), row.n as usize);
        assert_eq!(code.k(), row.k as usize);
    }
    println!(
        "\nEvery generator is primitive and builds a Hamming code whose syndrome equals the CRC \
         of the received word; the two m = 9 parameters printed in the paper do not match their \
         polynomial column (documented in EXPERIMENTS.md)."
    );
}
