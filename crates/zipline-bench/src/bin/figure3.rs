//! Regenerates Figure 3: resulting payload size after traffic is processed
//! with Gzip and ZipLine, without, with static-, and with dynamically
//! learned compression-table mappings, for the synthetic sensor dataset and
//! the campus-DNS dataset.
//!
//! ```sh
//! cargo run --release -p zipline-bench --bin figure3          # scaled-down datasets
//! cargo run --release -p zipline-bench --bin figure3 -- --full # paper-scale datasets
//! ```

use zipline::experiment::compression::{
    run_compression_experiment, CompressionExperimentConfig, CompressionMode,
};
use zipline_bench::{format_mb, full_scale_requested, print_comparison, print_header};
use zipline_traces::dns::{DnsWorkload, DnsWorkloadConfig};
use zipline_traces::sensor::{SensorWorkload, SensorWorkloadConfig};
use zipline_traces::ChunkWorkload;

/// Paper numbers for the synthetic dataset (ratio to original).
const PAPER_SYNTHETIC: &[(CompressionMode, f64)] = &[
    (CompressionMode::Original, 1.00),
    (CompressionMode::NoTable, 1.03),
    (CompressionMode::StaticTable, 0.09),
    (CompressionMode::DynamicLearning, 0.11),
    (CompressionMode::Gzip, 0.09),
];

/// Paper numbers for the DNS dataset (static table is "n/a" in the paper).
const PAPER_DNS: &[(CompressionMode, f64)] = &[
    (CompressionMode::Original, 1.00),
    (CompressionMode::NoTable, 1.03),
    (CompressionMode::DynamicLearning, 0.10),
    (CompressionMode::Gzip, 0.08),
];

fn run_dataset(
    name: &str,
    workload: &dyn ChunkWorkload,
    modes: &[CompressionMode],
    paper: &[(CompressionMode, f64)],
    config: &CompressionExperimentConfig,
) {
    println!(
        "\n--- {name}: {} chunks of {} B ({}) ---",
        workload.total_chunks(),
        workload.chunk_len(),
        format_mb((workload.total_chunks() * workload.chunk_len()) as u64)
    );
    let results = run_compression_experiment(workload, modes, config).expect("experiment runs");
    for result in &results {
        let paper_ratio = paper
            .iter()
            .find(|(mode, _)| *mode == result.mode)
            .map(|(_, r)| format!("{r:.2}"))
            .unwrap_or_else(|| "n/a".to_string());
        print_comparison(
            &format!(
                "{:<18} {:>12}",
                result.mode.label(),
                format_mb(result.resulting_bytes)
            ),
            &paper_ratio,
            &format!("{:.2}", result.ratio),
        );
    }
}

fn main() {
    let full = full_scale_requested();
    print_header("Figure 3 — Resulting payload size (ratios are relative to the original data)");
    if !full {
        println!("(scaled-down datasets; pass --full for the paper-scale 3 124 000-chunk run)");
    }

    // The scaled-down datasets keep the paper's chunks-per-basis ratio
    // (~120 : 1) so the dynamic-learning overhead is amortized the same way
    // as in the full-size run.
    let sensor_config = if full {
        SensorWorkloadConfig::paper_scale()
    } else {
        SensorWorkloadConfig {
            chunks: 150_000,
            sensors: 256,
            readings_per_sensor: 5,
            ..SensorWorkloadConfig::paper_scale()
        }
    };
    let dns_config = if full {
        DnsWorkloadConfig::paper_scale()
    } else {
        DnsWorkloadConfig {
            queries: 100_000,
            distinct_names: 1_000,
            ..DnsWorkloadConfig::paper_scale()
        }
    };

    let experiment_config = if full {
        CompressionExperimentConfig::paper_default()
    } else {
        // Scaling the dataset down by ~20x while keeping the 1.77 ms learning
        // delay would inflate the per-basis learning overhead; scale the
        // replay rate down too so the number of packets racing each learning
        // round trip stays proportional (see EXPERIMENTS.md).
        let mut cfg = CompressionExperimentConfig::paper_default();
        cfg.deployment.max_packets_per_second = Some(250_000.0);
        cfg
    };

    let sensor_workload = SensorWorkload::new(sensor_config);
    run_dataset(
        "Synthetic dataset",
        &sensor_workload,
        &CompressionMode::all(),
        PAPER_SYNTHETIC,
        &experiment_config,
    );

    // The DNS traffic is not known in advance, so the static-table scenario
    // is n/a — exactly as in the paper.
    let dns_modes = [
        CompressionMode::Original,
        CompressionMode::NoTable,
        CompressionMode::DynamicLearning,
        CompressionMode::Gzip,
    ];
    let dns_workload = DnsWorkload::new(dns_config);
    run_dataset(
        "DNS queries",
        &dns_workload,
        &dns_modes,
        PAPER_DNS,
        &experiment_config,
    );

    println!(
        "\nShape to check: no-table ≈ 1.03 (padding overhead), static ≈ 0.09, dynamic slightly \
         above static, gzip within ~20 % of ZipLine."
    );
}
