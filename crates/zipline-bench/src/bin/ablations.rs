//! Ablation study over the design choices DESIGN.md calls out: the Hamming
//! parameter `m`, the identifier width, the control-plane learning latency
//! and the eviction policy. Prints compression-ratio tables in the style of
//! Figure 3 so the trade-offs are directly comparable with the paper's
//! chosen operating point (m = 8, 15-bit identifiers, ~1.77 ms learning).
//!
//! ```sh
//! cargo run --release -p zipline-bench --bin ablations
//! ```

use zipline::experiment::compression::{
    run_compression_experiment, CompressionExperimentConfig, CompressionMode,
};
use zipline_bench::print_header;
use zipline_gd::codec::ChunkCodec;
use zipline_gd::dictionary::{BasisDictionary, EvictionPolicy};
use zipline_gd::GdConfig;
use zipline_net::time::SimDuration;
use zipline_traces::sensor::{SensorWorkload, SensorWorkloadConfig};
use zipline_traces::ChunkWorkload;

fn workload(canonical_m: u32) -> SensorWorkload {
    SensorWorkload::new(SensorWorkloadConfig {
        chunks: 40_000,
        sensors: 128,
        readings_per_sensor: 5,
        canonical_m: Some(canonical_m),
        ..SensorWorkloadConfig::paper_scale()
    })
}

/// Sweep of the Hamming parameter m: smaller m means a larger share of every
/// chunk is carried verbatim (worse ratio), larger m means fewer, longer
/// chunks per packet.
fn ablation_m() {
    print_header("Ablation 1 — Hamming parameter m (static-table ratio, 32-byte payload chunks)");
    println!(
        "{:>4} {:>8} {:>8} {:>12} {:>16} {:>12}",
        "m", "n", "k", "chunk [B]", "type-3 size [B]", "ratio"
    );
    for m in [4u32, 6, 8, 10, 12] {
        // Keep 32-byte payloads; chunks larger than the payload are skipped.
        let config = GdConfig::for_parameters(m, 15).unwrap();
        if config.chunk_bytes > 32 {
            println!(
                "{m:>4} {:>8} {:>8} {:>12} {:>16} {:>12}",
                config.n(),
                config.k(),
                config.chunk_bytes,
                "-",
                "payload too small"
            );
            continue;
        }
        // With a static table the whole payload compresses to: one type-3
        // header per chunk plus the payload bytes not covered by chunks.
        let chunks_per_payload = 32 / config.chunk_bytes;
        let leftover = 32 - chunks_per_payload * config.chunk_bytes;
        let compressed = chunks_per_payload * config.compressed_payload_bytes() + leftover;
        println!(
            "{m:>4} {:>8} {:>8} {:>12} {:>16} {:>12.3}",
            config.n(),
            config.k(),
            config.chunk_bytes,
            compressed,
            compressed as f64 / 32.0
        );
    }
    println!("(the paper picks m = 8: the largest multiple of 8 that fits the hardware)\n");
}

/// Sweep of the identifier width: how many bases fit before eviction starts
/// hurting, measured on a workload with ~640 distinct bases.
fn ablation_id_bits() {
    print_header("Ablation 2 — identifier width (dictionary capacity vs distinct bases)");
    let workload = workload(8);
    let distinct = workload.config().distinct_patterns();
    println!(
        "workload: {} chunks, {} distinct bases",
        workload.total_chunks(),
        distinct
    );
    println!(
        "{:>8} {:>10} {:>14} {:>10}",
        "id bits", "capacity", "evictions", "hit rate"
    );
    for id_bits in [7u32, 9, 11, 15] {
        let config = GdConfig {
            id_bits,
            ..GdConfig::paper_default()
        };
        let codec = ChunkCodec::new(&config).unwrap();
        let mut dictionary = BasisDictionary::with_id_bits(id_bits);
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut clock = 0u64;
        for chunk in workload.chunks() {
            clock += 1;
            let basis = codec.encode_chunk(&chunk).unwrap().basis;
            if dictionary.lookup_basis(&basis, clock, true).is_some() {
                hits += 1;
            } else {
                misses += 1;
                dictionary.insert(basis, clock).unwrap();
            }
        }
        println!(
            "{:>8} {:>10} {:>14} {:>9.1}%",
            id_bits,
            dictionary.capacity(),
            dictionary.evictions(),
            100.0 * hits as f64 / (hits + misses) as f64
        );
    }
    println!("(the paper picks 15 bits = 32 768 cached bases, one below a byte multiple)\n");
}

/// Sweep of the control-plane learning latency: the dynamic-learning ratio
/// degrades as the control plane slows down — the trade-off behind the
/// paper's decision to move basis management off the data plane.
fn ablation_learning_latency() {
    print_header("Ablation 3 — control-plane learning latency (dynamic-learning ratio)");
    let workload = workload(8);
    println!(
        "{:>22} {:>12} {:>14}",
        "per-switch latency", "ratio", "uncompressed"
    );
    for latency_us in [0u64, 50, 590, 2_000] {
        let mut config = CompressionExperimentConfig::paper_default();
        config.deployment.control_plane_latency = SimDuration::from_micros(latency_us);
        config.deployment.max_packets_per_second = Some(250_000.0);
        let results =
            run_compression_experiment(&workload, &[CompressionMode::DynamicLearning], &config)
                .unwrap();
        let r = &results[0];
        println!(
            "{:>19} µs {:>12.3} {:>14}",
            latency_us, r.ratio, r.uncompressed_chunks
        );
    }
    println!("(0 µs approximates the abandoned all-data-plane design; 590 µs × 3 hops ≈ the paper's 1.77 ms)\n");
}

/// LRU vs FIFO identifier recycling on a working set slightly larger than
/// the dictionary.
fn ablation_eviction_policy() {
    print_header("Ablation 4 — eviction policy under dictionary pressure");
    let workload = SensorWorkload::new(SensorWorkloadConfig {
        chunks: 40_000,
        sensors: 96,
        readings_per_sensor: 6, // 576 bases
        ..SensorWorkloadConfig::paper_scale()
    });
    let config = GdConfig::paper_default();
    let codec = ChunkCodec::new(&config).unwrap();
    println!(
        "workload: {} distinct bases, dictionary capacity 512",
        workload.config().distinct_patterns()
    );
    println!("{:>8} {:>14} {:>10}", "policy", "evictions", "hit rate");
    for (label, policy) in [("LRU", EvictionPolicy::Lru), ("FIFO", EvictionPolicy::Fifo)] {
        let mut dictionary = BasisDictionary::with_policy(512, policy, None);
        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut clock = 0u64;
        for chunk in workload.chunks() {
            clock += 1;
            let basis = codec.encode_chunk(&chunk).unwrap().basis;
            if dictionary.lookup_basis(&basis, clock, true).is_some() {
                hits += 1;
            } else {
                misses += 1;
                dictionary.insert(basis, clock).unwrap();
            }
        }
        println!(
            "{:>8} {:>14} {:>9.1}%",
            label,
            dictionary.evictions(),
            100.0 * hits as f64 / (hits + misses) as f64
        );
    }
    println!("(the paper uses LRU, implemented with TNA's per-entry TTLs)");
}

fn main() {
    ablation_m();
    ablation_id_bits();
    ablation_learning_latency();
    ablation_eviction_policy();
}
