//! Regenerates Figure 4: observed network throughput in Gbit/s and Mpkt/s
//! with the switch performing no operation, encoding or decoding, for 64 B,
//! 1500 B and 9000 B Ethernet frames.
//!
//! ```sh
//! cargo run --release -p zipline-bench --bin figure4
//! cargo run --release -p zipline-bench --bin figure4 -- --full   # longer runs
//! ```

use zipline::experiment::throughput::{
    run_throughput_experiment, SwitchOperation, ThroughputExperimentConfig,
};
use zipline_bench::{full_scale_requested, print_header};

fn main() {
    print_header("Figure 4 — Observed network throughput (Gbit/s and Mpkt/s)");
    let config = ThroughputExperimentConfig {
        frames_per_run: if full_scale_requested() {
            2_000_000
        } else {
            100_000
        },
        ..ThroughputExperimentConfig::paper_default()
    };
    println!(
        "generator: {} frames per run, capped at {} Mpkt/s (the paper's software generator limit)\n",
        config.frames_per_run,
        config.max_packets_per_second.unwrap_or(f64::INFINITY) / 1e6
    );

    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>10}",
        "op", "frame [B]", "Gbit/s", "Mpkt/s", "dropped"
    );
    let results = run_throughput_experiment(&config).expect("throughput experiment");
    for r in &results {
        println!(
            "{:<8} {:>10} {:>12.1} {:>12.2} {:>10}",
            r.operation.label(),
            r.frame_size,
            r.gbps,
            r.mpps,
            r.frames_dropped
        );
    }

    // The paper's claims, made explicit.
    let noop_64 = results
        .iter()
        .find(|r| r.operation == SwitchOperation::NoOp && r.frame_size == 64)
        .expect("measured");
    println!(
        "\npaper: 64 B and 1500 B runs are bottlenecked around 7 Mpkt/s by the traffic generator \
         (measured: {:.2} Mpkt/s); 9000 B frames reach line rate; encode/decode never lower the \
         rate relative to no-op.",
        noop_64.mpps
    );
}
