//! Regenerates Table 2: the equivalence between Hamming(7, 4) syndromes and
//! CRC-3 values of single-bit sequences.
//!
//! ```sh
//! cargo run -p zipline-bench --bin table2
//! ```

use zipline_bench::print_header;
use zipline_gd::bits::BitVec;
use zipline_gd::crc::{CrcEngine, CrcSpec};
use zipline_gd::hamming::HammingCode;

fn main() {
    print_header("Table 2 — Hamming code (7, 4) and CRC-3 equivalence");
    let code = HammingCode::new(3).expect("(7,4) code");
    let crc = CrcEngine::new(CrcSpec::new(3, 0x3).expect("poly x^3 + x + 1"));

    println!(
        "{:<10} {:<14} {:<14} {:<14} {:<6}",
        "error/poly", "bit sequence", "syndrome", "CRC-3", "equal"
    );
    for i in 0..7u64 {
        let mut sequence = BitVec::zeros(7);
        sequence.set(6 - i as usize, true); // coefficient of x^i
        let syndrome = code.syndrome(&sequence).expect("7-bit word");
        let crc_value = crc.compute_bits(&sequence);
        println!(
            "{:<10} ({:07b})      ({:03b})          ({:03b})          {}",
            format!("{} / x^{}", i, i),
            sequence.to_u64(),
            syndrome,
            crc_value,
            if syndrome == crc_value { "yes" } else { "NO" }
        );
        assert_eq!(syndrome, crc_value, "table row {i}");
    }
    println!("\nSyndromes and CRC-3 values agree for every single-bit pattern, as in the paper.");
}
