//! Regenerates the dynamic-learning measurement of section 7: the time
//! between the arrival of an unknown basis and the moment compressed packets
//! start to be produced (the paper reports 1.77 ± 0.08 ms).
//!
//! ```sh
//! cargo run --release -p zipline-bench --bin dynamic_learning
//! ```

use zipline::experiment::learning::{run_learning_experiment, LearningExperimentConfig};
use zipline_bench::{print_comparison, print_header};

fn main() {
    print_header("Dynamic learning — time to record and apply a new basis-ID pair");
    let config = LearningExperimentConfig::paper_default();
    println!(
        "sender repeats the same packet at {} Mpkt/s; control-plane latency per switch: {}\n",
        config.packets_per_second / 1e6,
        config.control_plane_latency
    );

    let result = run_learning_experiment(&config).expect("learning experiment");
    println!(
        "{:<14} {:>14} {:>22}",
        "repetition", "delay [ms]", "uncompressed packets"
    );
    for (i, (delay, uncompressed)) in result
        .delays
        .iter()
        .zip(result.uncompressed_during_learning.iter())
        .enumerate()
    {
        println!(
            "{:<14} {:>14.3} {:>22}",
            i + 1,
            delay.as_millis_f64(),
            uncompressed
        );
    }
    print_comparison(
        "\nlearning delay",
        "(1.77 ± 0.08) ms",
        &format!(
            "({:.2} ± {:.2}) ms",
            result.mean_delay.as_millis_f64(),
            result.stddev.as_millis_f64()
        ),
    );
    println!(
        "during that window, packets sharing the basis stay uncompressed — the compression loss \
         measured by the dynamic-learning bars of Figure 3."
    );
}
