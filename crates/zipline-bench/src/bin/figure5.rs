//! Regenerates Figure 5: observed end-to-end latency with the programmable
//! switch performing no operation, encoding or decoding.
//!
//! ```sh
//! cargo run --release -p zipline-bench --bin figure5
//! ```

use zipline::experiment::latency::{run_latency_experiment, LatencyExperimentConfig};
use zipline_bench::{print_comparison, print_header};

fn main() {
    print_header("Figure 5 — Observed end-to-end latency (RTT via the switch)");
    let config = LatencyExperimentConfig::paper_default();
    println!(
        "probe: {} B frames, {} repetitions, host-stack overhead modelled as {} per direction\n",
        config.frame_size, config.probes, config.host_overhead
    );

    let results = run_latency_experiment(&config).expect("latency experiment");
    println!(
        "{:<8} {:>12} {:>12} {:>12}",
        "op", "mean [µs]", "min [µs]", "max [µs]"
    );
    for r in &results {
        println!(
            "{:<8} {:>12.2} {:>12.2} {:>12.2}",
            r.operation.label(),
            r.mean_rtt.as_micros_f64(),
            r.min_rtt.as_micros_f64(),
            r.max_rtt.as_micros_f64()
        );
    }
    let spread = {
        let means: Vec<f64> = results.iter().map(|r| r.mean_rtt.as_micros_f64()).collect();
        let max = means.iter().cloned().fold(f64::MIN, f64::max);
        let min = means.iter().cloned().fold(f64::MAX, f64::min);
        (max - min) / min * 100.0
    };
    print_comparison(
        "\nencode/decode vs no-op",
        "no noticeable effect (~10-13 µs RTT)",
        &format!("{spread:.2} % spread between operations"),
    );
}
