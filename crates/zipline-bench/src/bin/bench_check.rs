//! `bench_check` — the CI bench-regression gate.
//!
//! Compares a fresh criterion-shim run (the JSONL a `BENCH_JSON=… cargo
//! bench` run appends) against the committed `BENCH_PR*.json` baselines at
//! the repository root, and exits non-zero when a tracked benchmark
//! regressed beyond tolerance or a tracked group went missing. The
//! baselines are authoritative: the gate never re-measures them, it trusts
//! the committed medians (see `zipline-bench/src/regression.rs` for the
//! rules and why the default tolerance is generous).
//!
//! Usage:
//! ```sh
//! # In CI, after the bench job produced fresh.jsonl:
//! cargo run -p zipline-bench --bin bench_check -- --fresh fresh.jsonl
//!
//! # Validate-only (no fresh run): parse baselines, check group coverage.
//! cargo run -p zipline-bench --bin bench_check
//!
//! # Options: --baselines <dir> (default .), --tolerance <x> (default 3.0)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use zipline_bench::regression::{
    compare, parse_records, pr_number, BaselineSet, DEFAULT_TOLERANCE, TRACKED_GROUPS,
};

struct Args {
    fresh: Option<PathBuf>,
    baselines: PathBuf,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        fresh: None,
        baselines: PathBuf::from("."),
        tolerance: DEFAULT_TOLERANCE,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--fresh" => args.fresh = Some(PathBuf::from(value("--fresh")?)),
            "--baselines" => args.baselines = PathBuf::from(value("--baselines")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn load_baselines(dir: &PathBuf) -> Result<BaselineSet, String> {
    let mut files: Vec<(u32, PathBuf)> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read baseline dir {}: {e}", dir.display()))?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            let name = path.file_name()?.to_str()?;
            let pr = pr_number(name)?;
            name.ends_with(".json").then_some((pr, path))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!(
            "no BENCH_PR*.json baselines found in {}",
            dir.display()
        ));
    }
    let mut set = BaselineSet::default();
    for (pr, path) in &files {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let name = path.file_name().unwrap().to_string_lossy();
        set.absorb(&name, *pr, &text);
        println!("baseline {name}: PR {pr}");
    }
    Ok(set)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let baselines = load_baselines(&args.baselines)?;
    println!(
        "{} baselined benchmarks, tracked groups covered: {:?}",
        baselines.len(),
        baselines.covered_groups()
    );
    let uncovered: Vec<_> = TRACKED_GROUPS
        .iter()
        .filter(|g| !baselines.covered_groups().contains(g))
        .collect();
    if !uncovered.is_empty() {
        return Err(format!(
            "tracked groups without any committed baseline: {uncovered:?}"
        ));
    }

    let Some(fresh_path) = args.fresh else {
        println!("no --fresh run supplied: baseline validation only, OK");
        return Ok(true);
    };
    let fresh_text = std::fs::read_to_string(&fresh_path)
        .map_err(|e| format!("cannot read fresh run {}: {e}", fresh_path.display()))?;
    let fresh = parse_records(&fresh_text);
    println!(
        "fresh run {}: {} benchmarks",
        fresh_path.display(),
        fresh.len()
    );

    let report = compare(&baselines, &fresh, args.tolerance);
    for c in &report.comparisons {
        println!(
            "{} {:<52} baseline {:>12.1} ns ({}) fresh {:>12.1} ns  ratio {:>5.2} (tolerance {:.2})",
            if c.regressed { "FAIL" } else { " ok " },
            c.id,
            c.baseline_ns,
            c.source,
            c.fresh_ns,
            c.ratio,
            args.tolerance,
        );
    }
    for group in &report.missing_groups {
        println!("FAIL tracked group `{group}` produced no benchmarks in the fresh run");
    }
    if report.passed() {
        println!(
            "bench gate PASS: {} benchmarks within {:.1}x of their committed baselines",
            report.comparisons.len(),
            args.tolerance
        );
    } else {
        println!(
            "bench gate FAIL: {} regression(s), {} missing group(s)",
            report.regressions().len(),
            report.missing_groups.len()
        );
    }
    Ok(report.passed())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(message) => {
            eprintln!("bench_check: {message}");
            ExitCode::FAILURE
        }
    }
}
