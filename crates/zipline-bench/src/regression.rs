//! The CI bench-regression gate's engine.
//!
//! The repository commits one `BENCH_PR<n>.json` snapshot per perf-relevant
//! PR (produced by the criterion shim's `BENCH_JSON` hook), but until this
//! module nothing *read* them — a regression was only visible to a human
//! diffing JSON. The gate closes that loop:
//!
//! 1. every committed `BENCH_PR*.json` is parsed into `(id, median)` pairs;
//!    when an id appears in several snapshots, the **highest-numbered PR
//!    wins** — baselines are authoritative history, so the most recent
//!    committed measurement is the contract;
//! 2. CI runs the tracked bench targets with `BENCH_JSON` pointing at a
//!    scratch file and hands that fresh JSONL to [`compare`];
//! 3. a tracked benchmark whose fresh median exceeds `baseline ×
//!    tolerance` fails the gate. The default tolerance
//!    ([`DEFAULT_TOLERANCE`]) is deliberately generous: the CI container is
//!    single-core and the shim's run-to-run jitter (including group
//!    ordering effects) reaches tens of percent, so the gate catches
//!    *order-of* regressions — an accidentally quadratic loop, a lost fast
//!    path — not 10% drift. Tightening it is a knob, not a rewrite;
//! 4. a tracked *group* with no compared benchmark at all also fails: a
//!    silently renamed or deleted bench target must not pass as "no
//!    regression".
//!
//! Parsing is a deliberately tiny scanner for the two keys the shim emits
//! (`"id"` and `"median_ns_per_iter"`) rather than a JSON parser — the
//! workspace is offline and the committed snapshots are machine-written, so
//! a full parser buys nothing. The scanner accepts both the pretty-printed
//! snapshot files and the one-line-per-bench `BENCH_JSON` output.

use std::collections::BTreeMap;

/// Multiple of the committed baseline a fresh median may reach before the
/// gate fails. See the module docs for why it is this loose.
pub const DEFAULT_TOLERANCE: f64 = 3.0;

/// Benchmark groups the gate enforces: the engine-level groups CI
/// re-measures on every run. (The PR-1 microbenchmark groups stay
/// committed as history but are not gated — they are dominated by the same
/// code paths the engine groups exercise.)
pub const TRACKED_GROUPS: &[&str] = &[
    "engine_scaling",
    "batch_decode_9000B",
    "dictionary_churn",
    "backend_matrix",
    "pipelined_ingest",
    "recovery",
    "server_load",
    "multi_tenant",
    "codec_select",
];

/// One measured benchmark: its full id (`group/name[/param]`) and median.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    pub id: String,
    pub median_ns: f64,
}

impl BenchRecord {
    /// The group prefix of the id (everything before the first `/`).
    pub fn group(&self) -> &str {
        self.id.split('/').next().unwrap_or(&self.id)
    }
}

/// Extracts every `(id, median_ns_per_iter)` pair from criterion-shim
/// output — the pretty-printed `BENCH_PR*.json` snapshots and the
/// line-per-bench `BENCH_JSON` scratch files alike.
pub fn parse_records(text: &str) -> Vec<BenchRecord> {
    let mut records = Vec::new();
    let mut rest = text;
    while let Some(id_at) = rest.find("\"id\"") {
        rest = &rest[id_at + 4..];
        let Some(id) = next_string_value(rest) else {
            continue;
        };
        let Some(median_at) = rest.find("\"median_ns_per_iter\"") else {
            break;
        };
        // The median key must belong to this id's object: reject if another
        // id opens first (a snapshot with a trailing id-less entry).
        if rest[..median_at].contains("\"id\"") {
            continue;
        }
        let after_median = &rest[median_at + "\"median_ns_per_iter\"".len()..];
        if let Some(median_ns) = next_number_value(after_median) {
            records.push(BenchRecord { id, median_ns });
        }
        rest = after_median;
    }
    records
}

/// Reads the next `: "string"` value.
fn next_string_value(text: &str) -> Option<String> {
    let colon = text.find(':')?;
    let after = text[colon + 1..].trim_start();
    let mut chars = after.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return None,
    }
    let close = after[1..].find('"')?;
    Some(after[1..1 + close].to_string())
}

/// Reads the next `: number` value.
fn next_number_value(text: &str) -> Option<f64> {
    let colon = text.find(':')?;
    let after = text[colon + 1..].trim_start();
    let end = after
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(after.len());
    after[..end].parse().ok()
}

/// The PR number of a `BENCH_PR<n>.json` file name, used for
/// "latest snapshot wins" ordering.
pub fn pr_number(file_name: &str) -> Option<u32> {
    let rest = file_name.strip_prefix("BENCH_PR")?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// The authoritative baseline per benchmark id, merged from every committed
/// snapshot with the highest-numbered PR winning ties.
#[derive(Debug, Default)]
pub struct BaselineSet {
    /// id → (median, PR number, source file).
    entries: BTreeMap<String, (f64, u32, String)>,
}

impl BaselineSet {
    /// Merges one snapshot file's records in (see the module docs for the
    /// latest-wins rule).
    pub fn absorb(&mut self, source: &str, pr: u32, text: &str) {
        for record in parse_records(text) {
            match self.entries.get(&record.id) {
                Some(&(_, existing_pr, _)) if existing_pr >= pr => {}
                _ => {
                    self.entries
                        .insert(record.id, (record.median_ns, pr, source.to_string()));
                }
            }
        }
    }

    /// Number of distinct baselined benchmark ids.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no snapshot contributed any record.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The authoritative `(median, source file)` for an id.
    pub fn lookup(&self, id: &str) -> Option<(f64, &str)> {
        self.entries
            .get(id)
            .map(|(median, _, source)| (*median, source.as_str()))
    }

    /// Tracked groups with at least one baselined id.
    pub fn covered_groups(&self) -> Vec<&'static str> {
        TRACKED_GROUPS
            .iter()
            .copied()
            .filter(|group| {
                self.entries
                    .keys()
                    .any(|id| id.split('/').next() == Some(group))
            })
            .collect()
    }
}

/// One gate outcome for a compared benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    pub id: String,
    pub baseline_ns: f64,
    pub fresh_ns: f64,
    /// `fresh / baseline`; above the tolerance the gate fails.
    pub ratio: f64,
    pub source: String,
    pub regressed: bool,
}

/// The gate's verdict over one fresh run.
#[derive(Debug, Default)]
pub struct Report {
    /// Every tracked benchmark present in both baseline and fresh run,
    /// sorted by id.
    pub comparisons: Vec<Comparison>,
    /// Tracked groups the fresh run produced no comparable benchmark for.
    pub missing_groups: Vec<&'static str>,
}

impl Report {
    /// True when no benchmark regressed and every tracked group was
    /// exercised.
    pub fn passed(&self) -> bool {
        self.missing_groups.is_empty() && self.comparisons.iter().all(|c| !c.regressed)
    }

    /// The regressed comparisons, worst ratio first.
    pub fn regressions(&self) -> Vec<&Comparison> {
        let mut regressed: Vec<&Comparison> =
            self.comparisons.iter().filter(|c| c.regressed).collect();
        regressed.sort_by(|a, b| b.ratio.partial_cmp(&a.ratio).expect("finite ratios"));
        regressed
    }
}

/// Gates a fresh run against the committed baselines; see the module docs
/// for the rules. Only ids in [`TRACKED_GROUPS`] participate; fresh
/// benchmarks without a baseline pass silently (they are *new* — their
/// snapshot lands with the PR introducing them).
pub fn compare(baselines: &BaselineSet, fresh: &[BenchRecord], tolerance: f64) -> Report {
    let mut report = Report::default();
    for record in fresh {
        if !TRACKED_GROUPS.contains(&record.group()) {
            continue;
        }
        let Some((baseline_ns, source)) = baselines.lookup(&record.id) else {
            continue;
        };
        let ratio = if baseline_ns > 0.0 {
            record.median_ns / baseline_ns
        } else {
            f64::INFINITY
        };
        report.comparisons.push(Comparison {
            id: record.id.clone(),
            baseline_ns,
            fresh_ns: record.median_ns,
            ratio,
            source: source.to_string(),
            regressed: ratio > tolerance,
        });
    }
    report.comparisons.sort_by(|a, b| a.id.cmp(&b.id));
    // Every tracked group that has a baseline must also appear in the fresh
    // run — otherwise a deleted/renamed bench silently passes.
    for group in baselines.covered_groups() {
        if !report
            .comparisons
            .iter()
            .any(|c| c.id.split('/').next() == Some(group))
        {
            report.missing_groups.push(group);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = r#"{
      "snapshot": "BENCH_PR9",
      "acceptance": { "speedup": 2.0, "note": "identifiers recycle" },
      "benchmarks": [
        { "id": "engine_scaling/engine_w4/s16", "median_ns_per_iter": 100.5, "best_ns_per_iter": 90.0 },
        { "id": "pipelined_ingest/sync_stream", "median_ns_per_iter": 200.0, "best_ns_per_iter": 190.0 }
      ]
    }"#;

    const JSONL: &str = concat!(
        "{\"id\":\"engine_scaling/engine_w4/s16\",\"median_ns_per_iter\":120.00,\"best_ns_per_iter\":110.00,\"iters_per_sample\":32,\"samples\":10}\n",
        "{\"id\":\"pipelined_ingest/sync_stream\",\"median_ns_per_iter\":900.00,\"best_ns_per_iter\":880.00,\"iters_per_sample\":32,\"samples\":10}\n",
    );

    #[test]
    fn parses_pretty_snapshots_and_jsonl() {
        let pretty = parse_records(SNAPSHOT);
        assert_eq!(pretty.len(), 2);
        assert_eq!(pretty[0].id, "engine_scaling/engine_w4/s16");
        assert_eq!(pretty[0].median_ns, 100.5);
        assert_eq!(pretty[1].group(), "pipelined_ingest");

        let lines = parse_records(JSONL);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1].median_ns, 900.0);
    }

    #[test]
    fn parses_every_committed_snapshot_shape() {
        // The real committed files must parse and cover the tracked groups.
        let mut set = BaselineSet::default();
        for (name, text) in [
            ("BENCH_PR1.json", include_str!("../../../BENCH_PR1.json")),
            ("BENCH_PR2.json", include_str!("../../../BENCH_PR2.json")),
            ("BENCH_PR3.json", include_str!("../../../BENCH_PR3.json")),
            ("BENCH_PR4.json", include_str!("../../../BENCH_PR4.json")),
            ("BENCH_PR5.json", include_str!("../../../BENCH_PR5.json")),
            ("BENCH_PR6.json", include_str!("../../../BENCH_PR6.json")),
            ("BENCH_PR7.json", include_str!("../../../BENCH_PR7.json")),
            ("BENCH_PR9.json", include_str!("../../../BENCH_PR9.json")),
            ("BENCH_PR10.json", include_str!("../../../BENCH_PR10.json")),
        ] {
            let pr = pr_number(name).unwrap();
            set.absorb(name, pr, text);
        }
        assert!(set.len() > 40, "snapshots carry history: {}", set.len());
        assert_eq!(set.covered_groups(), TRACKED_GROUPS, "all groups gated");
        // Latest-wins: engine_w4/s16 appears in PR2, PR3 and PR4; PR4 is
        // the authority.
        let (_, source) = set.lookup("engine_scaling/engine_w4/s16").unwrap();
        assert_eq!(source, "BENCH_PR4.json");
    }

    #[test]
    fn pr_numbers_order_snapshots_numerically() {
        assert_eq!(pr_number("BENCH_PR5.json"), Some(5));
        assert_eq!(pr_number("BENCH_PR12.json"), Some(12));
        assert_eq!(pr_number("README.md"), None);
        let mut set = BaselineSet::default();
        set.absorb("BENCH_PR2.json", 2, SNAPSHOT);
        // An older snapshot must not displace a newer one's number.
        set.absorb(
            "BENCH_PR12.json",
            12,
            r#"{"id": "engine_scaling/engine_w4/s16", "median_ns_per_iter": 50.0}"#,
        );
        set.absorb(
            "BENCH_PR3.json",
            3,
            r#"{"id": "engine_scaling/engine_w4/s16", "median_ns_per_iter": 70.0}"#,
        );
        let (median, source) = set.lookup("engine_scaling/engine_w4/s16").unwrap();
        assert_eq!(median, 50.0);
        assert_eq!(source, "BENCH_PR12.json");
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let mut set = BaselineSet::default();
        set.absorb("BENCH_PR9.json", 9, SNAPSHOT);
        let fresh = parse_records(JSONL);
        // 120/100.5 = 1.19x passes at 3.0; 900/200 = 4.5x fails.
        let report = compare(&set, &fresh, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        let regressions = report.regressions();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].id, "pipelined_ingest/sync_stream");
        assert!((regressions[0].ratio - 4.5).abs() < 1e-9);
        // With a looser gate the same run passes.
        assert!(compare(&set, &fresh, 5.0).passed());
    }

    #[test]
    fn gate_fails_when_a_tracked_group_goes_missing() {
        let mut set = BaselineSet::default();
        set.absorb("BENCH_PR9.json", 9, SNAPSHOT);
        // Fresh run covers engine_scaling only: pipelined_ingest has a
        // baseline but produced nothing — that must fail, not pass quietly.
        let fresh = parse_records(
            "{\"id\":\"engine_scaling/engine_w4/s16\",\"median_ns_per_iter\":101.0}\n",
        );
        let report = compare(&set, &fresh, DEFAULT_TOLERANCE);
        assert!(!report.passed());
        assert_eq!(report.missing_groups, vec!["pipelined_ingest"]);
    }

    #[test]
    fn untracked_and_unbaselined_benchmarks_pass_silently() {
        let mut set = BaselineSet::default();
        set.absorb("BENCH_PR9.json", 9, SNAPSHOT);
        let fresh = parse_records(concat!(
            // Untracked group: ignored even though it looks regressed.
            "{\"id\":\"switch_program_per_packet/noop/64\",\"median_ns_per_iter\":1e9}\n",
            // Tracked group, brand-new id: no baseline yet, passes.
            "{\"id\":\"engine_scaling/engine_w16/s32\",\"median_ns_per_iter\":1e9}\n",
            "{\"id\":\"engine_scaling/engine_w4/s16\",\"median_ns_per_iter\":99.0}\n",
            "{\"id\":\"pipelined_ingest/sync_stream\",\"median_ns_per_iter\":201.0}\n",
        ));
        let report = compare(&set, &fresh, DEFAULT_TOLERANCE);
        assert!(report.passed(), "report: {report:?}");
        assert_eq!(report.comparisons.len(), 2);
    }
}
