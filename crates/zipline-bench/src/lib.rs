//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see EXPERIMENTS.md at the repository root for the index and
//! the paper-vs-measured record). The helpers here are just formatting and
//! argument plumbing so the binaries stay small and uniform.
//!
//! The [`regression`] module is the CI bench gate's engine: it parses the
//! committed `BENCH_PR*.json` baselines and a fresh `BENCH_JSON` run, and
//! flags tracked benchmarks that regressed beyond tolerance (see
//! `src/bin/bench_check.rs`).

pub mod regression;

/// Prints a section header in the style used by all harness binaries.
pub fn print_header(title: &str) {
    println!("{}", "=".repeat(title.len().max(20)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(20)));
}

/// Prints a `paper vs measured` line, used to make the comparison explicit
/// in every harness binary's output.
pub fn print_comparison(label: &str, paper: &str, measured: &str) {
    println!("{label:<42} paper: {paper:<18} measured: {measured}");
}

/// True when `--full` was passed: run the experiment at the paper's full
/// scale rather than the quick default.
pub fn full_scale_requested() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Formats a byte count like the figure axes (MB with two decimals).
pub fn format_mb(bytes: u64) -> String {
    format!("{:.2} MB", bytes as f64 / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_mb_matches_figure_axis_style() {
        assert_eq!(format_mb(0), "0.00 MB");
        assert_eq!(format_mb(25_000_000), "25.00 MB");
        assert_eq!(format_mb(99_968_000), "99.97 MB");
    }

    #[test]
    fn helpers_do_not_panic() {
        print_header("test");
        print_comparison("ratio", "0.09", "0.094");
        let _ = full_scale_requested();
    }
}
