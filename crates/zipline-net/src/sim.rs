//! Discrete-event network simulator.
//!
//! The simulator connects [`Node`]s (hosts, switches) with point-to-point
//! links and delivers Ethernet frames between them in virtual time. It is
//! deliberately small: a binary-heap event queue, per-link occupancy to model
//! serialization and queueing, and node-local timers. Determinism is a design
//! goal — given the same inputs the same schedule is produced on every run,
//! which the latency/throughput experiments rely on.

use crate::error::{NetError, Result};
use crate::ethernet::EthernetFrame;
use crate::link::{LinkOccupancy, LinkParams};
use crate::time::SimTime;
use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Identifier of a node within a [`Network`].
pub type NodeId = usize;
/// Identifier of a port on a node.
pub type PortId = usize;

/// Behaviour of a simulated device.
pub trait Node: Any {
    /// Human-readable name used in diagnostics.
    fn name(&self) -> String {
        "node".to_string()
    }

    /// Called when a frame arrives on `port`.
    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, frame: EthernetFrame);

    /// Called when a timer scheduled via [`NodeCtx::schedule_at`] fires.
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _token: u64) {}

    /// Downcasting support so experiments can read node-specific state after
    /// a run.
    fn as_any(&self) -> &dyn Any;
    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Interface handed to a node while it processes an event.
pub struct NodeCtx<'a> {
    now: SimTime,
    outputs: &'a mut Vec<(PortId, EthernetFrame)>,
    timers: &'a mut Vec<(SimTime, u64)>,
}

impl NodeCtx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends a frame out of `port`. Delivery time is determined by the link
    /// attached to that port; frames sent on unconnected ports are counted as
    /// dropped by the network.
    pub fn send(&mut self, port: PortId, frame: EthernetFrame) {
        self.outputs.push((port, frame));
    }

    /// Schedules `on_timer(token)` for this node at absolute time `at`
    /// (clamped to the present if it lies in the past).
    pub fn schedule_at(&mut self, at: SimTime, token: u64) {
        let at = if at < self.now { self.now } else { at };
        self.timers.push((at, token));
    }
}

#[derive(Debug)]
enum EventKind {
    Deliver {
        node: NodeId,
        port: PortId,
        frame: EthernetFrame,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
}

#[derive(Debug)]
struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

struct LinkState {
    to_node: NodeId,
    to_port: PortId,
    params: LinkParams,
    occupancy: LinkOccupancy,
}

/// Counters describing a finished (or in-progress) simulation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetworkStats {
    /// Frames delivered to a node.
    pub frames_delivered: u64,
    /// Frames sent on ports with no link attached.
    pub frames_dropped_unconnected: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Total events processed.
    pub events_processed: u64,
}

/// The discrete-event network.
pub struct Network {
    nodes: Vec<Box<dyn Node>>,
    links: HashMap<(NodeId, PortId), LinkState>,
    queue: BinaryHeap<Reverse<Event>>,
    now: SimTime,
    seq: u64,
    stats: NetworkStats,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// Creates an empty network at time zero.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            links: HashMap::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            stats: NetworkStats::default(),
        }
    }

    /// Adds a node and returns its identifier.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Simulation counters.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    /// Connects `a` and `b` with a full-duplex link (both directions use the
    /// same parameters).
    pub fn connect(
        &mut self,
        a: (NodeId, PortId),
        b: (NodeId, PortId),
        params: LinkParams,
    ) -> Result<()> {
        self.connect_simplex(a, b, params)?;
        self.connect_simplex(b, a, params)
    }

    /// Connects a single direction from `from` to `to`.
    pub fn connect_simplex(
        &mut self,
        from: (NodeId, PortId),
        to: (NodeId, PortId),
        params: LinkParams,
    ) -> Result<()> {
        for (node, _port) in [from, to] {
            if node >= self.nodes.len() {
                return Err(NetError::UnknownEndpoint(format!(
                    "node {node} does not exist"
                )));
            }
        }
        if self.links.contains_key(&from) {
            return Err(NetError::Topology(format!(
                "port {}.{} already has a link attached",
                from.0, from.1
            )));
        }
        self.links.insert(
            from,
            LinkState {
                to_node: to.0,
                to_port: to.1,
                params,
                occupancy: LinkOccupancy::default(),
            },
        );
        Ok(())
    }

    /// Schedules a timer for `node` at absolute time `at`.
    pub fn schedule_timer(&mut self, at: SimTime, node: NodeId, token: u64) {
        let at = if at < self.now { self.now } else { at };
        self.push_event(at, EventKind::Timer { node, token });
    }

    /// Injects a frame to be delivered to `node` on `port` at time `at`,
    /// as if it arrived from outside the simulated topology.
    pub fn inject_frame(&mut self, at: SimTime, node: NodeId, port: PortId, frame: EthernetFrame) {
        let at = if at < self.now { self.now } else { at };
        self.push_event(at, EventKind::Deliver { node, port, frame });
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &dyn Node {
        self.nodes[id].as_ref()
    }

    /// Mutable access to a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut dyn Node {
        self.nodes[id].as_mut()
    }

    /// Downcasts a node to a concrete type.
    pub fn node_as<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes[id].as_any().downcast_ref::<T>()
    }

    /// Downcasts a node to a concrete type, mutably.
    pub fn node_as_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes[id].as_any_mut().downcast_mut::<T>()
    }

    /// Bytes and frames transmitted over the link attached to `(node, port)`,
    /// if that port is connected.
    pub fn link_occupancy(&self, endpoint: (NodeId, PortId)) -> Option<LinkOccupancy> {
        self.links.get(&endpoint).map(|l| l.occupancy)
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Event { time, seq, kind }));
    }

    /// Processes the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(event)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.time >= self.now, "time must not go backwards");
        self.now = event.time;
        self.stats.events_processed += 1;

        let mut outputs: Vec<(PortId, EthernetFrame)> = Vec::new();
        let mut timers: Vec<(SimTime, u64)> = Vec::new();
        let node_id = match event.kind {
            EventKind::Deliver { node, port, frame } => {
                self.stats.frames_delivered += 1;
                let mut ctx = NodeCtx {
                    now: self.now,
                    outputs: &mut outputs,
                    timers: &mut timers,
                };
                self.nodes[node].on_frame(&mut ctx, port, frame);
                node
            }
            EventKind::Timer { node, token } => {
                self.stats.timers_fired += 1;
                let mut ctx = NodeCtx {
                    now: self.now,
                    outputs: &mut outputs,
                    timers: &mut timers,
                };
                self.nodes[node].on_timer(&mut ctx, token);
                node
            }
        };

        for (at, token) in timers {
            self.push_event(
                at,
                EventKind::Timer {
                    node: node_id,
                    token,
                },
            );
        }
        for (port, frame) in outputs {
            self.transmit(node_id, port, frame);
        }
        true
    }

    fn transmit(&mut self, node: NodeId, port: PortId, frame: EthernetFrame) {
        let wire_len = frame.wire_len();
        match self.links.get_mut(&(node, port)) {
            Some(link) => {
                let arrival = link.occupancy.transmit(&link.params, self.now, wire_len);
                let (to_node, to_port) = (link.to_node, link.to_port);
                self.push_event(
                    arrival,
                    EventKind::Deliver {
                        node: to_node,
                        port: to_port,
                        frame,
                    },
                );
            }
            None => {
                self.stats.frames_dropped_unconnected += 1;
            }
        }
    }

    /// Runs until the event queue is empty or `max_events` is reached.
    /// Returns the number of events processed.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events && self.step() {
            processed += 1;
        }
        processed
    }

    /// Runs until simulation time reaches `deadline` (events at or beyond the
    /// deadline are left in the queue) or the queue empties.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(Reverse(event)) = self.queue.peek() {
            if event.time >= deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::ETHERTYPE_IPV4;
    use crate::mac::MacAddress;
    use crate::time::{DataRate, SimDuration};

    /// Test node that records arrivals and can optionally forward frames to a
    /// port or echo them back.
    struct Recorder {
        arrivals: Vec<(SimTime, PortId, EthernetFrame)>,
        forward_to: Option<PortId>,
        timer_log: Vec<(SimTime, u64)>,
    }

    impl Recorder {
        fn new() -> Self {
            Self {
                arrivals: Vec::new(),
                forward_to: None,
                timer_log: Vec::new(),
            }
        }
        fn forwarding(port: PortId) -> Self {
            Self {
                arrivals: Vec::new(),
                forward_to: Some(port),
                timer_log: Vec::new(),
            }
        }
    }

    impl Node for Recorder {
        fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, frame: EthernetFrame) {
            self.arrivals.push((ctx.now(), port, frame.clone()));
            if let Some(out) = self.forward_to {
                ctx.send(out, frame);
            }
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
            self.timer_log.push((ctx.now(), token));
            if token < 3 {
                ctx.schedule_at(ctx.now() + SimDuration::from_micros(10), token + 1);
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn frame(len: usize) -> EthernetFrame {
        EthernetFrame::new(
            MacAddress::local(1),
            MacAddress::local(2),
            ETHERTYPE_IPV4,
            vec![0; len],
        )
    }

    #[test]
    fn inject_and_deliver() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Recorder::new()));
        net.inject_frame(SimTime::from_micros(3), a, 0, frame(100));
        net.run(100);
        let rec = net.node_as::<Recorder>(a).unwrap();
        assert_eq!(rec.arrivals.len(), 1);
        assert_eq!(rec.arrivals[0].0, SimTime::from_micros(3));
        assert_eq!(net.stats().frames_delivered, 1);
    }

    #[test]
    fn forwarding_across_a_link_accounts_for_delays() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Recorder::forwarding(0)));
        let b = net.add_node(Box::new(Recorder::new()));
        let params = LinkParams::new(DataRate::from_gbps(1.0), SimDuration::from_nanos(500));
        net.connect((a, 0), (b, 0), params).unwrap();

        net.inject_frame(SimTime::ZERO, a, 5, frame(1486)); // wire_len = 1504
        net.run(100);

        let rec_b = net.node_as::<Recorder>(b).unwrap();
        assert_eq!(rec_b.arrivals.len(), 1);
        // 1504 bytes at 1 Gbit/s = 12.032 µs + 500 ns propagation.
        assert_eq!(rec_b.arrivals[0].0.as_nanos(), 12_032 + 500);
        assert_eq!(net.link_occupancy((a, 0)).unwrap().frames_sent, 1);
    }

    #[test]
    fn back_to_back_frames_queue_on_the_link() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Recorder::forwarding(0)));
        let b = net.add_node(Box::new(Recorder::new()));
        net.connect(
            (a, 0),
            (b, 0),
            LinkParams::new(DataRate::from_gbps(1.0), SimDuration::ZERO),
        )
        .unwrap();
        // Two frames injected at the same instant; the second must wait for
        // the first to serialize.
        net.inject_frame(SimTime::ZERO, a, 0, frame(1486));
        net.inject_frame(SimTime::ZERO, a, 0, frame(1486));
        net.run(100);
        let rec_b = net.node_as::<Recorder>(b).unwrap();
        assert_eq!(rec_b.arrivals.len(), 2);
        assert_eq!(rec_b.arrivals[0].0.as_nanos(), 12_032);
        assert_eq!(rec_b.arrivals[1].0.as_nanos(), 24_064);
    }

    #[test]
    fn frames_on_unconnected_ports_are_dropped() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Recorder::forwarding(7)));
        net.inject_frame(SimTime::ZERO, a, 0, frame(64));
        net.run(10);
        assert_eq!(net.stats().frames_dropped_unconnected, 1);
    }

    #[test]
    fn timers_fire_in_order_and_can_reschedule() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Recorder::new()));
        net.schedule_timer(SimTime::from_micros(5), a, 0);
        net.run(100);
        let rec = net.node_as::<Recorder>(a).unwrap();
        // Token 0 at 5 µs, then 1, 2, 3 every 10 µs.
        assert_eq!(rec.timer_log.len(), 4);
        assert_eq!(rec.timer_log[0], (SimTime::from_micros(5), 0));
        assert_eq!(rec.timer_log[3], (SimTime::from_micros(35), 3));
        assert_eq!(net.stats().timers_fired, 4);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Recorder::new()));
        net.schedule_timer(SimTime::from_micros(5), a, 10);
        net.schedule_timer(SimTime::from_micros(50), a, 11);
        net.run_until(SimTime::from_micros(20));
        let rec = net.node_as::<Recorder>(a).unwrap();
        assert_eq!(rec.timer_log.len(), 1);
        assert_eq!(net.now(), SimTime::from_micros(20));
        // The remaining event still fires later.
        net.run(10);
        let rec = net.node_as::<Recorder>(a).unwrap();
        assert_eq!(rec.timer_log.len(), 2);
    }

    #[test]
    fn events_at_same_time_preserve_insertion_order() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Recorder::new()));
        for i in 0..5usize {
            net.inject_frame(SimTime::from_micros(1), a, i, frame(64));
        }
        net.run(10);
        let rec = net.node_as::<Recorder>(a).unwrap();
        let ports: Vec<PortId> = rec.arrivals.iter().map(|(_, p, _)| *p).collect();
        assert_eq!(ports, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn connect_validation() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Recorder::new()));
        let b = net.add_node(Box::new(Recorder::new()));
        net.connect((a, 0), (b, 0), LinkParams::ideal()).unwrap();
        // Same port cannot be connected twice.
        assert!(net.connect((a, 0), (b, 1), LinkParams::ideal()).is_err());
        // Unknown node.
        assert!(net.connect((a, 1), (99, 0), LinkParams::ideal()).is_err());
        assert_eq!(net.node_count(), 2);
    }

    #[test]
    fn past_events_are_clamped_to_now() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Recorder::new()));
        net.schedule_timer(SimTime::from_micros(10), a, 0);
        net.run(1);
        assert_eq!(net.now(), SimTime::from_micros(10));
        // Scheduling in the past clamps to now rather than panicking.
        net.inject_frame(SimTime::from_micros(1), a, 0, frame(64));
        net.run(10);
        let rec = net.node_as::<Recorder>(a).unwrap();
        assert_eq!(rec.arrivals[0].0, SimTime::from_micros(10));
    }

    #[test]
    fn node_as_wrong_type_returns_none() {
        struct Other;
        impl Node for Other {
            fn on_frame(&mut self, _: &mut NodeCtx<'_>, _: PortId, _: EthernetFrame) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut net = Network::new();
        let a = net.add_node(Box::new(Recorder::new()));
        assert!(net.node_as::<Other>(a).is_none());
        assert!(net.node_as_mut::<Recorder>(a).is_some());
        assert_eq!(net.node(a).name(), "node");
        let _ = net.node_mut(a);
    }
}
