//! Error type for the network substrate.

use std::fmt;

/// Errors produced by the network substrate.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// A frame or packet could not be parsed.
    Malformed(String),
    /// An I/O error occurred while reading or writing a trace file.
    Io(std::io::Error),
    /// A topology operation referenced a node or port that does not exist.
    UnknownEndpoint(String),
    /// The operation is inconsistent with the current topology
    /// (e.g. connecting a port twice).
    Topology(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Malformed(msg) => write!(f, "malformed packet: {msg}"),
            NetError::Io(e) => write!(f, "I/O error: {e}"),
            NetError::UnknownEndpoint(msg) => write!(f, "unknown endpoint: {msg}"),
            NetError::Topology(msg) => write!(f, "topology error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NetError::Malformed("short".into())
            .to_string()
            .contains("short"));
        assert!(NetError::UnknownEndpoint("node 7".into())
            .to_string()
            .contains("node 7"));
        assert!(NetError::Topology("port in use".into())
            .to_string()
            .contains("port in use"));
        let io = NetError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
    }

    #[test]
    fn io_error_exposes_source() {
        use std::error::Error;
        let io = NetError::from(std::io::Error::other("inner"));
        assert!(io.source().is_some());
        assert!(NetError::Malformed("x".into()).source().is_none());
    }
}
