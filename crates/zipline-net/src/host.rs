//! End-host nodes: traffic generators, capture sinks and echo responders.
//!
//! These model the two Dell servers of the paper's testbed and the Mellanox
//! `raw_ethernet_*` utilities used in section 7:
//!
//! * [`TrafficGenerator`] replays a list of Ethernet frames at a configurable
//!   rate (the paper's generator is bottlenecked around 7 Mpkt/s for small
//!   frames — modelled by `max_packets_per_second`);
//! * [`CaptureSink`] counts arrivals and computes achieved throughput, like
//!   the receiving server's capture;
//! * [`EchoHost`] reflects every frame back to its sender, which is how the
//!   RTT measurement of Figure 5 is set up ("one server sending packets to
//!   itself via the programmable switch").

use crate::ethernet::EthernetFrame;
use crate::sim::{Node, NodeCtx, PortId};
use crate::time::{DataRate, SimDuration, SimTime};
use std::any::Any;

/// Configuration of a [`TrafficGenerator`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Frames to send; the generator cycles through this list.
    pub frames: Vec<EthernetFrame>,
    /// Total number of frames to send (may exceed `frames.len()`, in which
    /// case the list is replayed from the start).
    pub count: u64,
    /// NIC line rate: consecutive sends are separated by at least the
    /// serialization time of the previous frame at this rate.
    pub nic_rate: DataRate,
    /// Optional packet-rate cap modelling the software generator bottleneck
    /// (about 7 Mpkt/s in the paper's setup).
    pub max_packets_per_second: Option<f64>,
    /// Port to transmit on.
    pub port: PortId,
    /// Time of the first transmission.
    pub start: SimTime,
}

impl GeneratorConfig {
    /// A generator that sends `count` copies of a single frame back-to-back
    /// at `nic_rate`, starting at time zero on port 0.
    pub fn repeat_frame(frame: EthernetFrame, count: u64, nic_rate: DataRate) -> Self {
        Self {
            frames: vec![frame],
            count,
            nic_rate,
            max_packets_per_second: None,
            port: 0,
            start: SimTime::ZERO,
        }
    }

    /// A generator that replays a frame list once, back-to-back at `nic_rate`.
    pub fn replay(frames: Vec<EthernetFrame>, nic_rate: DataRate) -> Self {
        let count = frames.len() as u64;
        Self {
            frames,
            count,
            nic_rate,
            max_packets_per_second: None,
            port: 0,
            start: SimTime::ZERO,
        }
    }

    /// Interval between consecutive transmissions of a frame of `wire_len`
    /// bytes.
    fn departure_interval(&self, wire_len: usize) -> SimDuration {
        let serialization = self.nic_rate.serialization_delay(wire_len);
        match self.max_packets_per_second {
            Some(pps) if pps > 0.0 => {
                let pacing = SimDuration::from_secs_f64(1.0 / pps);
                if pacing > serialization {
                    pacing
                } else {
                    serialization
                }
            }
            _ => serialization,
        }
    }
}

/// Counters exposed by a [`TrafficGenerator`] after (or during) a run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorStats {
    /// Frames handed to the network.
    pub frames_sent: u64,
    /// Total wire bytes of those frames.
    pub bytes_sent: u64,
    /// Time of the first transmission.
    pub first_send: Option<SimTime>,
    /// Time of the last transmission.
    pub last_send: Option<SimTime>,
}

/// Replays Ethernet frames into the network at a configurable rate.
#[derive(Debug)]
pub struct TrafficGenerator {
    config: GeneratorConfig,
    next_index: usize,
    sent: u64,
    stats: GeneratorStats,
}

/// Timer token used internally by the generator.
const GENERATOR_TICK: u64 = 0;

impl TrafficGenerator {
    /// Creates a generator. Schedule a timer with token 0 at the configured
    /// [`start_time`](Self::start_time) after adding it to the network.
    pub fn new(config: GeneratorConfig) -> Self {
        Self {
            config,
            next_index: 0,
            sent: 0,
            stats: GeneratorStats::default(),
        }
    }

    /// Convenience to schedule the first transmission; equivalent to
    /// `network.schedule_timer(config.start, node_id, 0)`.
    pub fn start_time(&self) -> SimTime {
        self.config.start
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> GeneratorStats {
        self.stats
    }

    /// True once every requested frame has been sent.
    pub fn finished(&self) -> bool {
        self.sent >= self.config.count
    }

    fn send_next(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.finished() || self.config.frames.is_empty() {
            return;
        }
        let frame = self.config.frames[self.next_index].clone();
        self.next_index = (self.next_index + 1) % self.config.frames.len();
        let wire_len = frame.wire_len();

        self.stats.frames_sent += 1;
        self.stats.bytes_sent += wire_len as u64;
        if self.stats.first_send.is_none() {
            self.stats.first_send = Some(ctx.now());
        }
        self.stats.last_send = Some(ctx.now());

        ctx.send(self.config.port, frame);
        self.sent += 1;

        if !self.finished() {
            let next = ctx.now() + self.config.departure_interval(wire_len);
            ctx.schedule_at(next, GENERATOR_TICK);
        }
    }
}

impl Node for TrafficGenerator {
    fn name(&self) -> String {
        "traffic-generator".to_string()
    }

    fn on_frame(&mut self, _ctx: &mut NodeCtx<'_>, _port: PortId, _frame: EthernetFrame) {
        // Generators ignore incoming traffic (the capture runs elsewhere).
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        if token == GENERATOR_TICK {
            self.send_next(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Counters exposed by a [`CaptureSink`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CaptureStats {
    /// Frames received.
    pub frames_received: u64,
    /// Total wire bytes received.
    pub bytes_received: u64,
    /// Timestamp of the first arrival.
    pub first_arrival: Option<SimTime>,
    /// Timestamp of the last arrival.
    pub last_arrival: Option<SimTime>,
}

impl CaptureStats {
    /// Achieved goodput between the first and last arrival.
    pub fn throughput(&self) -> DataRate {
        match (self.first_arrival, self.last_arrival) {
            (Some(first), Some(last)) if last > first => {
                DataRate::from_transfer(self.bytes_received, last - first)
            }
            _ => DataRate::from_bps(0),
        }
    }

    /// Achieved packet rate between the first and last arrival.
    pub fn packet_rate(&self) -> f64 {
        match (self.first_arrival, self.last_arrival) {
            (Some(first), Some(last)) if last > first => {
                DataRate::packets_per_second(self.frames_received, last - first)
            }
            _ => 0.0,
        }
    }
}

/// Records every arriving frame's metadata (and optionally the frames
/// themselves).
#[derive(Debug, Default)]
pub struct CaptureSink {
    stats: CaptureStats,
    /// Arrival timestamps paired with the EtherType of each frame; kept when
    /// `record_arrivals` is set.
    arrivals: Vec<(SimTime, u16)>,
    /// Full frames, kept when `keep_frames` is set (bounded by
    /// `max_kept_frames`).
    frames: Vec<(SimTime, EthernetFrame)>,
    record_arrivals: bool,
    keep_frames: bool,
    max_kept_frames: usize,
}

impl CaptureSink {
    /// A sink that only keeps counters.
    pub fn counting() -> Self {
        Self {
            record_arrivals: false,
            keep_frames: false,
            max_kept_frames: 0,
            ..Self::default()
        }
    }

    /// A sink that additionally records arrival timestamps and EtherTypes
    /// (used by the dynamic-learning experiment to find the first type 2 and
    /// type 3 packets).
    pub fn recording_arrivals() -> Self {
        Self {
            record_arrivals: true,
            keep_frames: false,
            max_kept_frames: 0,
            ..Self::default()
        }
    }

    /// A sink that keeps up to `max` whole frames (used by round-trip tests).
    pub fn keeping_frames(max: usize) -> Self {
        Self {
            record_arrivals: true,
            keep_frames: true,
            max_kept_frames: max,
            ..Self::default()
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> CaptureStats {
        self.stats
    }

    /// Recorded `(arrival time, EtherType)` pairs.
    pub fn arrivals(&self) -> &[(SimTime, u16)] {
        &self.arrivals
    }

    /// Recorded frames.
    pub fn frames(&self) -> &[(SimTime, EthernetFrame)] {
        &self.frames
    }

    /// First arrival whose EtherType matches `ethertype`.
    pub fn first_arrival_with_ethertype(&self, ethertype: u16) -> Option<SimTime> {
        self.arrivals
            .iter()
            .find(|(_, et)| *et == ethertype)
            .map(|(t, _)| *t)
    }
}

impl Node for CaptureSink {
    fn name(&self) -> String {
        "capture-sink".to_string()
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId, frame: EthernetFrame) {
        let now = ctx.now();
        self.stats.frames_received += 1;
        self.stats.bytes_received += frame.wire_len() as u64;
        if self.stats.first_arrival.is_none() {
            self.stats.first_arrival = Some(now);
        }
        self.stats.last_arrival = Some(now);
        if self.record_arrivals {
            self.arrivals.push((now, frame.ethertype));
        }
        if self.keep_frames && self.frames.len() < self.max_kept_frames {
            self.frames.push((now, frame));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Reflects every arriving frame back out of the port it came in on, with
/// source and destination MAC addresses swapped. Records per-frame
/// turnaround for RTT accounting.
#[derive(Debug, Default)]
pub struct EchoHost {
    /// Number of frames echoed.
    pub echoed: u64,
}

impl Node for EchoHost {
    fn name(&self) -> String {
        "echo-host".to_string()
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, frame: EthernetFrame) {
        self.echoed += 1;
        let reply = EthernetFrame::new(frame.src, frame.dst, frame.ethertype, frame.payload);
        ctx.send(port, reply);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A host that sends one probe frame and records when the echo returns —
/// the RTT measurement of Figure 5. Send repeated probes by scheduling timer
/// token `n` for probe `n`.
#[derive(Debug)]
pub struct RttProbe {
    /// Frame used as the probe.
    pub probe: EthernetFrame,
    /// Port to send probes on.
    pub port: PortId,
    /// Times at which each probe was sent.
    pub sent_at: Vec<SimTime>,
    /// Round-trip time of each completed probe, in send order.
    pub rtts: Vec<SimDuration>,
    outstanding: Vec<SimTime>,
}

impl RttProbe {
    /// Creates a probe host.
    pub fn new(probe: EthernetFrame, port: PortId) -> Self {
        Self {
            probe,
            port,
            sent_at: Vec::new(),
            rtts: Vec::new(),
            outstanding: Vec::new(),
        }
    }

    /// Mean RTT over all completed probes.
    pub fn mean_rtt(&self) -> Option<SimDuration> {
        if self.rtts.is_empty() {
            return None;
        }
        let total: u64 = self.rtts.iter().map(|d| d.as_nanos()).sum();
        Some(SimDuration::from_nanos(total / self.rtts.len() as u64))
    }
}

impl Node for RttProbe {
    fn name(&self) -> String {
        "rtt-probe".to_string()
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, _port: PortId, _frame: EthernetFrame) {
        if let Some(sent) = self.outstanding.pop() {
            self.rtts.push(ctx.now() - sent);
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: u64) {
        self.sent_at.push(ctx.now());
        self.outstanding.push(ctx.now());
        ctx.send(self.port, self.probe.clone());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::ETHERTYPE_IPV4;
    use crate::link::LinkParams;
    use crate::mac::MacAddress;
    use crate::sim::Network;

    fn test_frame(size: usize) -> EthernetFrame {
        EthernetFrame::test_frame(MacAddress::local(1), MacAddress::local(2), size, 0x55)
    }

    #[test]
    fn generator_sends_requested_count_at_line_rate() {
        let mut net = Network::new();
        let frame = test_frame(1500);
        let config = GeneratorConfig::repeat_frame(frame, 100, DataRate::LINE_RATE_100G);
        let generator = TrafficGenerator::new(config);
        let start = generator.start_time();
        let gen_id = net.add_node(Box::new(generator));
        let sink_id = net.add_node(Box::new(CaptureSink::counting()));
        net.connect((gen_id, 0), (sink_id, 0), LinkParams::line_rate_100g())
            .unwrap();
        net.schedule_timer(start, gen_id, 0);
        net.run(10_000);

        let gen = net.node_as::<TrafficGenerator>(gen_id).unwrap();
        assert!(gen.finished());
        assert_eq!(gen.stats().frames_sent, 100);
        assert_eq!(gen.stats().bytes_sent, 100 * 1500);

        let sink = net.node_as::<CaptureSink>(sink_id).unwrap();
        assert_eq!(sink.stats().frames_received, 100);
        // Back-to-back 1500 B frames at 100 Gbit/s: 120 ns apart.
        let elapsed = sink.stats().last_arrival.unwrap() - sink.stats().first_arrival.unwrap();
        assert_eq!(elapsed.as_nanos(), 99 * 120);
        // Measured throughput is close to line rate (within rounding).
        assert!(sink.stats().throughput().as_gbps() > 95.0);
    }

    #[test]
    fn generator_respects_packet_rate_cap() {
        let mut net = Network::new();
        let frame = test_frame(64);
        let mut config = GeneratorConfig::repeat_frame(frame, 50, DataRate::LINE_RATE_100G);
        config.max_packets_per_second = Some(1_000_000.0); // 1 Mpkt/s -> 1 µs spacing
        let generator = TrafficGenerator::new(config);
        let gen_id = net.add_node(Box::new(generator));
        let sink_id = net.add_node(Box::new(CaptureSink::counting()));
        net.connect((gen_id, 0), (sink_id, 0), LinkParams::line_rate_100g())
            .unwrap();
        net.schedule_timer(SimTime::ZERO, gen_id, 0);
        net.run(10_000);

        let sink = net.node_as::<CaptureSink>(sink_id).unwrap();
        // 50 frames spaced exactly 1 µs apart -> 49 µs between first and last.
        let elapsed = sink.stats().last_arrival.unwrap() - sink.stats().first_arrival.unwrap();
        assert_eq!(elapsed.as_nanos(), 49_000);
        let rate = sink.stats().packet_rate();
        assert!(
            (rate - 1_000_000.0).abs() / 1_000_000.0 < 0.03,
            "rate {rate}"
        );
    }

    #[test]
    fn generator_replays_frame_list_in_order() {
        let mut net = Network::new();
        let frames: Vec<EthernetFrame> = (0..3u8)
            .map(|i| {
                EthernetFrame::new(
                    MacAddress::local(1),
                    MacAddress::local(2),
                    ETHERTYPE_IPV4,
                    vec![i; 100],
                )
            })
            .collect();
        let config = GeneratorConfig::replay(frames.clone(), DataRate::from_gbps(10.0));
        let gen_id = net.add_node(Box::new(TrafficGenerator::new(config)));
        let sink_id = net.add_node(Box::new(CaptureSink::keeping_frames(10)));
        net.connect((gen_id, 0), (sink_id, 0), LinkParams::ideal())
            .unwrap();
        net.schedule_timer(SimTime::ZERO, gen_id, 0);
        net.run(1_000);
        let sink = net.node_as::<CaptureSink>(sink_id).unwrap();
        let received: Vec<u8> = sink.frames().iter().map(|(_, f)| f.payload[0]).collect();
        assert_eq!(received, vec![0, 1, 2]);
    }

    #[test]
    fn generator_cycles_when_count_exceeds_list() {
        let frames: Vec<EthernetFrame> = (0..2u8)
            .map(|i| {
                EthernetFrame::new(
                    MacAddress::local(1),
                    MacAddress::local(2),
                    ETHERTYPE_IPV4,
                    vec![i; 50],
                )
            })
            .collect();
        let mut config = GeneratorConfig::replay(frames, DataRate::from_gbps(10.0));
        config.count = 5;
        let mut net = Network::new();
        let gen_id = net.add_node(Box::new(TrafficGenerator::new(config)));
        let sink_id = net.add_node(Box::new(CaptureSink::keeping_frames(10)));
        net.connect((gen_id, 0), (sink_id, 0), LinkParams::ideal())
            .unwrap();
        net.schedule_timer(SimTime::ZERO, gen_id, 0);
        net.run(1_000);
        let sink = net.node_as::<CaptureSink>(sink_id).unwrap();
        let received: Vec<u8> = sink.frames().iter().map(|(_, f)| f.payload[0]).collect();
        assert_eq!(received, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn capture_sink_records_ethertypes() {
        let mut net = Network::new();
        let sink_id = net.add_node(Box::new(CaptureSink::recording_arrivals()));
        let f1 = EthernetFrame::new(
            MacAddress::local(1),
            MacAddress::local(2),
            0x88B5,
            vec![0; 33],
        );
        let f2 = EthernetFrame::new(
            MacAddress::local(1),
            MacAddress::local(2),
            0x88B6,
            vec![0; 3],
        );
        net.inject_frame(SimTime::from_micros(1), sink_id, 0, f1);
        net.inject_frame(SimTime::from_micros(2), sink_id, 0, f2);
        net.run(10);
        let sink = net.node_as::<CaptureSink>(sink_id).unwrap();
        assert_eq!(sink.arrivals().len(), 2);
        assert_eq!(
            sink.first_arrival_with_ethertype(0x88B6),
            Some(SimTime::from_micros(2))
        );
        assert_eq!(sink.first_arrival_with_ethertype(0x1234), None);
    }

    #[test]
    fn capture_stats_with_no_traffic_are_zero() {
        let sink = CaptureSink::counting();
        assert_eq!(sink.stats().throughput().bps(), 0);
        assert_eq!(sink.stats().packet_rate(), 0.0);
    }

    #[test]
    fn echo_host_swaps_addresses() {
        let mut net = Network::new();
        let echo_id = net.add_node(Box::new(EchoHost::default()));
        let sink_id = net.add_node(Box::new(CaptureSink::keeping_frames(4)));
        // Echo's port 0 leads to the sink so we can see the reply.
        net.connect((echo_id, 0), (sink_id, 0), LinkParams::ideal())
            .unwrap();
        let frame = EthernetFrame::new(
            MacAddress::local(9),
            MacAddress::local(8),
            ETHERTYPE_IPV4,
            vec![1, 2, 3],
        );
        net.inject_frame(SimTime::ZERO, echo_id, 0, frame);
        net.run(10);
        let echo = net.node_as::<EchoHost>(echo_id).unwrap();
        assert_eq!(echo.echoed, 1);
        let sink = net.node_as::<CaptureSink>(sink_id).unwrap();
        let (_, reply) = &sink.frames()[0];
        assert_eq!(reply.dst, MacAddress::local(8));
        assert_eq!(reply.src, MacAddress::local(9));
    }

    #[test]
    fn rtt_probe_measures_round_trip() {
        let mut net = Network::new();
        let probe_frame = test_frame(64);
        let probe_id = net.add_node(Box::new(RttProbe::new(probe_frame, 0)));
        let echo_id = net.add_node(Box::new(EchoHost::default()));
        let link = LinkParams::new(DataRate::from_gbps(100.0), SimDuration::from_nanos(500));
        net.connect((probe_id, 0), (echo_id, 0), link).unwrap();
        // Three probes, 10 µs apart.
        for i in 0..3u64 {
            net.schedule_timer(SimTime::from_micros(i * 10), probe_id, i);
        }
        net.run(1_000);
        let probe = net.node_as::<RttProbe>(probe_id).unwrap();
        assert_eq!(probe.rtts.len(), 3);
        // Each direction: 6 ns serialization (64 B @ 100 G) + 500 ns propagation.
        let expected = 2 * (6 + 500);
        for rtt in &probe.rtts {
            assert_eq!(rtt.as_nanos(), expected);
        }
        assert_eq!(probe.mean_rtt().unwrap().as_nanos(), expected);
    }

    #[test]
    fn rtt_probe_without_replies_reports_none() {
        let probe = RttProbe::new(test_frame(64), 0);
        assert_eq!(probe.mean_rtt(), None);
    }
}
