//! Ethernet II framing.
//!
//! ZipLine "settled on Ethernet-based framing to provide compatibility with
//! regular Ethernet network cards" and operates at layer 2 (section 5). The
//! evaluation transfers frames of 64 B (minimum), 1500 B (standard MTU
//! payload) and 9 kB (jumbo) — Figure 4.
//!
//! Sizing conventions in this crate: [`EthernetFrame::wire_len`] counts the
//! 14-byte header, the payload, padding up to the 64-byte minimum frame size
//! and the 4-byte frame check sequence, matching how test equipment (and the
//! paper's `raw_ethernet_*` utilities) report frame sizes.

use crate::error::{NetError, Result};
use crate::mac::MacAddress;
use serde::{Deserialize, Serialize};

/// Length of the Ethernet II header (destination + source + EtherType).
pub const HEADER_LEN: usize = 14;
/// Length of the frame check sequence appended to every frame.
pub const FCS_LEN: usize = 4;
/// Minimum frame size on the wire (header + payload + FCS), per IEEE 802.3.
pub const MIN_FRAME_LEN: usize = 64;
/// Standard maximum payload (MTU) of an Ethernet frame.
pub const MTU: usize = 1500;
/// Jumbo-frame payload size used by the paper's evaluation.
pub const JUMBO_PAYLOAD: usize = 9000;
/// EtherType for IPv4, used as a default for raw test traffic.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// An Ethernet II frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthernetFrame {
    /// Destination MAC address.
    pub dst: MacAddress,
    /// Source MAC address.
    pub src: MacAddress,
    /// EtherType of the payload.
    pub ethertype: u16,
    /// Frame payload (not padded; padding is accounted by [`wire_len`](Self::wire_len)).
    pub payload: Vec<u8>,
}

impl EthernetFrame {
    /// Builds a frame.
    pub fn new(dst: MacAddress, src: MacAddress, ethertype: u16, payload: Vec<u8>) -> Self {
        Self {
            dst,
            src,
            ethertype,
            payload,
        }
    }

    /// Size of the frame on the wire: header + payload + FCS, padded up to
    /// the 64-byte minimum.
    pub fn wire_len(&self) -> usize {
        (HEADER_LEN + self.payload.len() + FCS_LEN).max(MIN_FRAME_LEN)
    }

    /// Header + payload length, without FCS or minimum-size padding
    /// (the length `serialize` produces).
    pub fn buffer_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }

    /// Serializes the frame (header + payload, no FCS) into bytes.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buffer_len());
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.ethertype.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses a frame from bytes (header + payload, FCS already stripped).
    pub fn parse(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < HEADER_LEN {
            return Err(NetError::Malformed(format!(
                "frame of {} bytes is shorter than the {HEADER_LEN}-byte Ethernet header",
                bytes.len()
            )));
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&bytes[0..6]);
        src.copy_from_slice(&bytes[6..12]);
        let ethertype = u16::from_be_bytes([bytes[12], bytes[13]]);
        Ok(Self {
            dst: MacAddress::new(dst),
            src: MacAddress::new(src),
            ethertype,
            payload: bytes[HEADER_LEN..].to_vec(),
        })
    }

    /// Builds a test frame with the given *wire* size (as used in Figure 4:
    /// 64 B, 1500 B payload, 9000 B payload). For `wire_size >= 64` the
    /// payload is sized so that header + payload + FCS equals `wire_size`.
    ///
    /// # Panics
    /// Panics if `wire_size < MIN_FRAME_LEN`.
    pub fn test_frame(dst: MacAddress, src: MacAddress, wire_size: usize, fill: u8) -> Self {
        assert!(
            wire_size >= MIN_FRAME_LEN,
            "wire size below Ethernet minimum"
        );
        let payload_len = wire_size - HEADER_LEN - FCS_LEN;
        Self::new(dst, src, ETHERTYPE_IPV4, vec![fill; payload_len])
    }

    /// Returns a copy with a different payload and EtherType, keeping the
    /// addressing. Used by the switch programs when rewriting packets.
    pub fn with_payload(&self, ethertype: u16, payload: Vec<u8>) -> Self {
        Self {
            dst: self.dst,
            src: self.src,
            ethertype,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> EthernetFrame {
        EthernetFrame::new(
            MacAddress::local(1),
            MacAddress::local(2),
            ETHERTYPE_IPV4,
            vec![1, 2, 3, 4, 5],
        )
    }

    #[test]
    fn serialize_parse_roundtrip() {
        let f = frame();
        let bytes = f.serialize();
        assert_eq!(bytes.len(), HEADER_LEN + 5);
        let parsed = EthernetFrame::parse(&bytes).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn parse_rejects_short_frames() {
        assert!(EthernetFrame::parse(&[0u8; 13]).is_err());
        assert!(EthernetFrame::parse(&[]).is_err());
        // Exactly a header with empty payload parses fine.
        let parsed = EthernetFrame::parse(&[0u8; 14]).unwrap();
        assert!(parsed.payload.is_empty());
    }

    #[test]
    fn wire_len_applies_minimum_padding() {
        let f = frame();
        // 14 + 5 + 4 = 23 -> padded to 64.
        assert_eq!(f.wire_len(), 64);
        assert_eq!(f.buffer_len(), 19);

        let big = EthernetFrame::new(
            MacAddress::local(1),
            MacAddress::local(2),
            ETHERTYPE_IPV4,
            vec![0; 1500],
        );
        assert_eq!(big.wire_len(), 1518);
    }

    #[test]
    fn test_frame_sizes_match_figure4() {
        let dst = MacAddress::local(1);
        let src = MacAddress::local(2);
        for size in [64usize, 1500, 9000] {
            let f = EthernetFrame::test_frame(dst, src, size, 0xAA);
            assert_eq!(f.wire_len(), size, "wire size {size}");
        }
        let min = EthernetFrame::test_frame(dst, src, 64, 0);
        assert_eq!(min.payload.len(), 46);
    }

    #[test]
    #[should_panic(expected = "below Ethernet minimum")]
    fn test_frame_rejects_tiny_sizes() {
        let _ = EthernetFrame::test_frame(MacAddress::local(1), MacAddress::local(2), 32, 0);
    }

    #[test]
    fn with_payload_preserves_addresses() {
        let f = frame();
        let g = f.with_payload(0x88B5, vec![9, 9]);
        assert_eq!(g.dst, f.dst);
        assert_eq!(g.src, f.src);
        assert_eq!(g.ethertype, 0x88B5);
        assert_eq!(g.payload, vec![9, 9]);
    }

    #[test]
    fn ethertype_is_big_endian_on_the_wire() {
        let f = frame();
        let bytes = f.serialize();
        assert_eq!(bytes[12], 0x08);
        assert_eq!(bytes[13], 0x00);
    }
}
