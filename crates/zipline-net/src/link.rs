//! Point-to-point link model.
//!
//! The testbed of the paper connects two servers to the programmable switch
//! at 100 Gbit/s. A [`LinkParams`] describes one direction of such a cable:
//! a line rate (used to compute per-frame serialization delay and to model
//! output queueing) and a fixed propagation delay.

use crate::time::{DataRate, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Parameters of one direction of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Line rate; frames occupy the link for `wire_len * 8 / rate`.
    pub rate: DataRate,
    /// Fixed propagation delay added after serialization.
    pub propagation: SimDuration,
}

impl LinkParams {
    /// A 100 Gbit/s link with a short (cable + PHY) propagation delay,
    /// approximating the direct-attach copper cables of the testbed.
    pub fn line_rate_100g() -> Self {
        Self {
            rate: DataRate::LINE_RATE_100G,
            propagation: SimDuration::from_nanos(350),
        }
    }

    /// An ideal link: no serialization or propagation delay. Useful in unit
    /// tests and for isolating processing latency.
    pub fn ideal() -> Self {
        Self {
            rate: DataRate::from_bps(0),
            propagation: SimDuration::ZERO,
        }
    }

    /// Builds a link with an explicit rate and propagation delay.
    pub fn new(rate: DataRate, propagation: SimDuration) -> Self {
        Self { rate, propagation }
    }

    /// Time the link is busy transmitting a frame of `wire_len` bytes.
    pub fn serialization_delay(&self, wire_len: usize) -> SimDuration {
        self.rate.serialization_delay(wire_len)
    }
}

/// Transmission bookkeeping for one link direction: tracks when the link
/// becomes free so that back-to-back frames queue behind each other.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkOccupancy {
    next_free: SimTime,
    /// Total bytes serialized onto the link.
    pub bytes_sent: u64,
    /// Total frames serialized onto the link.
    pub frames_sent: u64,
}

impl LinkOccupancy {
    /// Schedules a frame of `wire_len` bytes for transmission at `now` (or as
    /// soon as the link frees up) and returns the arrival time at the far
    /// end.
    pub fn transmit(&mut self, params: &LinkParams, now: SimTime, wire_len: usize) -> SimTime {
        let start = if self.next_free > now {
            self.next_free
        } else {
            now
        };
        let done = start + params.serialization_delay(wire_len);
        self.next_free = done;
        self.bytes_sent += wire_len as u64;
        self.frames_sent += 1;
        done + params.propagation
    }

    /// Time at which the link becomes idle again.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_delay_scales_with_frame_size() {
        let link = LinkParams::line_rate_100g();
        assert_eq!(link.serialization_delay(1500).as_nanos(), 120);
        assert!(link.serialization_delay(9000) > link.serialization_delay(1500));
        assert_eq!(
            LinkParams::ideal().serialization_delay(9000),
            SimDuration::ZERO
        );
    }

    #[test]
    fn transmit_accounts_for_queueing() {
        let params = LinkParams::new(DataRate::from_gbps(1.0), SimDuration::from_nanos(100));
        let mut occ = LinkOccupancy::default();
        // 1500 bytes at 1 Gbit/s = 12 µs serialization.
        let a1 = occ.transmit(&params, SimTime::ZERO, 1500);
        assert_eq!(a1.as_nanos(), 12_000 + 100);
        // Second frame sent "at the same time" must wait for the first.
        let a2 = occ.transmit(&params, SimTime::ZERO, 1500);
        assert_eq!(a2.as_nanos(), 24_000 + 100);
        assert_eq!(occ.frames_sent, 2);
        assert_eq!(occ.bytes_sent, 3000);
        assert_eq!(occ.next_free().as_nanos(), 24_000);
    }

    #[test]
    fn transmit_after_idle_period_does_not_queue() {
        let params = LinkParams::new(DataRate::from_gbps(1.0), SimDuration::ZERO);
        let mut occ = LinkOccupancy::default();
        occ.transmit(&params, SimTime::ZERO, 1500);
        // Much later, the link is free; no queueing delay.
        let arrival = occ.transmit(&params, SimTime::from_millis(1), 1500);
        assert_eq!(arrival.as_nanos(), 1_000_000 + 12_000);
    }

    #[test]
    fn ideal_link_is_instantaneous() {
        let params = LinkParams::ideal();
        let mut occ = LinkOccupancy::default();
        let arrival = occ.transmit(&params, SimTime::from_micros(5), 9000);
        assert_eq!(arrival, SimTime::from_micros(5));
    }
}
