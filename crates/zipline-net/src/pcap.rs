//! Classic libpcap trace files.
//!
//! The paper converts its datasets "to a pcap trace of Ethernet packets
//! containing the chunks as payload" and replays them at the switch. This
//! module reads and writes the classic libpcap format (magic `0xa1b2c3d4`,
//! microsecond timestamps, LINKTYPE_ETHERNET), which is enough to exchange
//! traces with tcpreplay/Wireshark.

use crate::error::{NetError, Result};
use crate::ethernet::EthernetFrame;
use crate::time::SimTime;
use std::io::{Read, Write};

/// Magic number of a classic little-endian pcap file with microsecond
/// timestamps.
const MAGIC_USEC_LE: u32 = 0xa1b2c3d4;
/// Magic read back when the file was written by a big-endian producer.
const MAGIC_USEC_BE: u32 = 0xd4c3b2a1;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;
/// Snap length we record (jumbo frames fit comfortably).
const SNAPLEN: u32 = 65_535;

/// One captured packet: capture timestamp plus raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapPacket {
    /// Capture timestamp.
    pub timestamp: SimTime,
    /// Raw packet bytes (Ethernet header + payload, no FCS).
    pub data: Vec<u8>,
}

impl PcapPacket {
    /// Builds a packet record from an Ethernet frame.
    pub fn from_frame(timestamp: SimTime, frame: &EthernetFrame) -> Self {
        Self {
            timestamp,
            data: frame.serialize(),
        }
    }

    /// Parses the record back into an Ethernet frame.
    pub fn to_frame(&self) -> Result<EthernetFrame> {
        EthernetFrame::parse(&self.data)
    }
}

/// Streaming pcap writer.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    inner: W,
    packets_written: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Creates a writer and emits the global pcap header.
    pub fn new(mut inner: W) -> Result<Self> {
        inner.write_all(&MAGIC_USEC_LE.to_le_bytes())?;
        inner.write_all(&2u16.to_le_bytes())?; // version major
        inner.write_all(&4u16.to_le_bytes())?; // version minor
        inner.write_all(&0i32.to_le_bytes())?; // thiszone
        inner.write_all(&0u32.to_le_bytes())?; // sigfigs
        inner.write_all(&SNAPLEN.to_le_bytes())?;
        inner.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(Self {
            inner,
            packets_written: 0,
        })
    }

    /// Appends one packet record.
    pub fn write_packet(&mut self, packet: &PcapPacket) -> Result<()> {
        let nanos = packet.timestamp.as_nanos();
        let ts_sec = (nanos / 1_000_000_000) as u32;
        let ts_usec = ((nanos % 1_000_000_000) / 1_000) as u32;
        let incl_len = packet.data.len().min(SNAPLEN as usize) as u32;
        let orig_len = packet.data.len() as u32;
        self.inner.write_all(&ts_sec.to_le_bytes())?;
        self.inner.write_all(&ts_usec.to_le_bytes())?;
        self.inner.write_all(&incl_len.to_le_bytes())?;
        self.inner.write_all(&orig_len.to_le_bytes())?;
        self.inner.write_all(&packet.data[..incl_len as usize])?;
        self.packets_written += 1;
        Ok(())
    }

    /// Convenience: appends an Ethernet frame with a timestamp.
    pub fn write_frame(&mut self, timestamp: SimTime, frame: &EthernetFrame) -> Result<()> {
        self.write_packet(&PcapPacket::from_frame(timestamp, frame))
    }

    /// Number of packets written so far.
    pub fn packets_written(&self) -> u64 {
        self.packets_written
    }

    /// Finishes writing and returns the underlying writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

/// Streaming pcap reader.
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    inner: R,
    /// True when the trace was produced on a big-endian machine and every
    /// header field must be byte-swapped.
    swapped: bool,
}

impl<R: Read> PcapReader<R> {
    /// Creates a reader, validating the global header.
    pub fn new(mut inner: R) -> Result<Self> {
        let mut header = [0u8; 24];
        inner.read_exact(&mut header)?;
        let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let swapped = match magic {
            MAGIC_USEC_LE => false,
            MAGIC_USEC_BE => true,
            other => {
                return Err(NetError::Malformed(format!(
                    "unsupported pcap magic {other:#x}"
                )))
            }
        };
        let linktype_bytes = [header[20], header[21], header[22], header[23]];
        let linktype = if swapped {
            u32::from_be_bytes(linktype_bytes)
        } else {
            u32::from_le_bytes(linktype_bytes)
        };
        if linktype != LINKTYPE_ETHERNET {
            return Err(NetError::Malformed(format!(
                "unsupported link type {linktype}, expected Ethernet"
            )));
        }
        Ok(Self { inner, swapped })
    }

    fn read_u32(&self, bytes: [u8; 4]) -> u32 {
        if self.swapped {
            u32::from_be_bytes(bytes)
        } else {
            u32::from_le_bytes(bytes)
        }
    }

    /// Reads the next packet record; `Ok(None)` at end of file.
    pub fn read_packet(&mut self) -> Result<Option<PcapPacket>> {
        let mut header = [0u8; 16];
        match self.inner.read_exact(&mut header) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        let ts_sec = self.read_u32([header[0], header[1], header[2], header[3]]) as u64;
        let ts_usec = self.read_u32([header[4], header[5], header[6], header[7]]) as u64;
        let incl_len = self.read_u32([header[8], header[9], header[10], header[11]]) as usize;
        if incl_len > SNAPLEN as usize {
            return Err(NetError::Malformed(format!(
                "packet record claims {incl_len} bytes, above the {SNAPLEN} snap length"
            )));
        }
        let mut data = vec![0u8; incl_len];
        self.inner.read_exact(&mut data)?;
        let timestamp = SimTime(ts_sec * 1_000_000_000 + ts_usec * 1_000);
        Ok(Some(PcapPacket { timestamp, data }))
    }

    /// Reads every remaining packet.
    pub fn read_all(&mut self) -> Result<Vec<PcapPacket>> {
        let mut out = Vec::new();
        while let Some(p) = self.read_packet()? {
            out.push(p);
        }
        Ok(out)
    }
}

/// Writes a whole trace to a byte buffer (useful for tests and in-memory
/// round trips).
pub fn write_trace(packets: &[PcapPacket]) -> Result<Vec<u8>> {
    let mut writer = PcapWriter::new(Vec::new())?;
    for p in packets {
        writer.write_packet(p)?;
    }
    Ok(writer.into_inner())
}

/// Reads a whole trace from a byte buffer.
pub fn read_trace(bytes: &[u8]) -> Result<Vec<PcapPacket>> {
    PcapReader::new(bytes)?.read_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ethernet::ETHERTYPE_IPV4;
    use crate::mac::MacAddress;

    fn sample_packets() -> Vec<PcapPacket> {
        (0..5u8)
            .map(|i| {
                let frame = EthernetFrame::new(
                    MacAddress::local(1),
                    MacAddress::local(2),
                    ETHERTYPE_IPV4,
                    vec![i; 10 + i as usize],
                );
                PcapPacket::from_frame(SimTime::from_micros(i as u64 * 100), &frame)
            })
            .collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let packets = sample_packets();
        let bytes = write_trace(&packets).unwrap();
        // Global header (24) + 5 * (16 + data).
        let expected_len = 24 + packets.iter().map(|p| 16 + p.data.len()).sum::<usize>();
        assert_eq!(bytes.len(), expected_len);
        let parsed = read_trace(&bytes).unwrap();
        assert_eq!(parsed, packets);
    }

    #[test]
    fn timestamps_survive_microsecond_rounding() {
        let frame = EthernetFrame::new(
            MacAddress::local(1),
            MacAddress::local(2),
            ETHERTYPE_IPV4,
            vec![0; 20],
        );
        // 1.5 s + 250 µs; nanosecond remainder is truncated by the format.
        let t = SimTime(1_500_250_123);
        let bytes = write_trace(&[PcapPacket::from_frame(t, &frame)]).unwrap();
        let parsed = read_trace(&bytes).unwrap();
        assert_eq!(parsed[0].timestamp.as_nanos(), 1_500_250_000);
    }

    #[test]
    fn frames_roundtrip_through_records() {
        let frame = EthernetFrame::new(
            MacAddress::local(3),
            MacAddress::local(4),
            0x88B5,
            vec![7; 33],
        );
        let record = PcapPacket::from_frame(SimTime::ZERO, &frame);
        assert_eq!(record.to_frame().unwrap(), frame);
    }

    #[test]
    fn reader_rejects_bad_magic() {
        let mut bytes = write_trace(&sample_packets()).unwrap();
        bytes[0] = 0x00;
        assert!(read_trace(&bytes).is_err());
    }

    #[test]
    fn reader_rejects_wrong_linktype() {
        let mut bytes = write_trace(&sample_packets()).unwrap();
        bytes[20] = 101; // LINKTYPE_RAW
        assert!(read_trace(&bytes).is_err());
    }

    #[test]
    fn reader_handles_truncated_file() {
        let bytes = write_trace(&sample_packets()).unwrap();
        // Cut in the middle of the last packet's data.
        let truncated = &bytes[..bytes.len() - 3];
        let mut reader = PcapReader::new(truncated).unwrap();
        let mut ok = 0;
        loop {
            match reader.read_packet() {
                Ok(Some(_)) => ok += 1,
                Ok(None) => break,
                Err(_) => break,
            }
        }
        assert_eq!(ok, 4, "four packets are intact, the fifth is truncated");
    }

    #[test]
    fn empty_trace_roundtrip() {
        let bytes = write_trace(&[]).unwrap();
        assert_eq!(bytes.len(), 24);
        assert!(read_trace(&bytes).unwrap().is_empty());
    }

    #[test]
    fn writer_counts_packets() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        assert_eq!(w.packets_written(), 0);
        for p in sample_packets() {
            w.write_packet(&p).unwrap();
        }
        assert_eq!(w.packets_written(), 5);
    }

    #[test]
    fn big_endian_traces_are_read() {
        // Hand-craft a big-endian global header + one record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_USEC_LE.to_be_bytes()); // reads back as swapped
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&0i32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&SNAPLEN.to_be_bytes());
        bytes.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        let data = vec![0xABu8; 20];
        bytes.extend_from_slice(&1u32.to_be_bytes()); // ts_sec
        bytes.extend_from_slice(&2u32.to_be_bytes()); // ts_usec
        bytes.extend_from_slice(&(data.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&(data.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&data);

        let packets = read_trace(&bytes).unwrap();
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].timestamp.as_nanos(), 1_000_002_000);
        assert_eq!(packets[0].data, data);
    }
}
