//! Simulation time and data-rate arithmetic.
//!
//! All simulation time is kept in integer nanoseconds to stay deterministic
//! across platforms. [`DataRate`] provides the conversions the experiments
//! need: serialization delay of a frame at a line rate, and achieved
//! throughput from byte/packet counts over an interval.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulation time, in nanoseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulation time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Builds a time from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds a time from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Nanoseconds since the start of the run.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since an earlier instant (saturating).
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from fractional seconds (rounded to nanoseconds).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The duration in nanoseconds.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// The duration in microseconds, as a float.
    pub fn as_micros_f64(&self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The duration in milliseconds, as a float.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in seconds, as a float.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{} ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3} µs", self.as_micros_f64())
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3} ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3} s", self.as_secs_f64())
        }
    }
}

/// A data rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DataRate {
    bits_per_second: u64,
}

impl DataRate {
    /// The 100 Gbit/s line rate of the paper's switch ports.
    pub const LINE_RATE_100G: DataRate = DataRate {
        bits_per_second: 100_000_000_000,
    };

    /// Builds a rate from bits per second.
    pub fn from_bps(bits_per_second: u64) -> Self {
        Self { bits_per_second }
    }

    /// Builds a rate from gigabits per second.
    pub fn from_gbps(gbps: f64) -> Self {
        Self {
            bits_per_second: (gbps * 1e9).round() as u64,
        }
    }

    /// Builds a rate from megabits per second.
    pub fn from_mbps(mbps: f64) -> Self {
        Self {
            bits_per_second: (mbps * 1e6).round() as u64,
        }
    }

    /// The rate in bits per second.
    pub fn bps(&self) -> u64 {
        self.bits_per_second
    }

    /// The rate in gigabits per second.
    pub fn as_gbps(&self) -> f64 {
        self.bits_per_second as f64 / 1e9
    }

    /// Time needed to serialize `bytes` bytes at this rate
    /// (rounded up to the next nanosecond; zero-rate links serialize
    /// instantaneously, which is useful for ideal-link tests).
    pub fn serialization_delay(&self, bytes: usize) -> SimDuration {
        if self.bits_per_second == 0 {
            return SimDuration::ZERO;
        }
        let bits = bytes as u128 * 8;
        let nanos = (bits * 1_000_000_000).div_ceil(self.bits_per_second as u128);
        SimDuration(nanos as u64)
    }

    /// Throughput achieved by transferring `bytes` bytes in `elapsed` time.
    pub fn from_transfer(bytes: u64, elapsed: SimDuration) -> Self {
        if elapsed.as_nanos() == 0 {
            return DataRate::from_bps(0);
        }
        let bits = bytes as u128 * 8;
        let bps = bits * 1_000_000_000 / elapsed.as_nanos() as u128;
        DataRate::from_bps(bps as u64)
    }

    /// Packet rate (packets per second) for `packets` packets in `elapsed`.
    pub fn packets_per_second(packets: u64, elapsed: SimDuration) -> f64 {
        if elapsed.as_nanos() == 0 {
            return 0.0;
        }
        packets as f64 / elapsed.as_secs_f64()
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits_per_second >= 1_000_000_000 {
            write!(f, "{:.2} Gbit/s", self.as_gbps())
        } else if self.bits_per_second >= 1_000_000 {
            write!(f, "{:.2} Mbit/s", self.bits_per_second as f64 / 1e6)
        } else {
            write!(f, "{} bit/s", self.bits_per_second)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_and_accessors() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert!((SimTime::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_nanos(9).as_nanos(), 9);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert!((SimDuration::from_millis(1).as_millis_f64() - 1.0).abs() < 1e-12);
        assert!((SimDuration::from_micros(1).as_micros_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        let d = t - SimTime::from_secs(1);
        assert_eq!(d, SimDuration::from_millis(500));
        // Saturating subtraction.
        assert_eq!(SimTime::ZERO - SimTime::from_secs(1), SimDuration::ZERO);
        assert_eq!(
            SimTime::from_secs(2).since(SimTime::from_secs(1)),
            SimDuration::from_secs(1)
        );

        let mut t = SimTime::ZERO;
        t += SimDuration::from_nanos(5);
        assert_eq!(t.as_nanos(), 5);

        let mut d = SimDuration::from_nanos(1);
        d += SimDuration::from_nanos(2);
        assert_eq!((d + SimDuration::from_nanos(3)).as_nanos(), 6);
    }

    #[test]
    fn serialization_delay_at_line_rate() {
        // 1500 bytes at 100 Gbit/s = 120 ns.
        let d = DataRate::LINE_RATE_100G.serialization_delay(1500);
        assert_eq!(d.as_nanos(), 120);
        // 64 bytes at 100 Gbit/s = 5.12 ns -> rounded up to 6 ns.
        let d = DataRate::LINE_RATE_100G.serialization_delay(64);
        assert_eq!(d.as_nanos(), 6);
        // 9000 bytes at 10 Gbit/s = 7.2 µs.
        let d = DataRate::from_gbps(10.0).serialization_delay(9000);
        assert_eq!(d.as_nanos(), 7200);
        // Zero rate = ideal link.
        assert_eq!(
            DataRate::from_bps(0).serialization_delay(1500),
            SimDuration::ZERO
        );
    }

    #[test]
    fn throughput_from_transfer() {
        // 125 MB in one second = 1 Gbit/s.
        let r = DataRate::from_transfer(125_000_000, SimDuration::from_secs(1));
        assert_eq!(r.bps(), 1_000_000_000);
        assert!((r.as_gbps() - 1.0).abs() < 1e-9);
        assert_eq!(DataRate::from_transfer(100, SimDuration::ZERO).bps(), 0);
    }

    #[test]
    fn packet_rate() {
        let pps = DataRate::packets_per_second(7_000_000, SimDuration::from_secs(1));
        assert!((pps - 7e6).abs() < 1.0);
        assert_eq!(DataRate::packets_per_second(10, SimDuration::ZERO), 0.0);
    }

    #[test]
    fn rate_constructors() {
        assert_eq!(DataRate::from_gbps(100.0), DataRate::LINE_RATE_100G);
        assert_eq!(DataRate::from_mbps(1.0).bps(), 1_000_000);
        assert_eq!(DataRate::from_bps(42).bps(), 42);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", DataRate::LINE_RATE_100G), "100.00 Gbit/s");
        assert_eq!(format!("{}", DataRate::from_mbps(5.0)), "5.00 Mbit/s");
        assert_eq!(format!("{}", DataRate::from_bps(10)), "10 bit/s");
        assert_eq!(format!("{}", SimDuration::from_nanos(10)), "10 ns");
        assert!(format!("{}", SimDuration::from_micros(3)).contains("µs"));
        assert!(format!("{}", SimDuration::from_millis(3)).contains("ms"));
        assert!(format!("{}", SimDuration::from_secs(3)).ends_with(" s"));
        assert!(format!("{}", SimTime::from_secs(1)).contains("1.000000 s"));
    }
}
