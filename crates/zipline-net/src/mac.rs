//! MAC addresses.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MacAddress(pub [u8; 6]);

impl MacAddress {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddress = MacAddress([0xFF; 6]);
    /// The all-zero address (invalid as a source, useful as a placeholder).
    pub const ZERO: MacAddress = MacAddress([0x00; 6]);

    /// Builds an address from its six octets.
    pub fn new(octets: [u8; 6]) -> Self {
        MacAddress(octets)
    }

    /// Builds a locally administered unicast address from a small integer,
    /// in the style the smoltcp examples use (`02-00-00-00-00-xx`).
    pub fn local(index: u8) -> Self {
        MacAddress([0x02, 0, 0, 0, 0, index])
    }

    /// The raw octets.
    pub fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// True for the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True for multicast addresses (I/G bit set), including broadcast.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for unicast addresses.
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast()
    }

    /// True when the locally-administered bit is set.
    pub fn is_locally_administered(&self) -> bool {
        self.0[0] & 0x02 != 0
    }
}

impl fmt::Display for MacAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// Error returned when parsing a MAC address from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError(pub String);

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address: {}", self.0)
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddress {
    type Err = ParseMacError;

    /// Parses `aa:bb:cc:dd:ee:ff` or `aa-bb-cc-dd-ee-ff`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = if s.contains(':') {
            s.split(':').collect()
        } else {
            s.split('-').collect()
        };
        if parts.len() != 6 {
            return Err(ParseMacError(s.to_string()));
        }
        let mut octets = [0u8; 6];
        for (i, part) in parts.iter().enumerate() {
            octets[i] = u8::from_str_radix(part, 16).map_err(|_| ParseMacError(s.to_string()))?;
        }
        Ok(MacAddress(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let mac = MacAddress::new([0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01]);
        assert_eq!(mac.to_string(), "de:ad:be:ef:00:01");
        assert_eq!("de:ad:be:ef:00:01".parse::<MacAddress>().unwrap(), mac);
        assert_eq!("de-ad-be-ef-00-01".parse::<MacAddress>().unwrap(), mac);
    }

    #[test]
    fn parse_errors() {
        assert!("de:ad:be:ef:00".parse::<MacAddress>().is_err());
        assert!("de:ad:be:ef:00:zz".parse::<MacAddress>().is_err());
        assert!("".parse::<MacAddress>().is_err());
        let err = "nope".parse::<MacAddress>().unwrap_err();
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn classification_bits() {
        assert!(MacAddress::BROADCAST.is_broadcast());
        assert!(MacAddress::BROADCAST.is_multicast());
        assert!(!MacAddress::BROADCAST.is_unicast());

        let unicast = MacAddress::new([0x00, 0x11, 0x22, 0x33, 0x44, 0x55]);
        assert!(unicast.is_unicast());
        assert!(!unicast.is_broadcast());
        assert!(!unicast.is_locally_administered());

        let local = MacAddress::local(2);
        assert!(local.is_unicast());
        assert!(local.is_locally_administered());
        assert_eq!(local.octets(), [0x02, 0, 0, 0, 0, 2]);

        let multicast = MacAddress::new([0x01, 0x00, 0x5E, 0, 0, 1]);
        assert!(multicast.is_multicast());
        assert!(!multicast.is_broadcast());
    }

    #[test]
    fn zero_address() {
        assert_eq!(MacAddress::ZERO.octets(), [0; 6]);
        assert!(MacAddress::ZERO.is_unicast());
    }
}
