//! Property tests pinning the word-parallel fast paths to their bit-serial
//! references.
//!
//! The PR-1 refactor rebuilt the GD hot path around packed `u64` words
//! (bulk `BitVec` ops, the slicing-by-8 CRC, the batch chunk encoder). Every
//! fast path keeps its slow counterpart in-tree as the semantic reference;
//! this suite asserts bit-exact equivalence on random inputs so any future
//! divergence is caught immediately.

use proptest::prelude::*;
use zipline_gd::bits::BitVec;
use zipline_gd::codec::{ChunkCodec, EncodeScratch, GdCompressor};
use zipline_gd::crc::CrcEngine;
use zipline_gd::hamming::HammingCode;
use zipline_gd::{GdConfig, HammingTransform};

/// Bit-serial reference for `BitVec::from_bytes`.
fn from_bytes_reference(bytes: &[u8]) -> BitVec {
    let mut v = BitVec::new();
    for &b in bytes {
        for i in (0..8).rev() {
            v.push((b >> i) & 1 == 1);
        }
    }
    v
}

/// Bit-serial reference for `BitVec::to_bytes`.
fn to_bytes_reference(bits: &BitVec) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for i in 0..bits.len() {
        if bits.get(i) {
            out[i / 8] |= 1 << (7 - (i % 8));
        }
    }
    out
}

fn bitvec_strategy(max_bits: usize) -> impl Strategy<Value = BitVec> {
    proptest::collection::vec(any::<bool>(), 0..max_bits)
        .prop_map(|bools| BitVec::from_bools(&bools))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `from_bytes` packs words identically to pushing every bit.
    #[test]
    fn from_bytes_matches_bit_serial_reference(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(BitVec::from_bytes(&bytes), from_bytes_reference(&bytes));
    }

    /// `to_bytes` round-trips `from_bytes` and matches the per-bit reference
    /// for arbitrary (non-byte-aligned) lengths.
    #[test]
    fn to_bytes_matches_bit_serial_reference(bits in bitvec_strategy(600)) {
        prop_assert_eq!(bits.to_bytes(), to_bytes_reference(&bits));
        // Byte-aligned vectors additionally round-trip through bytes.
        if bits.len().is_multiple_of(8) {
            prop_assert_eq!(BitVec::from_bytes(&bits.to_bytes()), bits);
        }
    }

    /// Word-wise slice/extend/get_bits agree with their per-bit definitions.
    #[test]
    fn bulk_bitvec_ops_match_per_bit_semantics(
        bits in bitvec_strategy(400),
        cut_seed in any::<u64>(),
    ) {
        if !bits.is_empty() {
            let start = (cut_seed % bits.len() as u64) as usize;
            let end = start + ((cut_seed >> 32) as usize % (bits.len() - start + 1));
            let sliced = bits.slice(start..end);
            prop_assert_eq!(sliced.len(), end - start);
            for i in 0..sliced.len() {
                prop_assert_eq!(sliced.get(i), bits.get(start + i));
            }
            let mut rejoined = bits.slice(0..start);
            rejoined.extend_from_bitvec(&sliced);
            rejoined.extend_from_bitvec(&bits.slice(end..bits.len()));
            prop_assert_eq!(rejoined, bits.clone());

            let width = ((cut_seed >> 16) as usize % 64 + 1).min(bits.len() - start);
            if width > 0 {
                let mut reference = 0u64;
                for i in 0..width {
                    reference = (reference << 1) | (bits.get(start + i) as u64);
                }
                prop_assert_eq!(bits.get_bits(start, width), reference);
            }
        }
    }

    /// The slicing-by-8 word CRC equals the bit-serial CRC for every Hamming
    /// parameter of Table 1 (`m ∈ 3..=8` plus the larger rows) on random
    /// messages of random lengths.
    #[test]
    fn checksum_words_equals_bit_serial_for_all_table1_parameters(
        bits in bitvec_strategy(700),
        m in 3u32..=15,
    ) {
        let code = HammingCode::new(m).unwrap();
        let engine: &CrcEngine = code.crc();
        prop_assert_eq!(
            engine.checksum_words(bits.words(), bits.len()),
            engine.compute_bits_serial(&bits),
            "m = {}", m
        );
    }

    /// `checksum_bit_range` equals slicing then running the reference.
    #[test]
    fn checksum_bit_range_equals_sliced_reference(
        bits in bitvec_strategy(500),
        cut_seed in any::<u64>(),
        m in 3u32..=10,
    ) {
        let code = HammingCode::new(m).unwrap();
        let engine = code.crc();
        if !bits.is_empty() {
            let start = (cut_seed % bits.len() as u64) as usize;
            let end = start + ((cut_seed >> 32) as usize % (bits.len() - start + 1));
            prop_assert_eq!(
                engine.checksum_bit_range(&bits, start, end),
                engine.compute_bits_serial(&bits.slice(start..end))
            );
        }
    }

    /// Hamming syndromes via the word path agree with the reference CRC, and
    /// the O(1) error-position lookup inverts them.
    #[test]
    fn syndrome_and_error_position_agree_with_reference(
        seed in any::<u64>(),
        m in 3u32..=10,
    ) {
        let code = HammingCode::new(m).unwrap();
        let mut state = seed;
        let mut word = BitVec::zeros(code.n());
        for i in 0..code.n() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if state >> 63 == 1 {
                word.set(i, true);
            }
        }
        let syndrome = code.syndrome(&word).unwrap();
        prop_assert_eq!(syndrome, code.crc().compute_bits_serial(&word));
        // Round-trip through the transform (deconstruct uses the word path,
        // reconstruct the algebraic zero-append).
        let transform = HammingTransform::from_code(code);
        let d = transform.deconstruct(&word).unwrap();
        prop_assert_eq!(transform.reconstruct(&d.basis, d.deviation).unwrap(), word);
    }

    /// The batch encoder is chunk-for-chunk identical to the per-chunk
    /// reference encoder, for the paper's parameters.
    #[test]
    fn encode_chunks_equals_per_chunk_encode(
        data in proptest::collection::vec(any::<u8>(), 0..700),
    ) {
        let config = GdConfig::paper_default();
        let codec = ChunkCodec::new(&config).unwrap();
        let mut scratch = EncodeScratch::new();
        let (encoded, tail) = codec.encode_chunks(&data, &mut scratch).unwrap();
        let chunk_bytes = config.chunk_bytes;
        prop_assert_eq!(encoded.len(), data.len() / chunk_bytes);
        prop_assert_eq!(tail, &data[data.len() - data.len() % chunk_bytes..]);
        for (i, enc) in encoded.iter().enumerate() {
            let reference = codec.encode_chunk(&data[i * chunk_bytes..(i + 1) * chunk_bytes]).unwrap();
            prop_assert_eq!(enc, &reference, "chunk {}", i);
            // And decode restores the original bytes.
            prop_assert_eq!(
                codec.decode_chunk(enc).unwrap(),
                &data[i * chunk_bytes..(i + 1) * chunk_bytes]
            );
        }
    }

    /// Batch compression (records + statistics) is equivalent to the
    /// per-chunk compressor loop, for a small parameter set too.
    #[test]
    fn compress_batch_equals_per_chunk_compressor(
        data in proptest::collection::vec(0u8..8, 0..300),
        m in 3u32..=8,
    ) {
        let config = GdConfig::for_parameters(m, 10).unwrap();
        let mut batch = GdCompressor::new(&config).unwrap();
        let stream = batch.compress_batch(&data).unwrap();

        let mut reference = GdCompressor::new(&config).unwrap();
        let chunk_bytes = config.chunk_bytes;
        let mut offset = 0;
        let mut index = 0;
        while offset + chunk_bytes <= data.len() {
            let record = reference.compress_chunk(&data[offset..offset + chunk_bytes]).unwrap();
            prop_assert_eq!(&stream.records[index], &record, "record {}", index);
            offset += chunk_bytes;
            index += 1;
        }
        prop_assert_eq!(zipline_gd::codec::decompress(&stream).unwrap(), data);
    }
}
