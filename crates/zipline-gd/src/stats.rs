//! Compression statistics.
//!
//! ZipLine "adds counters to provide easily-accessible statistics of the
//! inner-workings" (section 5): packets are classified according to how they
//! are transformed. This module provides the same accounting for both the
//! offline codec and the in-switch deployment, and is what the Figure 3
//! experiment reads out.

use serde::{Deserialize, Serialize};

/// Counters describing how a stream of chunks/packets was processed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Chunks that entered the encoder as raw (type 1) payloads.
    pub chunks_in: u64,
    /// Chunks emitted as *processed but uncompressed* (type 2) payloads
    /// (syndrome + basis) because their basis was not in the table.
    pub emitted_uncompressed: u64,
    /// Chunks emitted as *processed and compressed* (type 3) payloads
    /// (syndrome + identifier).
    pub emitted_compressed: u64,
    /// Chunks forwarded untouched (encoder bypass / non-matching packets).
    pub emitted_raw: u64,
    /// Digests sent to the control plane for unknown bases.
    pub digests_sent: u64,
    /// Basis → identifier mappings learned (installed in the encoder table).
    pub bases_learned: u64,
    /// Mappings evicted to make room for new ones.
    pub evictions: u64,
    /// Total payload bytes that entered the encoder.
    pub bytes_in: u64,
    /// Total payload bytes emitted after processing.
    pub bytes_out: u64,
    /// Chunks reconstructed by the decoder.
    pub chunks_decoded: u64,
    /// Decoder failures (unknown identifier, malformed payload).
    pub decode_failures: u64,
}

impl CompressionStats {
    /// A zeroed statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compression ratio: output bytes divided by input bytes
    /// (lower is better; 1.0 means no change). Returns `None` before any
    /// input has been processed.
    pub fn compression_ratio(&self) -> Option<f64> {
        if self.bytes_in == 0 {
            None
        } else {
            Some(self.bytes_out as f64 / self.bytes_in as f64)
        }
    }

    /// Space savings: `1 - compression_ratio`, e.g. `0.89` for the paper's
    /// synthetic dataset under dynamic learning.
    pub fn savings(&self) -> Option<f64> {
        self.compression_ratio().map(|r| 1.0 - r)
    }

    /// Total chunks emitted in any processed or raw form.
    pub fn chunks_out(&self) -> u64 {
        self.emitted_uncompressed + self.emitted_compressed + self.emitted_raw
    }

    /// Fraction of chunks that left the encoder in compressed (type 3) form.
    pub fn compressed_fraction(&self) -> Option<f64> {
        let out = self.chunks_out();
        if out == 0 {
            None
        } else {
            Some(self.emitted_compressed as f64 / out as f64)
        }
    }

    /// Adds another statistics block into this one (e.g. to combine per-port
    /// counters).
    pub fn merge(&mut self, other: &CompressionStats) {
        self.chunks_in += other.chunks_in;
        self.emitted_uncompressed += other.emitted_uncompressed;
        self.emitted_compressed += other.emitted_compressed;
        self.emitted_raw += other.emitted_raw;
        self.digests_sent += other.digests_sent;
        self.bases_learned += other.bases_learned;
        self.evictions += other.evictions;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.chunks_decoded += other.chunks_decoded;
        self.decode_failures += other.decode_failures;
    }

    /// Consistency check: every chunk that came in must have left in exactly
    /// one of the three forms.
    pub fn is_consistent(&self) -> bool {
        self.chunks_in == self.chunks_out()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_savings() {
        let mut s = CompressionStats::new();
        assert_eq!(s.compression_ratio(), None);
        assert_eq!(s.savings(), None);
        s.bytes_in = 100;
        s.bytes_out = 9;
        assert!((s.compression_ratio().unwrap() - 0.09).abs() < 1e-12);
        assert!((s.savings().unwrap() - 0.91).abs() < 1e-12);
    }

    #[test]
    fn consistency_check() {
        let mut s = CompressionStats::new();
        s.chunks_in = 10;
        s.emitted_compressed = 6;
        s.emitted_uncompressed = 3;
        assert!(!s.is_consistent());
        s.emitted_raw = 1;
        assert!(s.is_consistent());
        assert_eq!(s.chunks_out(), 10);
    }

    #[test]
    fn compressed_fraction() {
        let mut s = CompressionStats::new();
        assert_eq!(s.compressed_fraction(), None);
        s.emitted_compressed = 3;
        s.emitted_uncompressed = 1;
        assert!((s.compressed_fraction().unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = CompressionStats {
            chunks_in: 1,
            emitted_uncompressed: 2,
            emitted_compressed: 3,
            emitted_raw: 4,
            digests_sent: 5,
            bases_learned: 6,
            evictions: 7,
            bytes_in: 8,
            bytes_out: 9,
            chunks_decoded: 10,
            decode_failures: 11,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.chunks_in, 2);
        assert_eq!(a.emitted_uncompressed, 4);
        assert_eq!(a.emitted_compressed, 6);
        assert_eq!(a.emitted_raw, 8);
        assert_eq!(a.digests_sent, 10);
        assert_eq!(a.bases_learned, 12);
        assert_eq!(a.evictions, 14);
        assert_eq!(a.bytes_in, 16);
        assert_eq!(a.bytes_out, 18);
        assert_eq!(a.chunks_decoded, 20);
        assert_eq!(a.decode_failures, 22);
    }
}
