//! The basis ↔ identifier dictionary.
//!
//! ZipLine replaces `syndrome + basis` pairs with `syndrome + identifier`
//! once a basis has been seen. The pool of identifiers is finite
//! (`2^id_bits`, 32 768 for the paper's parameters) and managed by the
//! control plane:
//!
//! * when unused identifiers remain, the *least recently used* unused
//!   identifier is assigned to a newly discovered basis;
//! * when every identifier is in use, a least-recently-used eviction policy
//!   recycles an identifier, helped by the per-table-entry time-to-live
//!   feature of TNA (section 5 of the paper).
//!
//! The dictionary uses a logical clock supplied by the caller (the control
//! plane passes simulation time in nanoseconds); it never reads wall-clock
//! time itself, which keeps the data structure deterministic and testable.

use crate::bits::BitVec;
use crate::error::{GdError, Result};
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

/// Pass-through hasher for keys that are already well-mixed 64-bit hashes
/// (the output of [`BitVec::hash_words`]). Avoids running SipHash over a
/// value that has been through a full avalanche mixer already.
#[derive(Debug, Default, Clone, Copy)]
pub struct PassthroughHasher(u64);

impl Hasher for PassthroughHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only reached for non-u64 keys; fold bytes in so the hasher stays
        // correct if ever used generically.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = value;
    }
}

type PassthroughState = BuildHasherDefault<PassthroughHasher>;

/// Bucket of identifiers whose bases share a 64-bit [`BitVec::hash_words`]
/// value. Collisions are vanishingly rare, so the bucket is almost always a
/// single element; a `Vec` keeps the structure correct when they do happen.
type IdBucket = Vec<u64>;

/// Outcome of inserting a basis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Identifier now mapping to the basis.
    pub id: u64,
    /// True if the basis was already present (the identifier was refreshed,
    /// not newly assigned).
    pub already_known: bool,
    /// Basis/identifier pair that was evicted to make room, if any.
    pub evicted: Option<(u64, BitVec)>,
}

/// One live mapping in a [`BasisDictionaryState`] export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictionaryEntryState {
    /// Identifier of the mapping.
    pub id: u64,
    /// The stored basis.
    pub basis: BitVec,
    /// Logical time of last use.
    pub last_used: u64,
    /// Logical time of insertion.
    pub inserted_at: u64,
}

/// The complete behavioural state of a [`BasisDictionary`].
///
/// Everything that influences *future* behaviour is captured: the live
/// mappings with their recency metadata (in MRU → LRU list order), the
/// identifier pools, and the cumulative counters. Restoring this state via
/// [`BasisDictionary::from_state`] yields a dictionary whose subsequent
/// operations are bit-identical to the original's — the invariant the
/// persistence layer's checkpoint records rely on. The basis-hash buckets
/// are derived data and deliberately absent.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BasisDictionaryState {
    /// Live entries in MRU → LRU order (head of the recency list first).
    pub entries: Vec<DictionaryEntryState>,
    /// Lowest identifier never handed out.
    pub next_fresh: u64,
    /// Released identifiers, oldest release first.
    pub released: Vec<u64>,
    /// Cumulative evictions.
    pub evictions: u64,
    /// Cumulative TTL expirations.
    pub expirations: u64,
}

/// Eviction policy for a full dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the least recently *used* mapping (the paper's policy).
    #[default]
    Lru,
    /// Evict the oldest inserted mapping regardless of use
    /// (ablation baseline).
    Fifo,
}

#[derive(Debug, Clone)]
struct Entry {
    basis: BitVec,
    /// Cached `basis.hash_words()`, so removal can find the hash bucket
    /// without re-hashing.
    basis_hash: u64,
    /// Logical time of last use (lookup or insert).
    last_used: u64,
    /// Logical time of insertion (for FIFO ablation and statistics).
    inserted_at: u64,
    /// Doubly-linked LRU list: more recently used neighbour.
    prev: Option<u64>,
    /// Less recently used neighbour.
    next: Option<u64>,
}

/// Bounded bidirectional basis ↔ identifier map with LRU (or FIFO) eviction
/// and optional idle time-to-live.
#[derive(Debug, Clone)]
pub struct BasisDictionary {
    capacity: usize,
    policy: EvictionPolicy,
    /// Idle TTL in logical time units; entries idle longer than this are
    /// dropped by [`expire_idle`](Self::expire_idle). `None` disables TTL.
    idle_ttl: Option<u64>,
    /// Basis → identifier index, bucketed by the word-parallel basis hash.
    /// The 64-bit key has already been through a full mixer
    /// ([`BitVec::hash_words`]), so the map uses a pass-through hasher and a
    /// probe costs a word comparison instead of SipHash over the whole basis.
    by_basis: HashMap<u64, IdBucket, PassthroughState>,
    /// Entry slab indexed by identifier. Identifiers are dense in
    /// `0..capacity`, so id → entry resolution (and every hop of the LRU
    /// list) is a vector index instead of a hash probe. Grown lazily as
    /// fresh identifiers are handed out.
    slots: Vec<Option<Entry>>,
    /// Number of live mappings.
    len: usize,
    /// Most recently used entry.
    head: Option<u64>,
    /// Least recently used entry.
    tail: Option<u64>,
    /// Lowest identifier that has never been assigned; fresh identifiers are
    /// handed out in ascending order (`next_fresh..capacity` is the
    /// never-used pool).
    next_fresh: u64,
    /// Identifiers released by eviction or expiry, oldest release first
    /// ("the control plane selects the least recently used one" among the
    /// unused identifiers).
    released: VecDeque<u64>,
    /// Cumulative number of evictions (for statistics).
    evictions: u64,
    /// Cumulative number of TTL expirations.
    expirations: u64,
}

impl BasisDictionary {
    /// Creates a dictionary holding up to `capacity` mappings.
    pub fn new(capacity: usize) -> Self {
        Self::with_policy(capacity, EvictionPolicy::Lru, None)
    }

    /// Creates a dictionary sized for `id_bits`-bit identifiers
    /// (capacity `2^id_bits`).
    pub fn with_id_bits(id_bits: u32) -> Self {
        Self::new(1usize << id_bits)
    }

    /// Creates a dictionary with an explicit eviction policy and optional
    /// idle TTL (logical time units).
    pub fn with_policy(capacity: usize, policy: EvictionPolicy, idle_ttl: Option<u64>) -> Self {
        assert!(capacity > 0, "dictionary capacity must be positive");
        Self {
            capacity,
            policy,
            idle_ttl,
            by_basis: HashMap::default(),
            slots: Vec::new(),
            len: 0,
            head: None,
            tail: None,
            next_fresh: 0,
            released: VecDeque::new(),
            evictions: 0,
            expirations: 0,
        }
    }

    /// Maximum number of mappings.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of mappings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no mapping is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Live entry for an identifier, if any.
    fn entry(&self, id: u64) -> Option<&Entry> {
        self.slots.get(id as usize)?.as_ref()
    }

    /// Live entry for an identifier that is known to exist.
    fn entry_ref(&self, id: u64) -> &Entry {
        self.slots[id as usize].as_ref().expect("live entry")
    }

    /// Mutable live entry for an identifier that is known to exist.
    fn entry_mut(&mut self, id: u64) -> &mut Entry {
        self.slots[id as usize].as_mut().expect("live entry")
    }

    /// True when every identifier is in use.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    /// Number of evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of TTL expirations performed so far.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// Looks up the identifier of a basis. When `touch` is set, the entry is
    /// marked as used at time `now` (moving it to the front of the LRU list).
    pub fn lookup_basis(&mut self, basis: &BitVec, now: u64, touch: bool) -> Option<u64> {
        self.lookup_basis_hashed(basis, basis.hash_words(), now, touch)
    }

    /// [`Self::lookup_basis`] with a caller-supplied, precomputed
    /// [`BitVec::hash_words`] value, so hot paths that already carry the
    /// hash (e.g. `EncodedChunk::basis_hash`) skip re-hashing the basis.
    pub fn lookup_basis_hashed(
        &mut self,
        basis: &BitVec,
        hash: u64,
        now: u64,
        touch: bool,
    ) -> Option<u64> {
        let id = self.find_id(basis, hash)?;
        if touch {
            self.touch(id, now);
        }
        Some(id)
    }

    /// Looks up the identifier of a basis without updating recency.
    pub fn peek_basis(&self, basis: &BitVec) -> Option<u64> {
        self.find_id(basis, basis.hash_words())
    }

    /// Resolves a basis to its identifier through the hash buckets.
    fn find_id(&self, basis: &BitVec, hash: u64) -> Option<u64> {
        self.by_basis
            .get(&hash)?
            .iter()
            .copied()
            .find(|&id| self.entry_ref(id).basis == *basis)
    }

    /// Looks up the basis mapped to an identifier. When `touch` is set, the
    /// entry is marked as used at time `now`.
    pub fn lookup_id(&mut self, id: u64, now: u64, touch: bool) -> Option<BitVec> {
        self.lookup_id_ref(id, now, touch).cloned()
    }

    /// Borrowing form of [`Self::lookup_id`]: touches the entry (when asked)
    /// and returns a reference to the stored basis instead of cloning it.
    /// The batch decode path uses this to stay allocation-free per record.
    pub fn lookup_id_ref(&mut self, id: u64, now: u64, touch: bool) -> Option<&BitVec> {
        self.entry(id)?;
        if touch {
            self.touch(id, now);
        }
        Some(&self.entry_ref(id).basis)
    }

    /// Looks up the basis for an identifier without updating recency.
    pub fn peek_id(&self, id: u64) -> Option<&BitVec> {
        self.entry(id).map(|e| &e.basis)
    }

    /// Inserts a basis, assigning it an identifier. If the basis is already
    /// present its existing identifier is refreshed. If the dictionary is
    /// full, a mapping is evicted according to the configured policy.
    pub fn insert(&mut self, basis: BitVec, now: u64) -> Result<InsertOutcome> {
        let hash = basis.hash_words();
        self.insert_hashed(basis, hash, now)
    }

    /// [`Self::insert`] with a caller-supplied, precomputed
    /// [`BitVec::hash_words`] value.
    pub fn insert_hashed(&mut self, basis: BitVec, hash: u64, now: u64) -> Result<InsertOutcome> {
        debug_assert_eq!(hash, basis.hash_words(), "stale basis hash");
        if let Some(id) = self.find_id(&basis, hash) {
            self.touch(id, now);
            return Ok(InsertOutcome {
                id,
                already_known: true,
                evicted: None,
            });
        }

        let mut evicted = None;
        if self.is_full() {
            let victim = match self.policy {
                EvictionPolicy::Lru => self.tail.expect("full dictionary has a tail"),
                EvictionPolicy::Fifo => self.oldest_inserted().expect("full dictionary non-empty"),
            };
            let old = self.remove_entry(victim);
            self.evictions += 1;
            evicted = Some((victim, old));
            // The released identifier is the one we hand right back out, so do
            // not queue it; reuse it directly.
            let id = victim;
            self.install(id, basis, hash, now);
            return Ok(InsertOutcome {
                id,
                already_known: false,
                evicted,
            });
        }

        let id = self.allocate_id().ok_or(GdError::DictionaryFull)?;
        self.install(id, basis, hash, now);
        Ok(InsertOutcome {
            id,
            already_known: false,
            evicted,
        })
    }

    /// Removes the mapping for `id`, returning its basis.
    pub fn remove_id(&mut self, id: u64) -> Option<BitVec> {
        self.entry(id)?;
        let basis = self.remove_entry(id);
        self.released.push_back(id);
        Some(basis)
    }

    /// Drops every mapping that has been idle for longer than the configured
    /// TTL, mirroring TNA's per-table-entry ageing. Returns the identifiers
    /// expired. No-op when no TTL is configured.
    pub fn expire_idle(&mut self, now: u64) -> Vec<u64> {
        let Some(ttl) = self.idle_ttl else {
            return Vec::new();
        };
        let mut expired = Vec::new();
        // Walk from the LRU end; stop at the first entry that is fresh.
        while let Some(tail) = self.tail {
            let idle = now.saturating_sub(self.entry_ref(tail).last_used);
            if idle <= ttl {
                break;
            }
            self.remove_entry(tail);
            self.released.push_back(tail);
            self.expirations += 1;
            expired.push(tail);
        }
        expired
    }

    /// Identifier of the least recently used mapping, if any.
    pub fn lru_id(&self) -> Option<u64> {
        self.tail
    }

    /// Identifier of the most recently used mapping, if any.
    pub fn mru_id(&self) -> Option<u64> {
        self.head
    }

    /// Iterates over `(id, basis)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &BitVec)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(id, slot)| slot.as_ref().map(|e| (id as u64, &e.basis)))
    }

    /// Clears all mappings, returning identifiers to the never-used pool.
    pub fn clear(&mut self) {
        self.by_basis.clear();
        self.slots.clear();
        self.len = 0;
        self.head = None;
        self.tail = None;
        self.next_fresh = 0;
        self.released.clear();
    }

    /// Exports the complete behavioural state (see
    /// [`BasisDictionaryState`]). Entries come out in MRU → LRU order.
    pub fn export_state(&self) -> BasisDictionaryState {
        let mut entries = Vec::with_capacity(self.len);
        let mut cursor = self.head;
        while let Some(id) = cursor {
            let e = self.entry_ref(id);
            entries.push(DictionaryEntryState {
                id,
                basis: e.basis.clone(),
                last_used: e.last_used,
                inserted_at: e.inserted_at,
            });
            cursor = e.next;
        }
        BasisDictionaryState {
            entries,
            next_fresh: self.next_fresh,
            released: self.released.iter().copied().collect(),
            evictions: self.evictions,
            expirations: self.expirations,
        }
    }

    /// Rebuilds a dictionary from an exported state. The result behaves
    /// bit-identically to the dictionary [`Self::export_state`] was called
    /// on: same LRU order, same recency timestamps, same identifier pools,
    /// same counters. Structural inconsistencies (identifier out of range,
    /// duplicates, pool overlap) are rejected loudly — the persistence
    /// layer's "never silently misrestore" rule.
    pub fn from_state(
        capacity: usize,
        policy: EvictionPolicy,
        idle_ttl: Option<u64>,
        state: &BasisDictionaryState,
    ) -> Result<Self> {
        if state.entries.len() > capacity {
            return Err(GdError::InvalidConfig(format!(
                "dictionary state holds {} entries but capacity is {capacity}",
                state.entries.len()
            )));
        }
        let mut d = Self::with_policy(capacity, policy, idle_ttl);
        // Install LRU-first: each link_front pushes in front of the previous
        // entry, so the export's first (MRU) entry ends at the head.
        for e in state.entries.iter().rev() {
            if e.id >= capacity as u64 {
                return Err(GdError::InvalidConfig(format!(
                    "dictionary state id {} out of range 0..{capacity}",
                    e.id
                )));
            }
            if e.id >= state.next_fresh {
                return Err(GdError::InvalidConfig(format!(
                    "dictionary state id {} was never allocated (next_fresh {})",
                    e.id, state.next_fresh
                )));
            }
            if d.entry(e.id).is_some() {
                return Err(GdError::InvalidConfig(format!(
                    "dictionary state repeats id {}",
                    e.id
                )));
            }
            let hash = e.basis.hash_words();
            d.install_with_times(e.id, e.basis.clone(), hash, e.last_used, e.inserted_at);
        }
        for &id in &state.released {
            if id >= state.next_fresh || d.entry(id).is_some() {
                return Err(GdError::InvalidConfig(format!(
                    "released id {id} is live or was never allocated"
                )));
            }
        }
        d.next_fresh = state.next_fresh.min(capacity as u64);
        d.released = state.released.iter().copied().collect();
        d.evictions = state.evictions;
        d.expirations = state.expirations;
        Ok(d)
    }

    /// Installs `basis` at an *explicit* identifier — the event-replay
    /// primitive behind delta-fold recovery. An occupied slot is replaced in
    /// place (its identifier is not released); a free slot is claimed from
    /// whichever pool holds it. Replayed events arrive in allocation order,
    /// so an identifier past `next_fresh` indicates a corrupt or reordered
    /// event stream and fails loudly.
    pub fn install_at(&mut self, id: u64, basis: BitVec, now: u64) -> Result<()> {
        if id >= self.capacity as u64 {
            return Err(GdError::InvalidConfig(format!(
                "install_at id {id} out of range 0..{}",
                self.capacity
            )));
        }
        let hash = basis.hash_words();
        if self.entry(id).is_some() {
            self.remove_entry(id);
        } else if id == self.next_fresh {
            self.next_fresh += 1;
        } else if id > self.next_fresh {
            return Err(GdError::InvalidConfig(format!(
                "install_at id {id} skips ahead of next_fresh {} — \
                 event stream is corrupt or reordered",
                self.next_fresh
            )));
        } else {
            self.released.retain(|&r| r != id);
        }
        self.install(id, basis, hash, now);
        Ok(())
    }

    fn allocate_id(&mut self) -> Option<u64> {
        // Prefer identifiers that have never been used; otherwise take the
        // identifier that has been unused the longest.
        if self.next_fresh < self.capacity as u64 {
            let id = self.next_fresh;
            self.next_fresh += 1;
            Some(id)
        } else {
            self.released.pop_front()
        }
    }

    fn install(&mut self, id: u64, basis: BitVec, hash: u64, now: u64) {
        self.install_with_times(id, basis, hash, now, now);
    }

    fn install_with_times(
        &mut self,
        id: u64,
        basis: BitVec,
        hash: u64,
        last_used: u64,
        inserted_at: u64,
    ) {
        self.by_basis.entry(hash).or_default().push(id);
        let idx = id as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        self.slots[idx] = Some(Entry {
            basis,
            basis_hash: hash,
            last_used,
            inserted_at,
            prev: None,
            next: None,
        });
        self.len += 1;
        self.link_front(id);
    }

    fn remove_entry(&mut self, id: u64) -> BitVec {
        self.unlink(id);
        let entry = self.slots[id as usize].take().expect("entry exists");
        self.len -= 1;
        let bucket = self
            .by_basis
            .get_mut(&entry.basis_hash)
            .expect("hash bucket exists");
        bucket.retain(|&bucket_id| bucket_id != id);
        if bucket.is_empty() {
            self.by_basis.remove(&entry.basis_hash);
        }
        entry.basis
    }

    fn touch(&mut self, id: u64, now: u64) {
        let e = self.entry_mut(id);
        e.last_used = now;
        // Fast path: already the most recently used entry.
        if self.head == Some(id) {
            return;
        }
        self.unlink(id);
        self.link_front(id);
    }

    fn oldest_inserted(&self) -> Option<u64> {
        self.iter()
            .map(|(id, _)| id)
            .min_by_key(|&id| (self.entry_ref(id).inserted_at, id))
    }

    fn unlink(&mut self, id: u64) {
        let (prev, next) = {
            let e = self.entry_ref(id);
            (e.prev, e.next)
        };
        match prev {
            Some(p) => self.entry_mut(p).next = next,
            None => self.head = next,
        }
        match next {
            Some(nx) => self.entry_mut(nx).prev = prev,
            None => self.tail = prev,
        }
        let e = self.entry_mut(id);
        e.prev = None;
        e.next = None;
    }

    fn link_front(&mut self, id: u64) {
        let old_head = self.head;
        {
            let e = self.entry_mut(id);
            e.prev = None;
            e.next = old_head;
        }
        if let Some(h) = old_head {
            self.entry_mut(h).prev = Some(id);
        }
        self.head = Some(id);
        if self.tail.is_none() {
            self.tail = Some(id);
        }
    }

    /// Internal consistency check used by tests and debug assertions.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let live: usize = self.slots.iter().filter(|s| s.is_some()).count();
        assert_eq!(live, self.len, "len counter matches live slots");
        let bucketed: usize = self.by_basis.values().map(|b| b.len()).sum();
        assert_eq!(bucketed, self.len, "hash buckets cover every id");
        for (hash, bucket) in &self.by_basis {
            assert!(!bucket.is_empty(), "empty bucket left behind");
            for &id in bucket {
                let entry = self.entry(id).expect("bucketed id exists");
                assert_eq!(entry.basis_hash, *hash, "entry hash matches bucket");
                assert_eq!(entry.basis.hash_words(), *hash, "cached hash is fresh");
            }
        }
        assert!(self.len <= self.capacity);
        // The LRU list must contain exactly the stored ids.
        let mut seen = 0usize;
        let mut cursor = self.head;
        let mut prev = None;
        while let Some(id) = cursor {
            let e = self.entry_ref(id);
            assert_eq!(e.prev, prev, "prev link of {id}");
            prev = Some(id);
            cursor = e.next;
            seen += 1;
            assert!(seen <= self.len, "cycle in LRU list");
        }
        assert_eq!(seen, self.len, "LRU list length");
        assert_eq!(self.tail, prev, "tail pointer");
        // Identifier pools and live ids never overlap.
        for (id, _) in self.iter() {
            assert!(id < self.next_fresh, "live id was handed out");
            assert!(!self.released.contains(&id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basis(v: u64) -> BitVec {
        BitVec::from_u64(v, 16)
    }

    #[test]
    fn insert_and_lookup_roundtrip() {
        let mut d = BasisDictionary::new(8);
        let out = d.insert(basis(1), 10).unwrap();
        assert!(!out.already_known);
        assert!(out.evicted.is_none());
        let id = out.id;
        assert_eq!(d.lookup_basis(&basis(1), 11, true), Some(id));
        assert_eq!(d.lookup_id(id, 12, false), Some(basis(1)));
        assert_eq!(d.peek_id(id), Some(&basis(1)));
        assert_eq!(d.peek_basis(&basis(1)), Some(id));
        assert_eq!(d.len(), 1);
        d.check_invariants();
    }

    #[test]
    fn reinserting_known_basis_keeps_id() {
        let mut d = BasisDictionary::new(4);
        let first = d.insert(basis(7), 1).unwrap();
        let second = d.insert(basis(7), 2).unwrap();
        assert!(second.already_known);
        assert_eq!(first.id, second.id);
        assert_eq!(d.len(), 1);
        d.check_invariants();
    }

    #[test]
    fn identifiers_are_assigned_from_never_used_pool_first() {
        let mut d = BasisDictionary::new(4);
        let ids: Vec<u64> = (0..4).map(|i| d.insert(basis(i), i).unwrap().id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert!(d.is_full());
        d.check_invariants();
    }

    #[test]
    fn lru_eviction_removes_least_recently_used() {
        let mut d = BasisDictionary::new(3);
        let id_a = d.insert(basis(0xA), 1).unwrap().id;
        let _id_b = d.insert(basis(0xB), 2).unwrap().id;
        let _id_c = d.insert(basis(0xC), 3).unwrap().id;
        // Touch A so that B becomes the LRU.
        assert!(d.lookup_basis(&basis(0xA), 4, true).is_some());
        let out = d.insert(basis(0xD), 5).unwrap();
        let (evicted_id, evicted_basis) = out.evicted.expect("eviction expected");
        assert_eq!(evicted_basis, basis(0xB));
        // The recycled identifier is handed to the new basis.
        assert_eq!(out.id, evicted_id);
        assert_eq!(d.lookup_basis(&basis(0xB), 6, false), None);
        assert_eq!(d.lookup_basis(&basis(0xA), 6, false), Some(id_a));
        assert_eq!(d.evictions(), 1);
        d.check_invariants();
    }

    #[test]
    fn fifo_eviction_removes_oldest_insert() {
        let mut d = BasisDictionary::with_policy(3, EvictionPolicy::Fifo, None);
        d.insert(basis(1), 1).unwrap();
        d.insert(basis(2), 2).unwrap();
        d.insert(basis(3), 3).unwrap();
        // Touching the oldest entry does not save it under FIFO.
        d.lookup_basis(&basis(1), 10, true);
        let out = d.insert(basis(4), 11).unwrap();
        assert_eq!(out.evicted.unwrap().1, basis(1));
        d.check_invariants();
    }

    #[test]
    fn lookup_without_touch_does_not_change_recency() {
        let mut d = BasisDictionary::new(2);
        d.insert(basis(1), 1).unwrap();
        d.insert(basis(2), 2).unwrap();
        // Peek at basis 1 without touching; it must remain the LRU victim.
        assert!(d.lookup_basis(&basis(1), 3, false).is_some());
        let out = d.insert(basis(3), 4).unwrap();
        assert_eq!(out.evicted.unwrap().1, basis(1));
        d.check_invariants();
    }

    #[test]
    fn lookup_id_touch_changes_recency() {
        let mut d = BasisDictionary::new(2);
        let id1 = d.insert(basis(1), 1).unwrap().id;
        d.insert(basis(2), 2).unwrap();
        // Touch id1 via id lookup: basis 2 becomes the victim.
        assert_eq!(d.lookup_id(id1, 3, true), Some(basis(1)));
        let out = d.insert(basis(3), 4).unwrap();
        assert_eq!(out.evicted.unwrap().1, basis(2));
        d.check_invariants();
    }

    #[test]
    fn remove_id_releases_identifier_for_reuse() {
        let mut d = BasisDictionary::new(2);
        let id1 = d.insert(basis(1), 1).unwrap().id;
        let _id2 = d.insert(basis(2), 2).unwrap().id;
        assert_eq!(d.remove_id(id1), Some(basis(1)));
        assert_eq!(d.remove_id(id1), None);
        assert_eq!(d.len(), 1);
        // The freed identifier is reused for the next insert.
        let id3 = d.insert(basis(3), 3).unwrap().id;
        assert_eq!(id3, id1);
        d.check_invariants();
    }

    #[test]
    fn expire_idle_drops_stale_entries_only() {
        let mut d = BasisDictionary::with_policy(8, EvictionPolicy::Lru, Some(100));
        d.insert(basis(1), 0).unwrap();
        d.insert(basis(2), 50).unwrap();
        d.insert(basis(3), 90).unwrap();
        let expired = d.expire_idle(160);
        // Entries idle for more than 100 units at t=160: basis 1 (idle 160),
        // basis 2 (idle 110). Basis 3 is idle 70 and survives.
        assert_eq!(expired.len(), 2);
        assert_eq!(d.len(), 1);
        assert!(d.peek_basis(&basis(3)).is_some());
        assert_eq!(d.expirations(), 2);
        d.check_invariants();
    }

    #[test]
    fn expire_idle_without_ttl_is_noop() {
        let mut d = BasisDictionary::new(4);
        d.insert(basis(1), 0).unwrap();
        assert!(d.expire_idle(u64::MAX).is_empty());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn expired_identifiers_are_recycled_least_recently_released_first() {
        let mut d = BasisDictionary::with_policy(4, EvictionPolicy::Lru, Some(10));
        let id_a = d.insert(basis(0xA), 0).unwrap().id;
        let id_b = d.insert(basis(0xB), 1).unwrap().id;
        d.expire_idle(100);
        assert_eq!(d.len(), 0);
        // Never-used ids 2 and 3 are preferred before recycling a and b.
        let id_c = d.insert(basis(0xC), 101).unwrap().id;
        let id_d = d.insert(basis(0xD), 102).unwrap().id;
        assert_eq!(id_c, 2);
        assert_eq!(id_d, 3);
        // Then the released ids come back in release order (a before b).
        let id_e = d.insert(basis(0xE), 103).unwrap().id;
        let id_f = d.insert(basis(0xF), 104).unwrap().id;
        assert_eq!(id_e, id_a);
        assert_eq!(id_f, id_b);
        d.check_invariants();
    }

    #[test]
    fn mru_and_lru_tracking() {
        let mut d = BasisDictionary::new(4);
        let id1 = d.insert(basis(1), 1).unwrap().id;
        let id2 = d.insert(basis(2), 2).unwrap().id;
        assert_eq!(d.mru_id(), Some(id2));
        assert_eq!(d.lru_id(), Some(id1));
        d.lookup_basis(&basis(1), 3, true);
        assert_eq!(d.mru_id(), Some(id1));
        assert_eq!(d.lru_id(), Some(id2));
    }

    #[test]
    fn clear_resets_pools() {
        let mut d = BasisDictionary::new(2);
        d.insert(basis(1), 1).unwrap();
        d.insert(basis(2), 2).unwrap();
        d.clear();
        assert!(d.is_empty());
        let id = d.insert(basis(3), 3).unwrap().id;
        assert_eq!(id, 0);
        d.check_invariants();
    }

    #[test]
    fn capacity_is_never_exceeded_under_churn() {
        let mut d = BasisDictionary::new(16);
        for i in 0..1000u64 {
            d.insert(basis(i % 97), i).unwrap();
            assert!(d.len() <= 16);
            if i % 3 == 0 {
                d.lookup_basis(&basis(i % 31), i, true);
            }
            if i % 7 == 0 {
                d.check_invariants();
            }
        }
        d.check_invariants();
        assert!(d.is_full());
    }

    #[test]
    fn with_id_bits_matches_capacity() {
        let d = BasisDictionary::with_id_bits(15);
        assert_eq!(d.capacity(), 32_768);
        let d = BasisDictionary::with_id_bits(3);
        assert_eq!(d.capacity(), 8);
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut d = BasisDictionary::new(8);
        for i in 0..5u64 {
            d.insert(basis(i), i).unwrap();
        }
        let mut ids: Vec<u64> = d.iter().map(|(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BasisDictionary::new(0);
    }

    #[test]
    fn hashed_lookups_and_inserts_match_unhashed() {
        let mut plain = BasisDictionary::new(8);
        let mut hashed = BasisDictionary::new(8);
        for i in 0..40u64 {
            let b = basis(i % 13);
            let h = b.hash_words();
            let a = plain.insert(b.clone(), i).unwrap();
            let c = hashed.insert_hashed(b.clone(), h, i).unwrap();
            assert_eq!(a, c, "insert {i}");
            assert_eq!(
                plain.lookup_basis(&b, i, true),
                hashed.lookup_basis_hashed(&b, h, i, true),
                "lookup {i}"
            );
        }
        plain.check_invariants();
        hashed.check_invariants();
    }

    /// Drives two dictionaries through an identical operation tail and
    /// asserts every outcome matches — the "bit-identical future" check the
    /// persistence layer relies on.
    fn assert_same_future(a: &mut BasisDictionary, b: &mut BasisDictionary, t0: u64) {
        for i in 0..200u64 {
            let t = t0 + i;
            let out_a = a.insert(basis(i % 41), t).unwrap();
            let out_b = b.insert(basis(i % 41), t).unwrap();
            assert_eq!(out_a, out_b, "insert {i}");
            if i % 3 == 0 {
                assert_eq!(
                    a.lookup_basis(&basis(i % 17), t, true),
                    b.lookup_basis(&basis(i % 17), t, true),
                    "lookup {i}"
                );
            }
        }
        a.check_invariants();
        b.check_invariants();
    }

    #[test]
    fn export_then_restore_preserves_future_behaviour() {
        let mut d = BasisDictionary::new(16);
        for i in 0..100u64 {
            d.insert(basis(i % 37), i).unwrap();
            if i % 5 == 0 {
                d.lookup_basis(&basis(i % 11), i, true);
            }
            if i % 13 == 0 {
                d.remove_id(i % 16);
            }
        }
        let state = d.export_state();
        assert_eq!(state.entries.first().map(|e| e.id), d.mru_id());
        assert_eq!(state.entries.last().map(|e| e.id), d.lru_id());
        let mut restored =
            BasisDictionary::from_state(16, EvictionPolicy::Lru, None, &state).unwrap();
        restored.check_invariants();
        assert_eq!(restored.export_state(), state, "export is a fixed point");
        assert_eq!(restored.evictions(), d.evictions());
        assert_same_future(&mut d, &mut restored, 1000);
    }

    #[test]
    fn from_state_rejects_structural_corruption() {
        let mut d = BasisDictionary::new(4);
        d.insert(basis(1), 1).unwrap();
        d.insert(basis(2), 2).unwrap();
        let good = d.export_state();

        // Too many entries for the capacity.
        assert!(BasisDictionary::from_state(1, EvictionPolicy::Lru, None, &good).is_err());
        // Duplicate identifier.
        let mut dup = good.clone();
        let first = dup.entries[0].clone();
        dup.entries.push(first);
        assert!(BasisDictionary::from_state(4, EvictionPolicy::Lru, None, &dup).is_err());
        // Live id past next_fresh.
        let mut unalloc = good.clone();
        unalloc.next_fresh = 1;
        assert!(BasisDictionary::from_state(4, EvictionPolicy::Lru, None, &unalloc).is_err());
        // Released id that is also live.
        let mut overlap = good.clone();
        overlap.released.push(good.entries[0].id);
        assert!(BasisDictionary::from_state(4, EvictionPolicy::Lru, None, &overlap).is_err());
    }

    #[test]
    fn install_at_replays_allocation_eviction_and_recycling() {
        // Reference run: natural inserts with churn.
        let mut live = BasisDictionary::new(3);
        let mut replay = BasisDictionary::new(3);
        for i in 0..20u64 {
            let out = live.insert(basis(i), i).unwrap();
            // Replay the same events through the explicit-id primitive, the
            // way delta-fold recovery does: Remove (if evicted) then Install.
            if let Some((victim, _)) = &out.evicted {
                replay.remove_id(*victim);
            }
            replay.install_at(out.id, basis(i), i).unwrap();
            replay.check_invariants();
        }
        // Identical live mappings.
        let mut a: Vec<(u64, BitVec)> = live.iter().map(|(i, b)| (i, b.clone())).collect();
        let mut b: Vec<(u64, BitVec)> = replay.iter().map(|(i, b)| (i, b.clone())).collect();
        a.sort_by_key(|(i, _)| *i);
        b.sort_by_key(|(i, _)| *i);
        assert_eq!(a, b);
    }

    #[test]
    fn install_at_rejects_out_of_range_and_skipped_ids() {
        let mut d = BasisDictionary::new(4);
        assert!(d.install_at(4, basis(1), 0).is_err(), "beyond capacity");
        assert!(
            d.install_at(2, basis(1), 0).is_err(),
            "skips ahead of next_fresh"
        );
        d.install_at(0, basis(1), 0).unwrap();
        d.install_at(1, basis(2), 1).unwrap();
        // Replacing an occupied slot in place is fine and does not release.
        d.install_at(0, basis(3), 2).unwrap();
        assert_eq!(d.peek_id(0), Some(&basis(3)));
        assert_eq!(d.len(), 2);
        d.check_invariants();
    }

    #[test]
    fn lookup_id_ref_touches_like_lookup_id() {
        let mut d = BasisDictionary::new(2);
        let id1 = d.insert(basis(1), 1).unwrap().id;
        d.insert(basis(2), 2).unwrap();
        // Touch id1 via the borrowing lookup: basis 2 becomes the victim.
        assert_eq!(d.lookup_id_ref(id1, 3, true), Some(&basis(1)));
        assert_eq!(d.lookup_id_ref(99, 3, true), None);
        let out = d.insert(basis(3), 4).unwrap();
        assert_eq!(out.evicted.unwrap().1, basis(2));
        d.check_invariants();
    }
}
