//! The GD transformation function based on Hamming codes.
//!
//! This module implements the data transformation at the centre of
//! Figures 1 and 2 of the paper, independent of any packet framing:
//!
//! * **Deconstruction** (encoding direction, Figure 1 steps ➋–➎): compute the
//!   syndrome of the `n`-bit chunk with the CRC unit, look up the single-bit
//!   error mask it designates, XOR the mask onto the chunk to land on the
//!   nearest codeword, and keep its rightmost `k` bits as the *basis*; the
//!   syndrome itself is the *deviation*.
//! * **Reconstruction** (decoding direction, Figure 2 steps ➌–➐): zero-pad
//!   the basis, run it through the same CRC to regenerate the `m` parity bits
//!   the encoder truncated, re-assemble the codeword, and XOR the error mask
//!   selected by the deviation to restore the original chunk bit-exactly.
//!
//! The reconstruction step relies on the generator polynomial being
//! primitive: then `x^n ≡ 1 (mod g)` and `CRC(basis · x^m)` equals the
//! truncated parity bits (see `poly::Gf2Poly::is_primitive`).

use crate::bits::BitVec;
use crate::error::{GdError, Result};
use crate::hamming::HammingCode;

/// Output of deconstructing one `n`-bit chunk.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Deconstructed {
    /// The `k`-bit basis (deduplication unit).
    pub basis: BitVec,
    /// The `m`-bit deviation (the Hamming syndrome).
    pub deviation: u64,
}

/// GD transformation function backed by a Hamming code.
#[derive(Debug, Clone)]
pub struct HammingTransform {
    code: HammingCode,
}

impl HammingTransform {
    /// Builds the transform for the Hamming code with parameter `m`,
    /// using the paper's generator polynomial for that `m` (Table 1).
    pub fn new(m: u32) -> Result<Self> {
        Ok(Self {
            code: HammingCode::new(m)?,
        })
    }

    /// Builds the transform from an existing Hamming code.
    pub fn from_code(code: HammingCode) -> Self {
        Self { code }
    }

    /// The underlying Hamming code.
    pub fn code(&self) -> &HammingCode {
        &self.code
    }

    /// Chunk length `n` in bits.
    pub fn chunk_bits(&self) -> usize {
        self.code.n()
    }

    /// Basis length `k` in bits.
    pub fn basis_bits(&self) -> usize {
        self.code.k()
    }

    /// Deviation length `m` in bits.
    pub fn deviation_bits(&self) -> u32 {
        self.code.m()
    }

    /// Splits an `n`-bit chunk into basis and deviation (Figure 1).
    ///
    /// Word-parallel: the syndrome comes from the slicing-by-8 CRC over the
    /// chunk's packed words, the `n`-bit error mask of the original
    /// formulation is reduced to a single-bit flip (one word XOR), and the
    /// flip is applied directly inside the extracted basis — bits landing in
    /// the truncated parity region need no correction at all.
    pub fn deconstruct(&self, chunk: &BitVec) -> Result<Deconstructed> {
        if chunk.len() != self.code.n() {
            return Err(GdError::LengthMismatch {
                expected: self.code.n(),
                actual: chunk.len(),
            });
        }
        // ➋ syndrome via the CRC unit
        let deviation = self.code.syndrome(chunk)?;
        // ➎ keep the rightmost k bits, with ➌/➍ folded in: flip the bit
        // designated by the syndrome if (and only if) it survives the
        // truncation to the message region.
        let m = self.code.m() as usize;
        let mut basis = chunk.slice(m..self.code.n());
        self.code.fold_error_into_basis(&mut basis, deviation)?;
        Ok(Deconstructed { basis, deviation })
    }

    /// Rebuilds the original `n`-bit chunk from a basis and deviation
    /// (Figure 2).
    pub fn reconstruct(&self, basis: &BitVec, deviation: u64) -> Result<BitVec> {
        let mut chunk = BitVec::with_capacity(self.code.n());
        self.reconstruct_into(basis, deviation, &mut chunk)?;
        Ok(chunk)
    }

    /// The recycling form of [`Self::reconstruct`]: writes the chunk into
    /// `out`, reusing its storage allocation. With `out` carried across
    /// records (see `DecodeScratch` in the codec), steady-state
    /// reconstruction performs no heap allocation.
    pub fn reconstruct_into(&self, basis: &BitVec, deviation: u64, out: &mut BitVec) -> Result<()> {
        if basis.len() != self.code.k() {
            return Err(GdError::LengthMismatch {
                expected: self.code.k(),
                actual: basis.len(),
            });
        }
        if deviation > self.code.n() as u64 {
            return Err(GdError::Malformed(format!(
                "deviation {deviation} exceeds syndrome range 0..={}",
                self.code.n()
            )));
        }
        // ➌/➍ zero-pad and regenerate the parity bits with the same CRC
        // (word-parallel: no padded copy is materialised)
        let parity = self.code.parity_of_message(basis);
        // ➏ concatenate parity and basis back into the codeword
        out.clear();
        out.push_bits(parity, self.code.m() as usize);
        out.extend_from_bitvec(basis);
        debug_assert_eq!(self.code.syndrome(out)?, 0);
        // ➎/➏ flip the bit designated by the deviation (single word XOR
        // instead of an n-bit mask)
        if let Some(position) = self.code.error_position(deviation)? {
            out.flip(position);
        }
        Ok(())
    }

    /// Number of distinct `n`-bit chunks that map to each basis: `n + 1`
    /// (the codeword itself plus every single-bit perturbation of it).
    ///
    /// This is the "thousands or even millions of chunks can be mapped to the
    /// same basis" observation of section 2 — for the paper's `m = 8`,
    /// 256 chunks share each basis.
    pub fn chunks_per_basis(&self) -> usize {
        self.code.n() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_chunk(n: usize) -> impl Strategy<Value = BitVec> {
        proptest::collection::vec(any::<bool>(), n).prop_map(|bools| BitVec::from_bools(&bools))
    }

    #[test]
    fn paper_worked_example_section2() {
        // Section 2's example with the (7, 4) code: chunks with at most one
        // bit set map to basis 0000, chunks with at most one bit cleared map
        // to basis 1111.
        let t = HammingTransform::new(3).unwrap();
        let zero_family = [
            "0000000", "0000001", "0000010", "0000100", "0001000", "0010000", "0100000", "1000000",
        ];
        for s in zero_family {
            let chunk = BitVec::from_bit_str(s).unwrap();
            let d = t.deconstruct(&chunk).unwrap();
            assert_eq!(d.basis.to_string(), "0000", "chunk {s}");
            // Deviation identifies the flipped bit: reconstruct must invert.
            let back = t.reconstruct(&d.basis, d.deviation).unwrap();
            assert_eq!(back, chunk, "chunk {s}");
        }
        let ones_family = [
            "1111111", "1111110", "1111101", "1111011", "1110111", "1101111", "1011111", "0111111",
        ];
        for s in ones_family {
            let chunk = BitVec::from_bit_str(s).unwrap();
            let d = t.deconstruct(&chunk).unwrap();
            assert_eq!(d.basis.to_string(), "1111", "chunk {s}");
            let back = t.reconstruct(&d.basis, d.deviation).unwrap();
            assert_eq!(back, chunk, "chunk {s}");
        }
    }

    #[test]
    fn paper_42_bit_sequence_example() {
        // The 42-bit sequence of section 2 contains six 7-bit chunks but only
        // two distinct bases.
        let t = HammingTransform::new(3).unwrap();
        let sequence = [
            "0000000", "1111111", "0100000", "1111011", "1000000", "1011111",
        ];
        let mut bases = std::collections::HashSet::new();
        for s in sequence {
            let chunk = BitVec::from_bit_str(s).unwrap();
            bases.insert(t.deconstruct(&chunk).unwrap().basis.to_string());
        }
        assert_eq!(bases.len(), 2);
        assert!(bases.contains("0000"));
        assert!(bases.contains("1111"));
    }

    #[test]
    fn deviation_of_codeword_is_zero() {
        let t = HammingTransform::new(4).unwrap();
        let msg = BitVec::from_bit_str("01101011010").unwrap();
        let cw = t.code().encode(&msg).unwrap();
        let d = t.deconstruct(&cw).unwrap();
        assert_eq!(d.deviation, 0);
        assert_eq!(d.basis, msg);
    }

    #[test]
    fn length_checks() {
        let t = HammingTransform::new(3).unwrap();
        assert!(t.deconstruct(&BitVec::zeros(8)).is_err());
        assert!(t.reconstruct(&BitVec::zeros(5), 0).is_err());
        assert!(t.reconstruct(&BitVec::zeros(4), 8).is_err());
    }

    #[test]
    fn chunks_per_basis_counts() {
        assert_eq!(HammingTransform::new(3).unwrap().chunks_per_basis(), 8);
        assert_eq!(HammingTransform::new(8).unwrap().chunks_per_basis(), 256);
    }

    #[test]
    fn accessors_report_code_dimensions() {
        let t = HammingTransform::new(8).unwrap();
        assert_eq!(t.chunk_bits(), 255);
        assert_eq!(t.basis_bits(), 247);
        assert_eq!(t.deviation_bits(), 8);
    }

    #[test]
    fn exhaustive_roundtrip_for_small_code() {
        // Every possible 7-bit chunk survives the transform.
        let t = HammingTransform::new(3).unwrap();
        for value in 0u64..128 {
            let chunk = BitVec::from_u64(value, 7);
            let d = t.deconstruct(&chunk).unwrap();
            assert!(d.deviation < 8);
            assert_eq!(d.basis.len(), 4);
            let back = t.reconstruct(&d.basis, d.deviation).unwrap();
            assert_eq!(back, chunk, "value {value:07b}");
        }
    }

    #[test]
    fn all_chunks_mapping_to_same_basis_differ_in_at_most_two_bits_from_each_other() {
        // Chunks sharing a basis are the codeword plus single-bit flips, so
        // any two of them differ in at most 2 bits.
        let t = HammingTransform::new(3).unwrap();
        use std::collections::HashMap;
        let mut groups: HashMap<String, Vec<BitVec>> = HashMap::new();
        for value in 0u64..128 {
            let chunk = BitVec::from_u64(value, 7);
            let basis = t.deconstruct(&chunk).unwrap().basis.to_string();
            groups.entry(basis).or_default().push(chunk);
        }
        assert_eq!(groups.len(), 16, "one group per 4-bit basis");
        for (basis, members) in groups {
            assert_eq!(members.len(), 8, "basis {basis}");
            for a in &members {
                for b in &members {
                    let distance = a.xor(b).unwrap().count_ones();
                    assert!(distance <= 2, "basis {basis}: distance {distance}");
                }
            }
        }
    }

    proptest! {
        #[test]
        fn roundtrip_m3(chunk in arbitrary_chunk(7)) {
            let t = HammingTransform::new(3).unwrap();
            let d = t.deconstruct(&chunk).unwrap();
            prop_assert_eq!(t.reconstruct(&d.basis, d.deviation).unwrap(), chunk);
        }

        #[test]
        fn roundtrip_m4(chunk in arbitrary_chunk(15)) {
            let t = HammingTransform::new(4).unwrap();
            let d = t.deconstruct(&chunk).unwrap();
            prop_assert_eq!(t.reconstruct(&d.basis, d.deviation).unwrap(), chunk);
        }

        #[test]
        fn roundtrip_m8(chunk in arbitrary_chunk(255)) {
            let t = HammingTransform::new(8).unwrap();
            let d = t.deconstruct(&chunk).unwrap();
            prop_assert_eq!(t.reconstruct(&d.basis, d.deviation).unwrap(), chunk);
        }

        #[test]
        fn roundtrip_m11(chunk in arbitrary_chunk(2047)) {
            let t = HammingTransform::new(11).unwrap();
            let d = t.deconstruct(&chunk).unwrap();
            prop_assert_eq!(t.reconstruct(&d.basis, d.deviation).unwrap(), chunk);
        }

        #[test]
        fn basis_is_invariant_under_single_bit_flips(chunk in arbitrary_chunk(255), flip in 0usize..255) {
            // Flipping one bit of a chunk never changes its basis when the
            // chunk was already a codeword — and in general, a chunk and the
            // codeword it maps to share the same basis.
            let t = HammingTransform::new(8).unwrap();
            let d = t.deconstruct(&chunk).unwrap();
            // Re-deconstruct the codeword itself (basis + zero deviation).
            let codeword = t.reconstruct(&d.basis, 0).unwrap();
            let mut flipped = codeword.clone();
            flipped.flip(flip);
            let d2 = t.deconstruct(&flipped).unwrap();
            prop_assert_eq!(d2.basis, d.basis);
        }

        #[test]
        fn deviation_is_within_syndrome_range(chunk in arbitrary_chunk(31)) {
            let t = HammingTransform::new(5).unwrap();
            let d = t.deconstruct(&chunk).unwrap();
            prop_assert!(d.deviation <= 31);
        }
    }
}
