//! Bit-exact buffers and readers/writers.
//!
//! Hamming block lengths (`n = 2^m - 1`) are never byte aligned, and the
//! ZipLine wire formats pack fields such as a 15-bit identifier next to a
//! single carried-over bit. Everything in the GD data path therefore operates
//! on explicit bit sequences.
//!
//! # Conventions
//!
//! A [`BitVec`] is an ordered sequence of bits. Position `0` is the *first*
//! bit of the sequence — the most significant bit when the sequence is viewed
//! as a binary number, and the coefficient of the highest power of `x` when
//! it is viewed as a polynomial over GF(2) (the paper writes the chunk `B` as
//! `b_{n-1} … b_1 b_0` with `b_{n-1}` the MSB and the coefficient of
//! `x^{n-1}`).
//!
//! When converting to and from bytes, the first bit of the sequence maps to
//! the most significant bit of the first byte (network bit order).
//!
//! # Word-parallel fast path
//!
//! Storage is packed into `u64` words, most significant bit first: bit `i`
//! of the sequence lives in word `i / 64` at bit `63 - (i % 64)`, so a word
//! read as an integer equals the corresponding 64-bit slice of the sequence,
//! and byte `j` of the big-endian encoding of a word is byte `8·(i/64) + j`
//! of the byte serialization. All bulk operations (`from_bytes`/`to_bytes`,
//! `push_bits`, `extend_from_bitvec`, `slice`, `get_bits`, `xor_with`)
//! operate on whole words; per-bit loops remain only in the trivially cheap
//! single-bit accessors. Storage bits at positions `>= len()` are kept zero
//! (the *masked-tail invariant*), which is what lets equality, hashing and
//! the word-level CRC in [`crate::crc`] consume [`BitVec::words`] directly.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Number of words a [`BitVec`] stores inline before spilling to the heap.
/// One word covers every vector of at most 64 bits — carried-bit fields,
/// deviations, identifiers — which are exactly the vectors the hot paths
/// create and clone per record.
const INLINE_WORDS: usize = 1;

/// Small-buffer word storage behind [`BitVec`]: vectors of up to
/// `INLINE_WORDS * 64` bits live entirely inline (construction, cloning and
/// dropping never touch the heap); longer vectors spill to a `Vec<u64>`.
/// The variant is an implementation detail — equality, hashing and the
/// public [`BitVec::words`] accessor all go through the slice view.
#[derive(Clone)]
enum Words {
    /// Up to `INLINE_WORDS` words stored in place (`len` = live word count).
    Inline { len: u8, buf: [u64; INLINE_WORDS] },
    /// Heap storage for longer vectors.
    Heap(Vec<u64>),
}

impl Words {
    #[inline]
    fn new() -> Self {
        Words::Inline {
            len: 0,
            buf: [0; INLINE_WORDS],
        }
    }

    #[inline]
    fn with_capacity(words: usize) -> Self {
        if words <= INLINE_WORDS {
            Self::new()
        } else {
            Words::Heap(Vec::with_capacity(words))
        }
    }

    /// `count` words, each set to `fill`.
    #[inline]
    fn filled(fill: u64, count: usize) -> Self {
        if count <= INLINE_WORDS {
            Words::Inline {
                len: count as u8,
                buf: [fill; INLINE_WORDS],
            }
        } else {
            Words::Heap(vec![fill; count])
        }
    }

    #[inline]
    fn as_slice(&self) -> &[u64] {
        match self {
            Words::Inline { len, buf } => &buf[..*len as usize],
            Words::Heap(v) => v,
        }
    }

    #[inline]
    fn as_mut_slice(&mut self) -> &mut [u64] {
        match self {
            Words::Inline { len, buf } => &mut buf[..*len as usize],
            Words::Heap(v) => v,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            Words::Inline { len, .. } => *len as usize,
            Words::Heap(v) => v.len(),
        }
    }

    #[inline]
    fn push(&mut self, word: u64) {
        match self {
            Words::Inline { len, buf } => {
                if (*len as usize) < INLINE_WORDS {
                    buf[*len as usize] = word;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_WORDS * 4);
                    v.extend_from_slice(&buf[..*len as usize]);
                    v.push(word);
                    *self = Words::Heap(v);
                }
            }
            Words::Heap(v) => v.push(word),
        }
    }

    #[inline]
    fn clear(&mut self) {
        // Heap storage stays heap so its capacity is retained for reuse.
        match self {
            Words::Inline { len, .. } => *len = 0,
            Words::Heap(v) => v.clear(),
        }
    }

    #[inline]
    fn truncate(&mut self, count: usize) {
        match self {
            // Compare in usize: counts >= 256 must be a no-op (matching
            // Vec::truncate), not wrap through the u8 length.
            Words::Inline { len, .. } => *len = (*len as usize).min(count) as u8,
            Words::Heap(v) => v.truncate(count),
        }
    }

    #[inline]
    fn last_mut(&mut self) -> Option<&mut u64> {
        self.as_mut_slice().last_mut()
    }

    /// Sets the word count to exactly `count`, with unspecified contents —
    /// the caller overwrites every word. Reuses heap capacity when present.
    #[inline]
    fn resize_for_overwrite(&mut self, count: usize) {
        match self {
            Words::Inline { len, .. } if count <= INLINE_WORDS => *len = count as u8,
            Words::Heap(v) => {
                v.clear();
                v.resize(count, 0);
            }
            Words::Inline { .. } => *self = Words::Heap(vec![0; count]),
        }
    }
}

impl Default for Words {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for Words {
    type Target = [u64];

    #[inline]
    fn deref(&self) -> &[u64] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for Words {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u64] {
        self.as_mut_slice()
    }
}

impl PartialEq for Words {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Words {}

impl Hash for Words {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Words {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

/// A growable, bit-addressed vector.
///
/// Bits are stored packed into 64-bit words, with a one-word inline
/// small-buffer: vectors of at most 64 bits never allocate. Position 0 is
/// the first / most-significant bit (see the module documentation for
/// conventions).
#[derive(Clone, Default, Eq)]
pub struct BitVec {
    /// Packed storage; bit `i` lives in `words[i / 64]` at bit position
    /// `63 - (i % 64)` (MSB-first within each word).
    words: Words,
    /// Number of valid bits.
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self {
            words: Words::new(),
            len: 0,
        }
    }

    /// Creates an empty bit vector with room for at least `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Words::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Creates a bit vector of `len` zero bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: Words::filled(0, len.div_ceil(64)),
            len,
        }
    }

    /// Creates a bit vector of `len` one bits.
    pub fn ones(len: usize) -> Self {
        let mut v = Self {
            words: Words::filled(u64::MAX, len.div_ceil(64)),
            len,
        };
        v.mask_tail();
        v
    }

    /// Creates a bit vector from a byte slice; every byte contributes 8 bits,
    /// most significant bit first.
    ///
    /// Word-parallel: packs 8 bytes per storage word.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut v = Self::new();
        v.load_bytes(bytes);
        v
    }

    /// Replaces the contents with the bits of `bytes`, reusing the existing
    /// storage allocation. The word-packing equivalent of
    /// `*self = BitVec::from_bytes(bytes)` without the allocation.
    pub fn load_bytes(&mut self, bytes: &[u8]) {
        self.words.resize_for_overwrite(bytes.len().div_ceil(8));
        let dst = self.words.as_mut_slice();
        let mut chunks = bytes.chunks_exact(8);
        for (j, chunk) in (&mut chunks).enumerate() {
            dst[j] = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = 0u64;
            for (i, &b) in tail.iter().enumerate() {
                word |= (b as u64) << (56 - 8 * i);
            }
            dst[bytes.len() / 8] = word;
        }
        self.len = bytes.len() * 8;
    }

    /// Creates a bit vector of `len` bits directly from packed words
    /// (MSB-first within each word, as documented on [`Self::words`]).
    /// Storage bits beyond `len` are cleared.
    ///
    /// # Panics
    /// Panics if `words` is not exactly `len.div_ceil(64)` words long.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert_eq!(
            words.len(),
            len.div_ceil(64),
            "word count must match bit length"
        );
        let mut v = Self {
            words: Words::Heap(words),
            len,
        };
        v.mask_tail();
        v
    }

    /// The packed storage words (MSB-first within each word; storage bits at
    /// positions `>= len()` are zero). Word-level consumers such as the
    /// table-driven CRC read the message through this accessor instead of a
    /// per-bit iterator.
    pub fn words(&self) -> &[u64] {
        self.words.as_slice()
    }

    /// Creates a bit vector from the lowest `width` bits of `value`, most
    /// significant bit first.
    ///
    /// # Panics
    /// Panics if `width > 64`.
    pub fn from_u64(value: u64, width: usize) -> Self {
        assert!(width <= 64, "width must be <= 64");
        let mut v = Self::with_capacity(width);
        v.push_bits(value, width);
        v
    }

    /// Creates a bit vector from a slice of booleans (first element = first
    /// bit).
    pub fn from_bools(bools: &[bool]) -> Self {
        let mut v = Self::with_capacity(bools.len());
        for &b in bools {
            v.push(b);
        }
        v
    }

    /// Parses a string of `0` and `1` characters. Any other character is an
    /// error. Useful in tests and examples.
    pub fn from_bit_str(s: &str) -> Option<Self> {
        let mut v = Self::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '0' => v.push(false),
                '1' => v.push(true),
                _ => return None,
            }
        }
        Some(v)
    }

    /// Number of bits in the vector.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `index` (position 0 = first bit).
    ///
    /// # Panics
    /// Panics if `index >= len()`.
    pub fn get(&self, index: usize) -> bool {
        assert!(
            index < self.len,
            "bit index {index} out of range (len {})",
            self.len
        );
        let word = self.words.as_slice()[index / 64];
        (word >> (63 - (index % 64))) & 1 == 1
    }

    /// Sets bit `index` to `value`.
    ///
    /// # Panics
    /// Panics if `index >= len()`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range (len {})",
            self.len
        );
        let mask = 1u64 << (63 - (index % 64));
        let word = &mut self.words.as_mut_slice()[index / 64];
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Flips bit `index`.
    pub fn flip(&mut self, index: usize) {
        assert!(
            index < self.len,
            "bit index {index} out of range (len {})",
            self.len
        );
        self.words.as_mut_slice()[index / 64] ^= 1u64 << (63 - (index % 64));
    }

    /// Appends a single bit.
    pub fn push(&mut self, bit: bool) {
        let index = self.len;
        if index / 64 == self.words.len() {
            self.words.push(0);
        }
        self.len += 1;
        if bit {
            self.words.as_mut_slice()[index / 64] |= 1u64 << (63 - (index % 64));
        }
    }

    /// Appends the lowest `width` bits of `value`, most significant first.
    ///
    /// Word-parallel: the bits are spliced into at most two storage words.
    ///
    /// # Panics
    /// Panics if `width > 64`.
    pub fn push_bits(&mut self, value: u64, width: usize) {
        assert!(width <= 64, "width must be <= 64");
        if width == 0 {
            return;
        }
        let value = if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        };
        // Left-align the field inside a word, then shift into place.
        let aligned = value << (64 - width);
        let offset = self.len % 64;
        if offset == 0 {
            self.words.push(aligned);
        } else {
            *self
                .words
                .last_mut()
                .expect("offset != 0 implies a partial last word") |= aligned >> offset;
            if offset + width > 64 {
                self.words.push(aligned << (64 - offset));
            }
        }
        self.len += width;
    }

    /// Appends all bits of `other`.
    ///
    /// Word-parallel: appends 64 bits per step via [`Self::push_bits`].
    pub fn extend_from_bitvec(&mut self, other: &BitVec) {
        let mut remaining = other.len;
        for &word in other.words.iter() {
            let take = remaining.min(64);
            self.push_bits(word >> (64 - take), take);
            remaining -= take;
            if remaining == 0 {
                break;
            }
        }
    }

    /// Returns the bits in `range` as a new vector.
    ///
    /// Word-parallel: copies 64-bit windows via [`Self::get_bits`].
    ///
    /// # Panics
    /// Panics if the range is out of bounds or reversed.
    pub fn slice(&self, range: std::ops::Range<usize>) -> BitVec {
        assert!(range.start <= range.end, "reversed range");
        assert!(
            range.end <= self.len,
            "slice end {} out of range (len {})",
            range.end,
            self.len
        );
        let mut out = BitVec::with_capacity(range.len());
        let mut pos = range.start;
        while pos < range.end {
            let take = (range.end - pos).min(64);
            out.push_bits(self.get_bits(pos, take), take);
            pos += take;
        }
        out
    }

    /// Replaces the contents of `self` with the bits of `src` in `range`,
    /// reusing the existing storage allocation — the in-place, word-parallel
    /// equivalent of `*self = src.slice(range)`.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or reversed.
    pub fn copy_range_from(&mut self, src: &BitVec, range: std::ops::Range<usize>) {
        assert!(range.start <= range.end, "reversed range");
        assert!(
            range.end <= src.len,
            "slice end {} out of range (len {})",
            range.end,
            src.len
        );
        let len = range.len();
        let n_words = len.div_ceil(64);
        self.words.resize_for_overwrite(n_words);
        self.len = len;
        // Each destination word is a shifted 64-bit window of the source —
        // one or two word reads, no per-field call overhead.
        let src_words = src.words.as_slice();
        let dst = self.words.as_mut_slice();
        let first = range.start / 64;
        let offset = range.start % 64;
        if offset == 0 {
            dst.copy_from_slice(&src_words[first..first + n_words]);
        } else {
            for (j, out) in dst.iter_mut().enumerate() {
                let i = first + j;
                let mut word = src_words[i] << offset;
                if let Some(&next) = src_words.get(i + 1) {
                    word |= next >> (64 - offset);
                }
                *out = word;
            }
        }
        self.mask_tail();
    }

    /// Interprets bits `[pos, pos + width)` as an unsigned integer
    /// (first bit = most significant).
    ///
    /// Word-parallel: reads at most two storage words.
    ///
    /// # Panics
    /// Panics if `width > 64` or the range is out of bounds.
    pub fn get_bits(&self, pos: usize, width: usize) -> u64 {
        assert!(width <= 64, "width must be <= 64");
        assert!(pos + width <= self.len, "bit range out of bounds");
        if width == 0 {
            return 0;
        }
        let words = self.words.as_slice();
        let offset = pos % 64;
        let mut window = words[pos / 64] << offset;
        if offset != 0 {
            if let Some(&next) = words.get(pos / 64 + 1) {
                window |= next >> (64 - offset);
            }
        }
        window >> (64 - width)
    }

    /// Interprets the whole vector as an unsigned integer (first bit = MSB).
    ///
    /// # Panics
    /// Panics if the vector is longer than 64 bits.
    pub fn to_u64(&self) -> u64 {
        assert!(self.len <= 64, "vector too long for u64");
        self.get_bits(0, self.len)
    }

    /// Serializes to bytes, first bit = MSB of first byte. The final byte is
    /// zero-padded on the right when the length is not a multiple of 8.
    ///
    /// Word-parallel: emits 8 bytes per storage word (the masked-tail
    /// invariant guarantees the padding bits are already zero).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len.div_ceil(8));
        self.append_bytes_to(&mut out);
        out
    }

    /// XORs `other` into `self` (both must have the same length).
    pub fn xor_with(&mut self, other: &BitVec) -> crate::error::Result<()> {
        if self.len != other.len {
            return Err(crate::error::GdError::LengthMismatch {
                expected: self.len,
                actual: other.len,
            });
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a ^= *b;
        }
        self.mask_tail();
        Ok(())
    }

    /// Returns `self XOR other` as a new vector (lengths must match).
    pub fn xor(&self, other: &BitVec) -> crate::error::Result<BitVec> {
        let mut out = self.clone();
        out.xor_with(other)?;
        Ok(out)
    }

    /// Hashes the packed words (and the bit length) into a well-mixed 64-bit
    /// value with a multiply–rotate fold plus a SplitMix64-style finisher.
    ///
    /// This is the word-parallel basis hash used by the dictionary hot path:
    /// the encoder computes it once per chunk (caching it on
    /// `EncodedChunk::basis_hash`) and every dictionary probe then works from
    /// the cached value instead of re-hashing the 247-bit basis. Thanks to
    /// the masked-tail invariant, equal vectors always hash equally. The
    /// function is deterministic across runs, which lets the sharded engine
    /// derive shard placement from it on both the compress and decompress
    /// sides.
    pub fn hash_words(&self) -> u64 {
        const K: u64 = 0x517c_c1b7_2722_0a95;
        let mut h = self.len as u64;
        for &w in self.words.iter() {
            h = (h.rotate_left(5) ^ w).wrapping_mul(K);
        }
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }

    /// Appends the byte serialization of the vector to `out` without any
    /// intermediate allocation — the recycling form of
    /// [`Self::to_bytes`]`()` + `extend_from_slice`. The final byte is
    /// zero-padded on the right when the length is not a multiple of 8.
    pub fn append_bytes_to(&self, out: &mut Vec<u8>) {
        let mut remaining = self.len.div_ceil(8);
        out.reserve(remaining);
        for &word in self.words.iter() {
            let bytes = word.to_be_bytes();
            let take = remaining.min(8);
            out.extend_from_slice(&bytes[..take]);
            remaining -= take;
            if remaining == 0 {
                break;
            }
        }
    }

    /// Number of bits set to one.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterator over the bits, first to last.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Truncates the vector to `len` bits (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        if len < self.len {
            self.len = len;
            self.words.truncate(len.div_ceil(64));
            self.mask_tail();
        }
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// Zeroes any storage bits beyond `len` so that equality and hashing can
    /// operate on whole words.
    fn mask_tail(&mut self) {
        let rem = self.len % 64;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX << (64 - rem);
            }
        }
        // Drop fully unused words (can happen after truncate).
        let needed = self.len.div_ceil(64);
        self.words.truncate(needed);
    }
}

impl PartialEq for BitVec {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.words == other.words
    }
}

impl Hash for BitVec {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len.hash(state);
        self.words.hash(state);
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}]<", self.len)?;
        let limit = self.len.min(96);
        for i in 0..limit {
            write!(f, "{}", self.get(i) as u8)?;
        }
        if self.len > limit {
            write!(f, "…")?;
        }
        write!(f, ">")
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", self.get(i) as u8)?;
        }
        Ok(())
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        let mut v = BitVec::new();
        for b in iter {
            v.push(b);
        }
        v
    }
}

/// Incremental writer that packs bit fields into a byte buffer
/// (first field = most significant bits of the first byte).
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bits: BitVec,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self {
            bits: BitVec::new(),
        }
    }

    /// Appends the lowest `width` bits of `value`.
    pub fn write_bits(&mut self, value: u64, width: usize) {
        self.bits.push_bits(value, width);
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.bits.push(bit);
    }

    /// Appends an entire bit vector.
    pub fn write_bitvec(&mut self, bits: &BitVec) {
        self.bits.extend_from_bitvec(bits);
    }

    /// Appends whole bytes (word-parallel: 8 bytes per step).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.bits.push_bits(
                u64::from_be_bytes(chunk.try_into().expect("8-byte chunk")),
                64,
            );
        }
        for &b in chunks.remainder() {
            self.bits.push_bits(b as u64, 8);
        }
    }

    /// Appends zero bits until the total length is a multiple of 8.
    /// Returns how many padding bits were added.
    pub fn pad_to_byte(&mut self) -> usize {
        let pad = (8 - self.bits.len() % 8) % 8;
        for _ in 0..pad {
            self.bits.push(false);
        }
        pad
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bits.len()
    }

    /// Finishes the writer, zero-padding to a byte boundary.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.pad_to_byte();
        self.bits.to_bytes()
    }

    /// Finishes the writer, returning the raw bit vector (no padding).
    pub fn into_bitvec(self) -> BitVec {
        self.bits
    }
}

/// Incremental reader that extracts bit fields from a byte buffer.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit to read, counted from the MSB of the first byte.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Total number of bits in the underlying buffer.
    pub fn total_bits(&self) -> usize {
        self.bytes.len() * 8
    }

    /// Number of bits not yet consumed.
    pub fn remaining_bits(&self) -> usize {
        self.total_bits() - self.pos
    }

    /// Current bit position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads a single bit.
    pub fn read_bit(&mut self) -> crate::error::Result<bool> {
        if self.pos >= self.total_bits() {
            return Err(crate::error::GdError::Malformed(
                "bit reader exhausted".into(),
            ));
        }
        let byte = self.bytes[self.pos / 8];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `width` bits as an unsigned integer (first bit = MSB).
    ///
    /// Byte-parallel: consumes up to 8 bits per step instead of one.
    pub fn read_bits(&mut self, width: usize) -> crate::error::Result<u64> {
        assert!(width <= 64, "width must be <= 64");
        if self.remaining_bits() < width {
            return Err(crate::error::GdError::Malformed(format!(
                "bit reader exhausted: wanted {width} bits, {} remaining",
                self.remaining_bits()
            )));
        }
        let mut value = 0u64;
        let mut got = 0;
        while got < width {
            let byte = self.bytes[self.pos / 8] as u64;
            let available = 8 - self.pos % 8;
            let take = (width - got).min(available);
            let bits = (byte >> (available - take)) & ((1u64 << take) - 1);
            value = (value << take) | bits;
            self.pos += take;
            got += take;
        }
        Ok(value)
    }

    /// Reads `count` bits into a new [`BitVec`] (word-parallel).
    pub fn read_bitvec(&mut self, count: usize) -> crate::error::Result<BitVec> {
        if self.remaining_bits() < count {
            return Err(crate::error::GdError::Malformed(format!(
                "bit reader exhausted: wanted {count} bits, {} remaining",
                self.remaining_bits()
            )));
        }
        let mut out = BitVec::with_capacity(count);
        let mut remaining = count;
        while remaining > 0 {
            let take = remaining.min(64);
            out.push_bits(self.read_bits(take)?, take);
            remaining -= take;
        }
        Ok(out)
    }

    /// Skips `count` bits.
    pub fn skip(&mut self, count: usize) -> crate::error::Result<()> {
        if self.remaining_bits() < count {
            return Err(crate::error::GdError::Malformed(
                "bit reader exhausted".into(),
            ));
        }
        self.pos += count;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut v = BitVec::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            v.push(b);
        }
        assert_eq!(v.len(), pattern.len());
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(v.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn from_bytes_bit_order_is_msb_first() {
        let v = BitVec::from_bytes(&[0b1010_0000, 0b0000_0001]);
        assert_eq!(v.len(), 16);
        assert!(v.get(0));
        assert!(!v.get(1));
        assert!(v.get(2));
        assert!(!v.get(3));
        assert!(!v.get(14));
        assert!(v.get(15));
    }

    #[test]
    fn to_bytes_roundtrip() {
        let bytes = [0xDE, 0xAD, 0xBE, 0xEF, 0x01];
        let v = BitVec::from_bytes(&bytes);
        assert_eq!(v.to_bytes(), bytes);
    }

    #[test]
    fn to_bytes_pads_final_byte_with_zeros() {
        let v = BitVec::from_bit_str("11111").unwrap();
        assert_eq!(v.to_bytes(), vec![0b1111_1000]);
    }

    #[test]
    fn from_u64_and_to_u64() {
        let v = BitVec::from_u64(0b1011, 4);
        assert_eq!(v.len(), 4);
        assert_eq!(v.to_u64(), 0b1011);
        assert_eq!(v.to_string(), "1011");

        let v = BitVec::from_u64(5, 8);
        assert_eq!(v.to_string(), "00000101");
    }

    #[test]
    fn from_bit_str_rejects_garbage() {
        assert!(BitVec::from_bit_str("0102").is_none());
        assert_eq!(BitVec::from_bit_str("").unwrap().len(), 0);
    }

    #[test]
    fn zeros_and_ones() {
        let z = BitVec::zeros(130);
        assert_eq!(z.len(), 130);
        assert!(z.is_zero());
        assert_eq!(z.count_ones(), 0);

        let o = BitVec::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert!(!o.is_zero());
    }

    #[test]
    fn set_flip_and_count() {
        let mut v = BitVec::zeros(100);
        v.set(0, true);
        v.set(63, true);
        v.set(64, true);
        v.set(99, true);
        assert_eq!(v.count_ones(), 4);
        v.flip(63);
        assert_eq!(v.count_ones(), 3);
        assert!(!v.get(63));
    }

    #[test]
    fn xor_matches_per_bit_xor() {
        let a = BitVec::from_bit_str("110010101110001").unwrap();
        let b = BitVec::from_bit_str("101110000110011").unwrap();
        let c = a.xor(&b).unwrap();
        for i in 0..a.len() {
            assert_eq!(c.get(i), a.get(i) ^ b.get(i));
        }
    }

    #[test]
    fn xor_length_mismatch_is_error() {
        let a = BitVec::zeros(5);
        let b = BitVec::zeros(6);
        assert!(a.xor(&b).is_err());
    }

    #[test]
    fn slice_extracts_correct_range() {
        let v = BitVec::from_bit_str("0011010111").unwrap();
        let s = v.slice(2..7);
        assert_eq!(s.to_string(), "11010");
        let whole = v.slice(0..v.len());
        assert_eq!(whole, v);
        let empty = v.slice(3..3);
        assert!(empty.is_empty());
    }

    #[test]
    fn get_bits_reads_msb_first() {
        let v = BitVec::from_bit_str("11010110").unwrap();
        assert_eq!(v.get_bits(0, 8), 0b1101_0110);
        assert_eq!(v.get_bits(2, 3), 0b010);
        assert_eq!(v.get_bits(5, 3), 0b110);
    }

    #[test]
    fn equality_ignores_stale_tail_bits() {
        // Construct two vectors with the same logical value but different
        // histories (one had extra bits truncated away).
        let mut a = BitVec::from_bit_str("1111").unwrap();
        a.push(true);
        a.truncate(4);
        let b = BitVec::from_bit_str("1111").unwrap();
        assert_eq!(a, b);

        use std::collections::hash_map::DefaultHasher;
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn extend_concatenates() {
        let mut a = BitVec::from_bit_str("101").unwrap();
        let b = BitVec::from_bit_str("0110").unwrap();
        a.extend_from_bitvec(&b);
        assert_eq!(a.to_string(), "1010110");
    }

    #[test]
    fn push_bits_is_msb_first() {
        let mut v = BitVec::new();
        v.push_bits(0b1011, 4);
        v.push_bits(0x0F, 6);
        assert_eq!(v.to_string(), "1011001111");
    }

    #[test]
    fn truncate_then_push_does_not_resurrect_old_bits() {
        let mut v = BitVec::ones(70);
        v.truncate(3);
        assert_eq!(v.len(), 3);
        v.push(false);
        assert_eq!(v.to_string(), "1110");
    }

    #[test]
    fn from_bools_and_iter() {
        let bools = [true, false, false, true, true];
        let v = BitVec::from_bools(&bools);
        let collected: Vec<bool> = v.iter().collect();
        assert_eq!(collected, bools);
    }

    #[test]
    fn from_iterator() {
        let v: BitVec = (0..10).map(|i| i % 3 == 0).collect();
        assert_eq!(v.to_string(), "1001001001");
    }

    #[test]
    fn display_and_debug() {
        let v = BitVec::from_bit_str("1010").unwrap();
        assert_eq!(format!("{v}"), "1010");
        assert!(format!("{v:?}").contains("BitVec[4]"));
    }

    #[test]
    fn bit_writer_packs_fields() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bit(true);
        w.write_bits(0xAB, 8);
        assert_eq!(w.bit_len(), 12);
        let bytes = w.into_bytes();
        // 101 1 10101011 0000 -> 1011 1010 1011 0000
        assert_eq!(bytes, vec![0b1011_1010, 0b1011_0000]);
    }

    #[test]
    fn bit_writer_pad_counts() {
        let mut w = BitWriter::new();
        w.write_bits(0b1, 3);
        assert_eq!(w.pad_to_byte(), 5);
        assert_eq!(w.pad_to_byte(), 0);
        assert_eq!(w.bit_len(), 8);
    }

    #[test]
    fn bit_reader_reads_back_writer_output() {
        let mut w = BitWriter::new();
        w.write_bits(0x5, 3);
        w.write_bits(0x1234, 16);
        w.write_bit(true);
        w.write_bitvec(&BitVec::from_bit_str("0011").unwrap());
        let bytes = w.into_bytes();

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0x5);
        assert_eq!(r.read_bits(16).unwrap(), 0x1234);
        assert!(r.read_bit().unwrap());
        assert_eq!(r.read_bitvec(4).unwrap().to_string(), "0011");
    }

    #[test]
    fn bit_reader_errors_when_exhausted() {
        let bytes = [0xFF];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert!(r.read_bit().is_err());
        assert!(r.read_bits(1).is_err());
        assert!(r.read_bitvec(1).is_err());

        let mut r2 = BitReader::new(&bytes);
        assert!(r2.skip(9).is_err());
        assert!(r2.skip(8).is_ok());
        assert_eq!(r2.remaining_bits(), 0);
    }

    #[test]
    fn bit_reader_position_tracking() {
        let bytes = [0xAA, 0x55];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.total_bits(), 16);
        r.read_bits(5).unwrap();
        assert_eq!(r.position(), 5);
        assert_eq!(r.remaining_bits(), 11);
    }

    #[test]
    fn push_bits_matches_per_bit_reference_across_word_boundaries() {
        // Exercise every alignment of a 64-bit field against a word boundary.
        for lead in 0..130usize {
            for width in [1usize, 7, 8, 31, 33, 63, 64] {
                let value = 0xA5C3_19F0_7E24_8B6Du64;
                let mut fast = BitVec::zeros(lead);
                fast.push_bits(value, width);
                let mut reference = BitVec::zeros(lead);
                for i in (0..width).rev() {
                    reference.push((value >> i) & 1 == 1);
                }
                assert_eq!(fast, reference, "lead {lead}, width {width}");
            }
        }
    }

    #[test]
    fn slice_and_get_bits_across_word_boundaries() {
        let bytes: Vec<u8> = (0..40u8)
            .map(|i| i.wrapping_mul(97).wrapping_add(13))
            .collect();
        let v = BitVec::from_bytes(&bytes);
        for start in [0usize, 1, 7, 63, 64, 65, 127, 130] {
            for len in [0usize, 1, 5, 64, 65, 150] {
                if start + len > v.len() {
                    continue;
                }
                let s = v.slice(start..start + len);
                assert_eq!(s.len(), len);
                for i in 0..len {
                    assert_eq!(
                        s.get(i),
                        v.get(start + i),
                        "start {start}, len {len}, bit {i}"
                    );
                }
            }
        }
        // get_bits against the per-bit reference.
        for pos in [0usize, 3, 62, 64, 100] {
            for width in [1usize, 8, 33, 64] {
                if pos + width > v.len() {
                    continue;
                }
                let mut reference = 0u64;
                for i in 0..width {
                    reference = (reference << 1) | (v.get(pos + i) as u64);
                }
                assert_eq!(
                    v.get_bits(pos, width),
                    reference,
                    "pos {pos}, width {width}"
                );
            }
        }
    }

    #[test]
    fn extend_matches_push_reference_for_unaligned_lengths() {
        for dst_len in [0usize, 1, 63, 64, 65] {
            for src_len in [0usize, 1, 63, 64, 65, 200] {
                let dst: BitVec = (0..dst_len).map(|i| i % 3 == 0).collect();
                let src: BitVec = (0..src_len).map(|i| i % 5 < 2).collect();
                let mut fast = dst.clone();
                fast.extend_from_bitvec(&src);
                let mut reference = dst.clone();
                for i in 0..src.len() {
                    reference.push(src.get(i));
                }
                assert_eq!(fast, reference, "dst {dst_len}, src {src_len}");
            }
        }
    }

    #[test]
    fn words_accessor_and_from_words_roundtrip() {
        let v = BitVec::from_bytes(&[0x12, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0, 0xAB]);
        assert_eq!(v.words().len(), 2);
        assert_eq!(v.words()[0], 0x1234_5678_9ABC_DEF0);
        assert_eq!(v.words()[1], 0xAB00_0000_0000_0000);
        let rebuilt = BitVec::from_words(v.words().to_vec(), v.len());
        assert_eq!(rebuilt, v);
        // from_words masks stray tail bits.
        let masked = BitVec::from_words(vec![u64::MAX], 4);
        assert_eq!(masked.to_string(), "1111");
        assert_eq!(masked.words()[0], 0xF000_0000_0000_0000);
    }

    #[test]
    #[should_panic(expected = "word count must match")]
    fn from_words_rejects_wrong_word_count() {
        let _ = BitVec::from_words(vec![0, 0], 64);
    }

    #[test]
    fn copy_range_from_matches_slice() {
        let src: BitVec = (0..300).map(|i| i % 7 < 3).collect();
        let mut dst = BitVec::from_bytes(&[0xFF; 8]); // pre-existing contents
        for (start, end) in [(0usize, 300usize), (1, 1), (3, 200), (64, 128), (65, 300)] {
            dst.copy_range_from(&src, start..end);
            assert_eq!(dst, src.slice(start..end), "range {start}..{end}");
        }
    }

    #[test]
    fn load_bytes_reuses_storage_and_replaces_contents() {
        let mut v = BitVec::from_bytes(&[0xFF; 16]);
        v.load_bytes(&[0xAB, 0xCD, 0xEF]);
        assert_eq!(v.len(), 24);
        assert_eq!(v.to_bytes(), vec![0xAB, 0xCD, 0xEF]);
        // The tail of the previous contents must not leak back in.
        v.push_bits(0, 8);
        assert_eq!(v.to_bytes(), vec![0xAB, 0xCD, 0xEF, 0x00]);
    }

    #[test]
    fn hash_words_is_deterministic_and_tail_independent() {
        let a = BitVec::from_bit_str("1111").unwrap();
        // Same logical value, different history (stale tail bits masked away).
        let mut b = BitVec::from_bit_str("1111").unwrap();
        b.push(true);
        b.truncate(4);
        assert_eq!(a.hash_words(), b.hash_words());
        // Length participates: a zero-extended vector hashes differently.
        assert_ne!(BitVec::zeros(4).hash_words(), BitVec::zeros(5).hash_words());
        // Single-bit differences change the hash (overwhelmingly likely for
        // any decent mixer; these fixed cases guard against regressions to a
        // degenerate fold).
        let mut c = a.clone();
        c.flip(2);
        assert_ne!(a.hash_words(), c.hash_words());
    }

    #[test]
    fn append_bytes_to_matches_to_bytes() {
        for len in [0usize, 1, 5, 8, 63, 64, 65, 200] {
            let v: BitVec = (0..len).map(|i| i % 3 == 0).collect();
            let mut out = vec![0xEE];
            v.append_bytes_to(&mut out);
            assert_eq!(out[0], 0xEE);
            assert_eq!(&out[1..], v.to_bytes().as_slice(), "len {len}");
        }
    }

    #[test]
    fn writer_bitvec_roundtrip_without_padding() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let v = w.into_bitvec();
        assert_eq!(v.len(), 2);
        assert_eq!(v.to_string(), "11");
    }
}
