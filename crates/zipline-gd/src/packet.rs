//! ZipLine packet payload formats.
//!
//! Section 5 of the paper defines three packet types:
//!
//! 1. **regular, yet unprocessed packets** — any Ethernet packet entering the
//!    switch;
//! 2. **processed, but uncompressed packets** — syndrome + basis (+ carried
//!    bits + hardware alignment padding);
//! 3. **processed and compressed packets** — syndrome + identifier
//!    (+ carried bits).
//!
//! ZipLine settles on Ethernet-based framing; this module defines the
//! EtherType values the reproduction uses to distinguish the processed
//! types, and bit-exact serialization of the processed payloads, with size
//! accounting that reproduces the padding overhead discussed in the paper
//! (the 3 % "no table" overhead of Figure 3).

use crate::bits::{BitReader, BitVec};
use crate::codec::EncodedChunk;
use crate::config::GdConfig;
use crate::error::{GdError, Result};
use serde::{Deserialize, Serialize};

/// EtherType carried by processed-but-uncompressed (type 2) frames.
/// 0x88B5 is the IEEE 802 local experimental EtherType 1.
pub const ETHERTYPE_ZIPLINE_UNCOMPRESSED: u16 = 0x88B5;
/// EtherType carried by processed-and-compressed (type 3) frames.
/// 0x88B6 is the IEEE 802 local experimental EtherType 2.
pub const ETHERTYPE_ZIPLINE_COMPRESSED: u16 = 0x88B6;

/// The three ZipLine packet types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketType {
    /// Type 1: regular, unprocessed packet.
    Raw,
    /// Type 2: processed but uncompressed (syndrome + basis).
    Uncompressed,
    /// Type 3: processed and compressed (syndrome + identifier).
    Compressed,
}

impl PacketType {
    /// Classifies an EtherType value.
    pub fn from_ethertype(ethertype: u16) -> PacketType {
        match ethertype {
            ETHERTYPE_ZIPLINE_UNCOMPRESSED => PacketType::Uncompressed,
            ETHERTYPE_ZIPLINE_COMPRESSED => PacketType::Compressed,
            _ => PacketType::Raw,
        }
    }

    /// The EtherType a frame of this type carries; `None` for raw packets
    /// (they keep their original EtherType).
    pub fn ethertype(&self) -> Option<u16> {
        match self {
            PacketType::Raw => None,
            PacketType::Uncompressed => Some(ETHERTYPE_ZIPLINE_UNCOMPRESSED),
            PacketType::Compressed => Some(ETHERTYPE_ZIPLINE_COMPRESSED),
        }
    }

    /// The paper's numbering (1, 2, 3).
    pub fn number(&self) -> u8 {
        match self {
            PacketType::Raw => 1,
            PacketType::Uncompressed => 2,
            PacketType::Compressed => 3,
        }
    }
}

/// A ZipLine payload in one of the three forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZipLinePayload {
    /// Type 1: the raw chunk bytes.
    Raw(Vec<u8>),
    /// Type 2: syndrome + carried bits + basis.
    Uncompressed {
        /// The `m`-bit deviation (syndrome).
        deviation: u64,
        /// Carried-over bits not covered by the Hamming code.
        extra: BitVec,
        /// The `k`-bit basis.
        basis: BitVec,
    },
    /// Type 3: syndrome + carried bits + identifier.
    Compressed {
        /// The `m`-bit deviation (syndrome).
        deviation: u64,
        /// Carried-over bits not covered by the Hamming code.
        extra: BitVec,
        /// Identifier of the basis in the dictionary.
        id: u64,
    },
}

impl ZipLinePayload {
    /// The packet type of this payload.
    pub fn packet_type(&self) -> PacketType {
        match self {
            ZipLinePayload::Raw(_) => PacketType::Raw,
            ZipLinePayload::Uncompressed { .. } => PacketType::Uncompressed,
            ZipLinePayload::Compressed { .. } => PacketType::Compressed,
        }
    }

    /// Builds a type 2 payload from an encoded chunk.
    pub fn uncompressed_from_chunk(chunk: &EncodedChunk) -> Self {
        ZipLinePayload::Uncompressed {
            deviation: chunk.deviation,
            extra: chunk.extra.clone(),
            basis: chunk.basis.clone(),
        }
    }

    /// Builds a type 3 payload from an encoded chunk and its identifier.
    pub fn compressed_from_chunk(chunk: &EncodedChunk, id: u64) -> Self {
        ZipLinePayload::Compressed {
            deviation: chunk.deviation,
            extra: chunk.extra.clone(),
            id,
        }
    }

    /// Wire size in bits, including the hardware padding for type 2 payloads
    /// (matching [`GdConfig::uncompressed_payload_bits`] /
    /// [`GdConfig::compressed_payload_bits`]).
    pub fn wire_bits(&self, config: &GdConfig) -> usize {
        match self {
            ZipLinePayload::Raw(bytes) => bytes.len() * 8,
            ZipLinePayload::Uncompressed { .. } => config.uncompressed_payload_bits(),
            ZipLinePayload::Compressed { .. } => config.compressed_payload_bits(),
        }
    }

    /// Wire size in bytes as transmitted.
    pub fn wire_bytes(&self, config: &GdConfig) -> usize {
        self.wire_bits(config).div_ceil(8)
    }

    /// Serializes the payload to its on-the-wire byte representation.
    ///
    /// The layout mirrors the paper's header structure: the deviation comes
    /// first, then the carried bits, then the basis or identifier, then any
    /// alignment padding (zero bits). Raw payloads are passed through.
    ///
    /// Delegates to [`Self::encode_into`]; bulk callers (switch programs,
    /// the engine stream) should call that form directly with a reused
    /// scratch buffer.
    pub fn encode(&self, config: &GdConfig) -> Result<Vec<u8>> {
        let mut out = Vec::with_capacity(self.wire_bytes(config));
        self.encode_into(config, &mut out)?;
        Ok(out)
    }

    /// The zero-copy form of [`Self::encode`]: clears `out` and writes the
    /// wire bytes into it, reusing its allocation. The bit fields are packed
    /// through a small byte-granular accumulator, so apart from `out` itself
    /// no buffer is ever allocated — one scratch `Vec` per worker makes the
    /// per-packet payload rewrite allocation-free.
    pub fn encode_into(&self, config: &GdConfig, out: &mut Vec<u8>) -> Result<()> {
        out.clear();
        match self {
            ZipLinePayload::Raw(bytes) => {
                out.extend_from_slice(bytes);
                Ok(())
            }
            ZipLinePayload::Uncompressed {
                deviation,
                extra,
                basis,
            } => {
                self.check_fields(config, extra, Some(basis), None)?;
                let mut packer = BytePacker::new(out);
                packer.write_bits(*deviation, config.m as usize);
                packer.write_bitvec(extra);
                packer.write_bitvec(basis);
                let mut padding = config.tofino_padding_bits as usize;
                while padding > 0 {
                    let take = padding.min(64);
                    packer.write_bits(0, take);
                    padding -= take;
                }
                packer.finish();
                Ok(())
            }
            ZipLinePayload::Compressed {
                deviation,
                extra,
                id,
            } => {
                self.check_fields(config, extra, None, Some(*id))?;
                let mut packer = BytePacker::new(out);
                packer.write_bits(*deviation, config.m as usize);
                packer.write_bitvec(extra);
                packer.write_bits(*id, config.id_bits as usize);
                packer.finish();
                Ok(())
            }
        }
    }

    /// Parses a payload of the given packet type.
    pub fn decode(config: &GdConfig, packet_type: PacketType, bytes: &[u8]) -> Result<Self> {
        match packet_type {
            PacketType::Raw => Ok(ZipLinePayload::Raw(bytes.to_vec())),
            PacketType::Uncompressed => {
                let expected = config.uncompressed_payload_bytes();
                if bytes.len() < expected {
                    return Err(GdError::Malformed(format!(
                        "type 2 payload too short: {} bytes, expected {expected}",
                        bytes.len()
                    )));
                }
                let mut r = BitReader::new(bytes);
                let deviation = r.read_bits(config.m as usize)?;
                let extra = r.read_bitvec(config.extra_bits())?;
                let basis = r.read_bitvec(config.k())?;
                Ok(ZipLinePayload::Uncompressed {
                    deviation,
                    extra,
                    basis,
                })
            }
            PacketType::Compressed => {
                let expected = config.compressed_payload_bytes();
                if bytes.len() < expected {
                    return Err(GdError::Malformed(format!(
                        "type 3 payload too short: {} bytes, expected {expected}",
                        bytes.len()
                    )));
                }
                let mut r = BitReader::new(bytes);
                let deviation = r.read_bits(config.m as usize)?;
                let extra = r.read_bitvec(config.extra_bits())?;
                let id = r.read_bits(config.id_bits as usize)?;
                Ok(ZipLinePayload::Compressed {
                    deviation,
                    extra,
                    id,
                })
            }
        }
    }

    fn check_fields(
        &self,
        config: &GdConfig,
        extra: &BitVec,
        basis: Option<&BitVec>,
        id: Option<u64>,
    ) -> Result<()> {
        if extra.len() != config.extra_bits() {
            return Err(GdError::LengthMismatch {
                expected: config.extra_bits(),
                actual: extra.len(),
            });
        }
        if let Some(basis) = basis {
            if basis.len() != config.k() {
                return Err(GdError::LengthMismatch {
                    expected: config.k(),
                    actual: basis.len(),
                });
            }
        }
        if let Some(id) = id {
            if config.id_bits < 64 && id >> config.id_bits != 0 {
                return Err(GdError::IdentifierOverflow {
                    id,
                    bits: config.id_bits,
                });
            }
        }
        Ok(())
    }
}

/// Byte-granular bit accumulator behind [`ZipLinePayload::encode_into`]:
/// fields are shifted into a small accumulator and whole bytes are pushed to
/// the output as they fill, so serialization needs no intermediate bit
/// buffer. MSB-first, matching [`crate::bits::BitWriter`] bit-for-bit.
struct BytePacker<'a> {
    out: &'a mut Vec<u8>,
    /// Pending bits, right-aligned; always fewer than 8 after a write.
    acc: u128,
    nbits: usize,
}

impl<'a> BytePacker<'a> {
    fn new(out: &'a mut Vec<u8>) -> Self {
        Self {
            out,
            acc: 0,
            nbits: 0,
        }
    }

    /// Appends the lowest `width` bits of `value`, most significant first.
    fn write_bits(&mut self, value: u64, width: usize) {
        debug_assert!(width <= 64);
        if width == 0 {
            return;
        }
        let value = if width == 64 {
            value
        } else {
            value & ((1u64 << width) - 1)
        };
        // At most 7 pending bits + 64 new ones: fits comfortably in u128.
        self.acc = (self.acc << width) | u128::from(value);
        self.nbits += width;
        while self.nbits >= 8 {
            self.nbits -= 8;
            self.out.push((self.acc >> self.nbits) as u8);
        }
        self.acc &= (1u128 << self.nbits) - 1;
    }

    /// Appends all bits of `bits`, 64 at a time.
    fn write_bitvec(&mut self, bits: &BitVec) {
        let mut pos = 0;
        while pos < bits.len() {
            let take = (bits.len() - pos).min(64);
            self.write_bits(bits.get_bits(pos, take), take);
            pos += take;
        }
    }

    /// Flushes the trailing partial byte, zero-padded on the right.
    fn finish(self) {
        if self.nbits > 0 {
            self.out.push((self.acc << (8 - self.nbits)) as u8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::ChunkCodec;

    #[test]
    fn packet_type_numbers_match_paper() {
        assert_eq!(PacketType::Raw.number(), 1);
        assert_eq!(PacketType::Uncompressed.number(), 2);
        assert_eq!(PacketType::Compressed.number(), 3);
    }

    #[test]
    fn ethertype_classification_roundtrip() {
        assert_eq!(PacketType::from_ethertype(0x0800), PacketType::Raw);
        assert_eq!(
            PacketType::from_ethertype(ETHERTYPE_ZIPLINE_UNCOMPRESSED),
            PacketType::Uncompressed
        );
        assert_eq!(
            PacketType::from_ethertype(ETHERTYPE_ZIPLINE_COMPRESSED),
            PacketType::Compressed
        );
        assert_eq!(PacketType::Raw.ethertype(), None);
        assert_eq!(PacketType::Uncompressed.ethertype(), Some(0x88B5));
        assert_eq!(PacketType::Compressed.ethertype(), Some(0x88B6));
    }

    #[test]
    fn wire_sizes_match_paper_parameters() {
        let config = GdConfig::paper_default();
        let codec = ChunkCodec::new(&config).unwrap();
        let enc = codec.encode_chunk(&[0x77u8; 32]).unwrap();

        let raw = ZipLinePayload::Raw(vec![0u8; 32]);
        assert_eq!(raw.wire_bytes(&config), 32);

        let unc = ZipLinePayload::uncompressed_from_chunk(&enc);
        assert_eq!(unc.wire_bits(&config), 264);
        assert_eq!(unc.wire_bytes(&config), 33);
        assert_eq!(unc.encode(&config).unwrap().len(), 33);

        let comp = ZipLinePayload::compressed_from_chunk(&enc, 0x1234);
        assert_eq!(comp.wire_bits(&config), 24);
        assert_eq!(comp.wire_bytes(&config), 3);
        assert_eq!(comp.encode(&config).unwrap().len(), 3);
    }

    #[test]
    fn uncompressed_payload_roundtrip() {
        let config = GdConfig::paper_default();
        let codec = ChunkCodec::new(&config).unwrap();
        let chunk: Vec<u8> = (0..32u8).collect();
        let enc = codec.encode_chunk(&chunk).unwrap();
        let payload = ZipLinePayload::uncompressed_from_chunk(&enc);
        let bytes = payload.encode(&config).unwrap();
        let parsed = ZipLinePayload::decode(&config, PacketType::Uncompressed, &bytes).unwrap();
        assert_eq!(parsed, payload);
        // And the parsed payload still decodes to the original chunk.
        if let ZipLinePayload::Uncompressed {
            deviation,
            extra,
            basis,
        } = parsed
        {
            let decoded = codec
                .decode_chunk(&EncodedChunk {
                    extra,
                    deviation,
                    basis,
                    basis_hash: 0,
                })
                .unwrap();
            assert_eq!(decoded, chunk);
        } else {
            unreachable!();
        }
    }

    #[test]
    fn compressed_payload_roundtrip() {
        let config = GdConfig::paper_default();
        let codec = ChunkCodec::new(&config).unwrap();
        let enc = codec.encode_chunk(&[0xCDu8; 32]).unwrap();
        let payload = ZipLinePayload::compressed_from_chunk(&enc, 32_767);
        let bytes = payload.encode(&config).unwrap();
        let parsed = ZipLinePayload::decode(&config, PacketType::Compressed, &bytes).unwrap();
        assert_eq!(parsed, payload);
    }

    #[test]
    fn raw_payload_passthrough() {
        let config = GdConfig::paper_default();
        let payload = ZipLinePayload::Raw(vec![1, 2, 3, 4]);
        assert_eq!(payload.encode(&config).unwrap(), vec![1, 2, 3, 4]);
        let parsed = ZipLinePayload::decode(&config, PacketType::Raw, &[1, 2, 3, 4]).unwrap();
        assert_eq!(parsed, payload);
        assert_eq!(payload.packet_type(), PacketType::Raw);
    }

    #[test]
    fn encode_into_matches_bitwriter_reference_and_reuses_buffer() {
        use crate::bits::BitWriter;
        for config in [
            GdConfig::paper_default(),
            GdConfig::for_parameters(3, 4).unwrap(),
            GdConfig::for_parameters(5, 6).unwrap(),
        ] {
            let codec = ChunkCodec::new(&config).unwrap();
            let chunk: Vec<u8> = (0..config.chunk_bytes)
                .map(|i| (i * 37 + 11) as u8)
                .collect();
            let enc = codec.encode_chunk(&chunk).unwrap();

            // Type 2 reference via the general-purpose BitWriter.
            let unc = ZipLinePayload::uncompressed_from_chunk(&enc);
            let mut w = BitWriter::new();
            w.write_bits(enc.deviation, config.m as usize);
            w.write_bitvec(&enc.extra);
            w.write_bitvec(&enc.basis);
            for _ in 0..config.tofino_padding_bits {
                w.write_bit(false);
            }
            let reference = w.into_bytes();
            let mut scratch = vec![0xFFu8; 64]; // stale contents must be cleared
            unc.encode_into(&config, &mut scratch).unwrap();
            assert_eq!(scratch, reference, "type 2, m = {}", config.m);
            assert_eq!(scratch, unc.encode(&config).unwrap());

            // Type 3 reference.
            let comp = ZipLinePayload::compressed_from_chunk(&enc, 3);
            let mut w = BitWriter::new();
            w.write_bits(enc.deviation, config.m as usize);
            w.write_bitvec(&enc.extra);
            w.write_bits(3, config.id_bits as usize);
            let reference = w.into_bytes();
            comp.encode_into(&config, &mut scratch).unwrap();
            assert_eq!(scratch, reference, "type 3, m = {}", config.m);

            // Raw passthrough into the same reused buffer.
            let raw = ZipLinePayload::Raw(vec![9, 8, 7]);
            raw.encode_into(&config, &mut scratch).unwrap();
            assert_eq!(scratch, vec![9, 8, 7]);
        }
    }

    #[test]
    fn identifier_overflow_is_rejected() {
        let config = GdConfig::paper_default();
        let payload = ZipLinePayload::Compressed {
            deviation: 0,
            extra: BitVec::zeros(1),
            id: 1 << 15, // does not fit in 15 bits
        };
        assert!(matches!(
            payload.encode(&config),
            Err(GdError::IdentifierOverflow { .. })
        ));
    }

    #[test]
    fn field_length_mismatches_are_rejected() {
        let config = GdConfig::paper_default();
        let payload = ZipLinePayload::Uncompressed {
            deviation: 0,
            extra: BitVec::zeros(3), // should be 1
            basis: BitVec::zeros(247),
        };
        assert!(payload.encode(&config).is_err());
        let payload = ZipLinePayload::Uncompressed {
            deviation: 0,
            extra: BitVec::zeros(1),
            basis: BitVec::zeros(200), // should be 247
        };
        assert!(payload.encode(&config).is_err());
    }

    #[test]
    fn truncated_payloads_are_rejected() {
        let config = GdConfig::paper_default();
        assert!(ZipLinePayload::decode(&config, PacketType::Uncompressed, &[0u8; 10]).is_err());
        assert!(ZipLinePayload::decode(&config, PacketType::Compressed, &[0u8; 2]).is_err());
    }

    #[test]
    fn padding_bits_are_zero_on_the_wire() {
        let config = GdConfig::paper_default();
        let codec = ChunkCodec::new(&config).unwrap();
        let enc = codec.encode_chunk(&[0xFFu8; 32]).unwrap();
        let bytes = ZipLinePayload::uncompressed_from_chunk(&enc)
            .encode(&config)
            .unwrap();
        // Total 264 bits; the last 8 are alignment padding and must be zero.
        assert_eq!(bytes.len(), 33);
        assert_eq!(bytes[32], 0);
    }

    #[test]
    fn small_parameter_payloads() {
        // m = 3 / 4-bit ids: type 3 payload = 3 + 1 + 4 = 8 bits = 1 byte.
        let config = GdConfig::for_parameters(3, 4).unwrap();
        let codec = ChunkCodec::new(&config).unwrap();
        let enc = codec.encode_chunk(&[0b1010_1010]).unwrap();
        let comp = ZipLinePayload::compressed_from_chunk(&enc, 5);
        assert_eq!(comp.wire_bytes(&config), 1);
        let bytes = comp.encode(&config).unwrap();
        assert_eq!(bytes.len(), 1);
        let parsed = ZipLinePayload::decode(&config, PacketType::Compressed, &bytes).unwrap();
        assert_eq!(parsed, comp);
    }
}
