//! Configuration of the GD / ZipLine parameters.
//!
//! Three parameters pertain to the Hamming code (`m`, with `n` and `k`
//! derived), one to the identifier width, and one to the payload chunk size.
//! The paper settles on `m = 8` (the largest multiple of 8 that fits the
//! hardware) and 15-bit identifiers (one below a multiple of 8, leaving room
//! for the one carried-over raw bit), with 256-bit chunks (section 7,
//! "Choice of parameters").

use crate::error::{GdError, Result};
use serde::{Deserialize, Serialize};

/// Parameters of a GD / ZipLine deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GdConfig {
    /// Hamming parameter `m`: number of parity bits, syndrome width, and CRC
    /// width. The paper uses 8.
    pub m: u32,
    /// Width in bits of the short identifiers that replace bases (the paper
    /// uses 15, allowing 2^15 = 32 768 cached bases).
    pub id_bits: u32,
    /// Size of the payload chunk processed per packet, in bytes. Must be at
    /// least `ceil(n / 8)`. Bits beyond the `n` covered by the Hamming code
    /// are carried verbatim ("we require one additional bit to store the MSB
    /// of the raw data packet" for the paper's parameters).
    pub chunk_bytes: usize,
    /// Extra padding bits that the hardware target forces into the
    /// processed-but-uncompressed packet format because of byte-alignment
    /// constraints (the paper measures 8 such bits, producing the 3 %
    /// overhead of Figure 3's "no table" bar).
    pub tofino_padding_bits: u32,
}

impl GdConfig {
    /// The parameters used throughout the paper's evaluation:
    /// Hamming(255, 247) (`m = 8`), 15-bit identifiers, 32-byte chunks, and
    /// 8 alignment padding bits.
    pub fn paper_default() -> Self {
        Self {
            m: 8,
            id_bits: 15,
            chunk_bytes: 32,
            tofino_padding_bits: 8,
        }
    }

    /// A configuration with the given Hamming parameter and identifier
    /// width, choosing the smallest chunk size that covers the code length
    /// and no artificial padding. Useful for ablations and tests.
    pub fn for_parameters(m: u32, id_bits: u32) -> Result<Self> {
        if !(3..=15).contains(&m) {
            return Err(GdError::UnsupportedHammingParameter(m));
        }
        let n = (1usize << m) - 1;
        let cfg = Self {
            m,
            id_bits,
            chunk_bytes: n.div_ceil(8),
            tofino_padding_bits: 0,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Codeword length `n = 2^m - 1` in bits.
    pub fn n(&self) -> usize {
        (1usize << self.m) - 1
    }

    /// Basis length `k = n - m` in bits.
    pub fn k(&self) -> usize {
        self.n() - self.m as usize
    }

    /// Number of chunk bits not covered by the Hamming code and carried
    /// verbatim through both processed packet formats.
    pub fn extra_bits(&self) -> usize {
        self.chunk_bytes * 8 - self.n()
    }

    /// Number of distinct identifiers (dictionary capacity): `2^id_bits`.
    pub fn dictionary_capacity(&self) -> usize {
        1usize << self.id_bits
    }

    /// Size of a raw (type 1) chunk payload, in bits.
    pub fn raw_payload_bits(&self) -> usize {
        self.chunk_bytes * 8
    }

    /// Size of a processed-but-uncompressed (type 2) payload, in bits:
    /// syndrome + basis + carried bits + hardware padding.
    pub fn uncompressed_payload_bits(&self) -> usize {
        self.m as usize + self.k() + self.extra_bits() + self.tofino_padding_bits as usize
    }

    /// Size of a processed-and-compressed (type 3) payload, in bits:
    /// syndrome + identifier + carried bits.
    pub fn compressed_payload_bits(&self) -> usize {
        self.m as usize + self.id_bits as usize + self.extra_bits()
    }

    /// Size in bytes (rounded up to whole bytes, as transmitted on the wire)
    /// of a type 1 payload.
    pub fn raw_payload_bytes(&self) -> usize {
        self.raw_payload_bits().div_ceil(8)
    }

    /// Size in bytes of a type 2 payload as transmitted.
    pub fn uncompressed_payload_bytes(&self) -> usize {
        self.uncompressed_payload_bits().div_ceil(8)
    }

    /// Size in bytes of a type 3 payload as transmitted.
    pub fn compressed_payload_bytes(&self) -> usize {
        self.compressed_payload_bits().div_ceil(8)
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> Result<()> {
        if !(3..=15).contains(&self.m) {
            return Err(GdError::UnsupportedHammingParameter(self.m));
        }
        if self.id_bits == 0 || self.id_bits > 32 {
            return Err(GdError::InvalidConfig(format!(
                "id_bits = {} out of range 1..=32",
                self.id_bits
            )));
        }
        if self.chunk_bytes * 8 < self.n() {
            return Err(GdError::InvalidConfig(format!(
                "chunk of {} bytes cannot hold a {}-bit Hamming block",
                self.chunk_bytes,
                self.n()
            )));
        }
        if self.chunk_bytes == 0 || self.chunk_bytes > 9216 {
            return Err(GdError::InvalidConfig(format!(
                "chunk_bytes = {} out of range 1..=9216",
                self.chunk_bytes
            )));
        }
        Ok(())
    }
}

impl Default for GdConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section7() {
        let c = GdConfig::paper_default();
        assert_eq!(c.m, 8);
        assert_eq!(c.n(), 255);
        assert_eq!(c.k(), 247);
        assert_eq!(c.id_bits, 15);
        assert_eq!(c.dictionary_capacity(), 32_768);
        assert_eq!(c.chunk_bytes, 32);
        // One carried bit: "We require one additional bit to store the MSB of
        // the raw data packet".
        assert_eq!(c.extra_bits(), 1);
        c.validate().unwrap();
    }

    #[test]
    fn paper_payload_sizes_reproduce_figure3_ratios() {
        let c = GdConfig::paper_default();
        // Raw chunk: 32 bytes.
        assert_eq!(c.raw_payload_bytes(), 32);
        // Type 2: 8 + 247 + 1 + 8 padding = 264 bits = 33 bytes -> the 1.03
        // "no table" ratio of Figure 3.
        assert_eq!(c.uncompressed_payload_bits(), 264);
        assert_eq!(c.uncompressed_payload_bytes(), 33);
        assert!((c.uncompressed_payload_bytes() as f64 / 32.0 - 1.03).abs() < 0.005);
        // Type 3: 8 + 15 + 1 = 24 bits = 3 bytes -> the 0.09 static-table
        // ratio of Figure 3.
        assert_eq!(c.compressed_payload_bits(), 24);
        assert_eq!(c.compressed_payload_bytes(), 3);
        assert!((c.compressed_payload_bytes() as f64 / 32.0 - 0.094).abs() < 0.005);
    }

    #[test]
    fn for_parameters_builds_minimal_chunks() {
        let c = GdConfig::for_parameters(3, 4).unwrap();
        assert_eq!(c.n(), 7);
        assert_eq!(c.k(), 4);
        assert_eq!(c.chunk_bytes, 1);
        assert_eq!(c.extra_bits(), 1);
        assert_eq!(c.tofino_padding_bits, 0);

        let c = GdConfig::for_parameters(8, 15).unwrap();
        assert_eq!(c.chunk_bytes, 32);
        assert_eq!(c.extra_bits(), 1);

        let c = GdConfig::for_parameters(10, 12).unwrap();
        assert_eq!(c.chunk_bytes, 128);
        assert_eq!(c.extra_bits(), 1);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(GdConfig::for_parameters(2, 4).is_err());
        assert!(GdConfig::for_parameters(16, 4).is_err());

        let mut c = GdConfig::paper_default();
        c.chunk_bytes = 31; // cannot hold 255 bits
        assert!(c.validate().is_err());

        let mut c = GdConfig::paper_default();
        c.id_bits = 0;
        assert!(c.validate().is_err());
        c.id_bits = 33;
        assert!(c.validate().is_err());

        let mut c = GdConfig::paper_default();
        c.chunk_bytes = 10_000;
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_is_paper_default() {
        assert_eq!(GdConfig::default(), GdConfig::paper_default());
    }

    #[test]
    fn payload_sizes_without_padding() {
        // Without the Tofino alignment padding, a type 2 payload is exactly
        // the raw chunk size (GD adds no bits by itself).
        let mut c = GdConfig::paper_default();
        c.tofino_padding_bits = 0;
        assert_eq!(c.uncompressed_payload_bits(), c.raw_payload_bits());
    }
}
