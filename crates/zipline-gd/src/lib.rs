//! Generalized Deduplication (GD) core for the ZipLine reproduction.
//!
//! This crate implements the compression algorithm at the heart of
//! *ZipLine: In-Network Compression at Line Speed* (CoNEXT 2020):
//!
//! * bit-exact buffers ([`bits`]) — Hamming block lengths are never byte
//!   aligned, so all processing is done at bit granularity;
//! * polynomial arithmetic over GF(2) ([`poly`]) and a generic CRC engine
//!   ([`crc`]) matching the paper's `CRC(B) = B(x) mod g(x)` convention;
//! * Hamming codes and their CRC equivalence ([`hamming`], Tables 1 and 2 of
//!   the paper);
//! * the GD transformation function mapping a chunk to a *basis* plus a
//!   *deviation* ([`transform`], Figures 1 and 2);
//! * a chunk/stream codec ([`codec`]), the basis dictionary with LRU + TTL
//!   semantics ([`dictionary`]), the ZipLine wire formats ([`packet`]) and
//!   compression statistics ([`stats`]).
//!
//! The crate is hardware independent: the in-switch deployment of the same
//! workflow lives in the `zipline` and `zipline-switch` crates.
//!
//! # Word-parallel fast path (PR 1)
//!
//! The entire data path operates on **packed `u64` words** rather than
//! per-bit loops. The conventions, shared by every fast-path API:
//!
//! * a [`BitVec`] stores bit `i` of the sequence in word `i / 64` at bit
//!   `63 - (i % 64)` (MSB-first), so a storage word read as an integer *is*
//!   the corresponding 64-bit slice of the sequence, and storage bits at
//!   positions `>= len()` are always zero (the masked-tail invariant);
//! * [`CrcEngine::checksum_words`](crc::CrcEngine::checksum_words) consumes
//!   those words directly with slicing-by-8 tables (64 message bits per
//!   step, any width `m <= 32`), with
//!   [`compute_bits_serial`](crc::CrcEngine::compute_bits_serial) kept as
//!   the cross-checked bit-serial reference;
//! * [`HammingCode`] resolves syndromes through an O(1)
//!   syndrome→error-position table, so applying a deviation is a single-word
//!   bit flip rather than an `n`-bit mask XOR;
//! * [`ChunkCodec::encode_chunks`](codec::ChunkCodec::encode_chunks) /
//!   [`GdCompressor::compress_batch`](codec::GdCompressor::compress_batch)
//!   batch-encode whole buffers against a reused
//!   [`EncodeScratch`], allocation-free in steady
//!   state.
//!
//! Bit-exact equivalence of every fast path against its bit-serial
//! reference is enforced by `tests/word_parallel_equivalence.rs`.
//!
//! # Dictionary hot path and batch decode (PR 2)
//!
//! The stream codec's remaining hot spots were rebuilt for the
//! `zipline-engine` subsystem, which stacks a sharded, multi-core engine on
//! top of this crate:
//!
//! * [`BitVec`] stores up to 64 bits inline (no heap traffic for carried
//!   bits, deviations or identifiers) and exposes
//!   [`hash_words`](BitVec::hash_words), a word-parallel basis hash computed
//!   once per chunk and cached on
//!   [`EncodedChunk::basis_hash`](codec::EncodedChunk::basis_hash);
//! * [`BasisDictionary`] resolves identifiers through a dense entry slab
//!   (ids are `0..capacity`, so every LRU hop is a vector index) and probes
//!   bases through hash buckets keyed by the cached hash — no SipHash over
//!   247-bit keys anywhere on the hot path;
//! * [`GdDecompressor::decompress_batch`](codec::GdDecompressor::decompress_batch)
//!   is the decode twin of `compress_batch`: records stream through a
//!   recycled [`DecodeScratch`] via
//!   [`ChunkCodec::decode_parts_into`](codec::ChunkCodec::decode_parts_into);
//! * [`ZipLinePayload::encode_into`](packet::ZipLinePayload::encode_into)
//!   serializes wire payloads into a caller-owned scratch buffer, making the
//!   switch programs' per-packet rewrite allocation-free.
//!
//! # Quick example
//!
//! ```
//! use zipline_gd::{GdConfig, codec::ChunkCodec};
//!
//! // Paper parameters: Hamming(255, 247), 15-bit identifiers, 32-byte chunks.
//! let config = GdConfig::paper_default();
//! let codec = ChunkCodec::new(&config).unwrap();
//!
//! let chunk = [0xAB_u8; 32];
//! let encoded = codec.encode_chunk(&chunk).unwrap();
//! let decoded = codec.decode_chunk(&encoded).unwrap();
//! assert_eq!(decoded, chunk);
//! ```

pub mod bits;
pub mod codec;
pub mod config;
pub mod crc;
pub mod dictionary;
pub mod error;
pub mod hamming;
pub mod packet;
pub mod poly;
pub mod stats;
pub mod transform;

pub use bits::BitVec;
pub use codec::{ChunkCodec, DecodeScratch, EncodeScratch, GdCompressor, GdDecompressor};
pub use config::GdConfig;
pub use crc::{CrcEngine, CrcSpec};
pub use dictionary::{BasisDictionary, BasisDictionaryState, DictionaryEntryState};
pub use error::GdError;
pub use hamming::HammingCode;
pub use packet::{PacketType, ZipLinePayload};
pub use stats::CompressionStats;
pub use transform::HammingTransform;
