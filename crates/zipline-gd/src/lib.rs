//! Generalized Deduplication (GD) core for the ZipLine reproduction.
//!
//! This crate implements the compression algorithm at the heart of
//! *ZipLine: In-Network Compression at Line Speed* (CoNEXT 2020):
//!
//! * bit-exact buffers ([`bits`]) — Hamming block lengths are never byte
//!   aligned, so all processing is done at bit granularity;
//! * polynomial arithmetic over GF(2) ([`poly`]) and a generic CRC engine
//!   ([`crc`]) matching the paper's `CRC(B) = B(x) mod g(x)` convention;
//! * Hamming codes and their CRC equivalence ([`hamming`], Tables 1 and 2 of
//!   the paper);
//! * the GD transformation function mapping a chunk to a *basis* plus a
//!   *deviation* ([`transform`], Figures 1 and 2);
//! * a chunk/stream codec ([`codec`]), the basis dictionary with LRU + TTL
//!   semantics ([`dictionary`]), the ZipLine wire formats ([`packet`]) and
//!   compression statistics ([`stats`]).
//!
//! The crate is hardware independent: the in-switch deployment of the same
//! workflow lives in the `zipline` and `zipline-switch` crates.
//!
//! # Quick example
//!
//! ```
//! use zipline_gd::{GdConfig, codec::ChunkCodec};
//!
//! // Paper parameters: Hamming(255, 247), 15-bit identifiers, 32-byte chunks.
//! let config = GdConfig::paper_default();
//! let codec = ChunkCodec::new(&config).unwrap();
//!
//! let chunk = [0xAB_u8; 32];
//! let encoded = codec.encode_chunk(&chunk).unwrap();
//! let decoded = codec.decode_chunk(&encoded).unwrap();
//! assert_eq!(decoded, chunk);
//! ```

pub mod bits;
pub mod codec;
pub mod config;
pub mod crc;
pub mod dictionary;
pub mod error;
pub mod hamming;
pub mod packet;
pub mod poly;
pub mod stats;
pub mod transform;

pub use bits::BitVec;
pub use codec::{ChunkCodec, GdCompressor, GdDecompressor};
pub use config::GdConfig;
pub use crc::{CrcEngine, CrcSpec};
pub use dictionary::BasisDictionary;
pub use error::GdError;
pub use hamming::HammingCode;
pub use packet::{PacketType, ZipLinePayload};
pub use stats::CompressionStats;
pub use transform::HammingTransform;
