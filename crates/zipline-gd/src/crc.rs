//! Generic CRC engine matching the convention used by the paper.
//!
//! ZipLine computes Hamming syndromes with the CRC unit of the Tofino chip.
//! The paper defines the CRC of a block `B` (with `b_{n-1}` the MSB /
//! coefficient of `x^{n-1}`) as the residue of the polynomial division of
//! `B(x)` by the generator `g(x)`:
//!
//! ```text
//! CRC(B) = B(x) mod g(x)
//! ```
//!
//! Note that — unlike most network CRCs — the message is *not* pre-multiplied
//! by `x^m`. Table 2 of the paper fixes this convention: with
//! `g(x) = x^3 + x + 1`, `CRC-3(0000001) = 001` (i.e. `x^0 mod g = 1`).
//!
//! Three implementations are provided and cross-checked by property tests:
//!
//! * a bit-serial reference (any message length, any `m <= 32`) — the ground
//!   truth every fast path is checked against;
//! * a table-driven byte-at-a-time variant (the ablation benchmarked by
//!   `zipline-bench`, mirroring the fact that the Tofino CRC extern consumes
//!   whole containers per clock; requires `m >= 8`);
//! * a slicing-by-8 **word-parallel** path ([`CrcEngine::checksum_words`])
//!   that consumes the packed `u64` words of a [`BitVec`] directly — 64
//!   message bits per step, valid for every `m <= 32` and any bit length.
//!   This is what the GD data path ([`crate::hamming`], [`crate::codec`])
//!   uses to compute Hamming syndromes.
//!
//! # Word-path conventions
//!
//! [`checksum_words`](CrcEngine::checksum_words) reads words in
//! [`BitVec`] order: word 0 holds the first 64 bits of
//! the message with the first bit in the most significant position, i.e. a
//! word *is* the corresponding 64-coefficient slice of the message
//! polynomial. A trailing partial word must be left-aligned with its unused
//! low bits zero (the `BitVec` masked-tail invariant).

use crate::bits::BitVec;
use crate::error::{GdError, Result};
use crate::poly::Gf2Poly;

/// Description of a CRC-m in the paper's convention.
///
/// `poly_low` is the generator polynomial *without* its leading `x^m` term —
/// exactly the "parameter for CRC-m" column of Table 1 that gets written into
/// the Tofino CRC extern configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CrcSpec {
    /// Width `m` of the CRC in bits (1..=32).
    pub width: u32,
    /// Generator polynomial with the `x^m` term removed.
    pub poly_low: u64,
}

impl CrcSpec {
    /// Creates a spec from the width and the low part of the polynomial.
    pub fn new(width: u32, poly_low: u64) -> Result<Self> {
        if width == 0 || width > 32 {
            return Err(GdError::InvalidGeneratorPolynomial(format!(
                "CRC width {width} out of range 1..=32"
            )));
        }
        if width < 64 && poly_low >> width != 0 {
            return Err(GdError::InvalidGeneratorPolynomial(format!(
                "poly_low {poly_low:#x} has bits above x^{width}"
            )));
        }
        Ok(Self { width, poly_low })
    }

    /// Creates a spec from a full generator polynomial (including `x^m`).
    pub fn from_full_poly(poly: Gf2Poly) -> Result<Self> {
        let width = poly.degree();
        if width == 0 {
            return Err(GdError::InvalidGeneratorPolynomial(
                "generator must have degree >= 1".into(),
            ));
        }
        let poly_low = poly.0 & !(1u64 << width);
        Self::new(width, poly_low)
    }

    /// Full generator polynomial, including the `x^m` term.
    pub fn full_poly(&self) -> Gf2Poly {
        Gf2Poly(self.poly_low | (1u64 << self.width))
    }

    /// Bit mask covering the `m` CRC bits.
    pub fn mask(&self) -> u64 {
        if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }
}

/// A CRC engine for one [`CrcSpec`].
///
/// The engine pre-computes a 256-entry transition table used by the
/// byte-oriented fast path; the bit-serial path needs no state beyond the
/// spec itself.
#[derive(Debug, Clone)]
pub struct CrcEngine {
    spec: CrcSpec,
    /// `table[v] = (v(x) * x^m) mod g(x)` for every byte value `v`.
    ///
    /// Used to advance the register by 8 input bits at a time when `m >= 8`.
    table: [u64; 256],
    /// Slicing-by-8 tables: `slice_table[j][v] = (v(x) · x^{8j}) mod g(x)`.
    ///
    /// Entries `j < 8` reduce the eight bytes of one message word; entries
    /// `j >= 8` fold the previous register (multiplied by `x^64`) into the
    /// new word, one register byte each. `8 + ceil(m / 8)` tables cover every
    /// supported width.
    slice_table: Vec<[u64; 256]>,
    /// `x_pow[t] = x^t mod g(x)` for `t < 64`, used to append a sub-word tail
    /// (or a run of zero bits) to the register in O(1).
    x_pow: [u64; 64],
}

impl CrcEngine {
    /// Builds an engine for `spec`.
    pub fn new(spec: CrcSpec) -> Self {
        let g = spec.full_poly();
        let mut table = [0u64; 256];
        for (v, slot) in table.iter_mut().enumerate() {
            // (v * x^m) mod g, computed with plain polynomial arithmetic.
            let shifted = Gf2Poly(v as u64).mul(Gf2Poly(1u64 << spec.width));
            *slot = shifted.rem(g).0;
        }

        let register_bytes = spec.width.div_ceil(8) as usize;
        let mut slice_table = Vec::with_capacity(8 + register_bytes);
        for j in 0..8 + register_bytes {
            let base = Gf2Poly::x_pow_mod(8 * j as u64, g);
            let mut entries = [0u64; 256];
            for (v, slot) in entries.iter_mut().enumerate() {
                *slot = Gf2Poly(v as u64).mul(base).rem(g).0;
            }
            slice_table.push(entries);
        }

        let mut x_pow = [0u64; 64];
        for (t, slot) in x_pow.iter_mut().enumerate() {
            *slot = Gf2Poly::x_pow_mod(t as u64, g).0;
        }

        Self {
            spec,
            table,
            slice_table,
            x_pow,
        }
    }

    /// Convenience constructor from a full generator polynomial.
    pub fn from_full_poly(poly: Gf2Poly) -> Result<Self> {
        Ok(Self::new(CrcSpec::from_full_poly(poly)?))
    }

    /// The spec this engine implements.
    pub fn spec(&self) -> CrcSpec {
        self.spec
    }

    /// Width `m` in bits.
    pub fn width(&self) -> u32 {
        self.spec.width
    }

    /// Computes `CRC(bits) = bits(x) mod g(x)` with the bit-serial reference
    /// algorithm (works for any message length, including zero).
    pub fn compute_bits_serial(&self, bits: &BitVec) -> u64 {
        let g_full = self.spec.full_poly().0;
        let top = 1u64 << self.spec.width;
        let mut reg = 0u64;
        for bit in bits.iter() {
            reg = (reg << 1) | (bit as u64);
            if reg & top != 0 {
                reg ^= g_full;
            }
        }
        reg & self.spec.mask()
    }

    /// Computes the CRC of a bit sequence via the word-parallel slicing-by-8
    /// path ([`Self::checksum_words`]) — the default for the whole GD data
    /// path. Bit-exact with [`Self::compute_bits_serial`] for every width and
    /// length (enforced by the property-test suite).
    pub fn compute_bits(&self, bits: &BitVec) -> u64 {
        self.checksum_words(bits.words(), bits.len())
    }

    /// Reduces a polynomial of degree <= 63 modulo `g` with byte-table
    /// lookups.
    #[inline]
    fn reduce64(&self, mut poly: u64) -> u64 {
        let mut acc = 0u64;
        let mut j = 0;
        while poly != 0 {
            acc ^= self.slice_table[j][(poly & 0xFF) as usize];
            poly >>= 8;
            j += 1;
        }
        acc
    }

    /// One slicing-by-8 step: `(reg · x^64 + word) mod g`, consuming 64
    /// message bits (the word's MSB is the earliest bit).
    #[inline]
    fn advance_word(&self, reg: u64, word: u64) -> u64 {
        let t = &self.slice_table;
        // The eight message bytes: byte j of the word carries x^{8j}..x^{8j+7}.
        let mut acc = t[0][(word & 0xFF) as usize]
            ^ t[1][((word >> 8) & 0xFF) as usize]
            ^ t[2][((word >> 16) & 0xFF) as usize]
            ^ t[3][((word >> 24) & 0xFF) as usize]
            ^ t[4][((word >> 32) & 0xFF) as usize]
            ^ t[5][((word >> 40) & 0xFF) as usize]
            ^ t[6][((word >> 48) & 0xFF) as usize]
            ^ t[7][((word >> 56) & 0xFF) as usize];
        // The previous register, promoted by x^64: register byte i maps to
        // table 8 + i. For the Hamming widths (m <= 8) this is one lookup.
        let mut r = reg;
        let mut j = 8;
        while r != 0 {
            acc ^= self.slice_table[j][(r & 0xFF) as usize];
            r >>= 8;
            j += 1;
        }
        acc
    }

    /// Appends `count < 64` message bits held low-aligned in `tail`:
    /// `(reg · x^count + tail) mod g`.
    #[inline]
    fn advance_tail(&self, reg: u64, tail: u64, count: usize) -> u64 {
        debug_assert!(count < 64);
        if count == 0 {
            return reg;
        }
        // reg and x^count mod g both have degree < m <= 32, so the carry-less
        // product fits in 63 coefficient bits and one table reduction folds
        // it back under g.
        let promoted = Gf2Poly(reg).mul(Gf2Poly(self.x_pow[count])).0;
        self.reduce64(promoted) ^ self.reduce64(tail)
    }

    /// Computes the CRC of a `bit_len`-bit message stored as packed words in
    /// [`BitVec`] order (see the module docs for the
    /// exact convention) using slicing-by-8: 64 message bits per step, 9–12
    /// table lookups each. Works for every supported width `m <= 32`.
    ///
    /// This is the word-parallel fast path behind [`Self::compute_bits`];
    /// [`Self::compute_bits_serial`] is the cross-checked reference.
    ///
    /// # Panics
    /// Panics if `words` holds fewer than `bit_len` bits.
    pub fn checksum_words(&self, words: &[u64], bit_len: usize) -> u64 {
        assert!(
            bit_len <= words.len() * 64,
            "bit_len {bit_len} exceeds {} words",
            words.len()
        );
        let full_words = bit_len / 64;
        let mut reg = 0u64;
        for &word in &words[..full_words] {
            reg = self.advance_word(reg, word);
        }
        let tail_bits = bit_len % 64;
        if tail_bits != 0 {
            let tail = words[full_words] >> (64 - tail_bits);
            reg = self.advance_tail(reg, tail, tail_bits);
        }
        reg & self.spec.mask()
    }

    /// Computes the CRC of the bit range `[start, end)` of `bits` without
    /// materialising the sub-sequence — the allocation-free form of
    /// `compute_bits(&bits.slice(start..end))` used by the batch encoder.
    ///
    /// # Panics
    /// Panics if the range is reversed or out of bounds.
    pub fn checksum_bit_range(&self, bits: &BitVec, start: usize, end: usize) -> u64 {
        assert!(
            start <= end && end <= bits.len(),
            "bit range {start}..{end} out of bounds"
        );
        let words = bits.words();
        let offset = start % 64;
        let mut reg = 0u64;
        let mut pos = start;
        let mut i = start / 64;
        // Hoisted window loop: each 64-bit step is one or two word reads
        // (no per-step accessor call), sharing the fixed shift amount.
        while pos + 64 <= end {
            let mut window = words[i] << offset;
            if offset != 0 {
                window |= words[i + 1] >> (64 - offset);
            }
            reg = self.advance_word(reg, window);
            pos += 64;
            i += 1;
        }
        if pos < end {
            let count = end - pos;
            reg = self.advance_tail(reg, bits.get_bits(pos, count), count);
        }
        reg & self.spec.mask()
    }

    /// Appends `zeros` zero bits to a running CRC register:
    /// `(reg · x^zeros) mod g`. Used to compute parities
    /// (`CRC(message · x^m)`) without materialising a zero-padded copy of the
    /// message.
    pub fn checksum_append_zeros(&self, reg: u64, zeros: usize) -> u64 {
        let mut reg = reg;
        let mut remaining = zeros;
        while remaining >= 63 {
            reg = self.advance_tail(reg, 0, 63);
            remaining -= 63;
        }
        reg = self.advance_tail(reg, 0, remaining);
        reg & self.spec.mask()
    }

    /// Computes the CRC of a whole byte slice (message length = 8 × bytes)
    /// using the 256-entry transition table. Requires `m >= 8`.
    ///
    /// For `m < 8` the byte-table formulation is not well-formed in this
    /// convention; the engine transparently falls back to the bit-serial
    /// path.
    pub fn compute_bytes(&self, bytes: &[u8]) -> u64 {
        if self.spec.width < 8 {
            return self.compute_bits_serial(&BitVec::from_bytes(bytes));
        }
        let mask = self.spec.mask();
        let shift = self.spec.width - 8;
        let mut reg = 0u64;
        for &byte in bytes {
            // new_reg = (reg * x^8 + byte) mod g
            //         = table[high 8 bits of reg] ^ (low bits of reg << 8) ^ byte
            let hi = (reg >> shift) & 0xFF;
            reg = (self.table[hi as usize] ^ ((reg << 8) & mask) ^ byte as u64) & mask;
        }
        reg
    }

    /// Returns `CRC(x^i) = x^i mod g` — the CRC of the one-hot bit sequence
    /// whose only set bit is the coefficient of `x^i`. This is column `i` of
    /// the parity-check matrix `H` (see Table 2 of the paper).
    pub fn crc_of_monomial(&self, i: u64) -> u64 {
        Gf2Poly::x_pow_mod(i, self.spec.full_poly()).0
    }

    /// Checks the linearity property `CRC(A ⊕ B) = CRC(A) ⊕ CRC(B)` on the
    /// given operands (used by tests and by the switch-extern self-test).
    pub fn linearity_holds(&self, a: &BitVec, b: &BitVec) -> Result<bool> {
        let xored = a.xor(b)?;
        Ok(self.compute_bits(&xored) == (self.compute_bits(a) ^ self.compute_bits(b)))
    }
}

/// CRC specification table mirroring Table 1 of the paper: for each Hamming
/// code `(n, k)` the generator polynomial and the parameter to program into a
/// CRC-m unit.
///
/// The two `m = 9` rows of the printed table disagree with the polynomial
/// column under the "drop the x^m term" rule every other row follows; we take
/// the polynomial column as ground truth (see EXPERIMENTS.md).
pub mod table1 {
    use crate::poly::Gf2Poly;

    /// One row of Table 1.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Table1Row {
        /// Hamming parameter `m` (CRC width).
        pub m: u32,
        /// Code length `n = 2^m - 1`.
        pub n: u64,
        /// Message length `k = n - m`.
        pub k: u64,
        /// Exponents of the generator polynomial.
        pub generator_exponents: &'static [u32],
        /// The "parameter for CRC-m" printed in the paper.
        pub paper_crc_parameter: u64,
    }

    impl Table1Row {
        /// Full generator polynomial.
        pub fn generator(&self) -> Gf2Poly {
            Gf2Poly::from_exponents(self.generator_exponents)
        }

        /// CRC parameter derived from the generator (generator minus the
        /// leading `x^m` term).
        pub fn derived_crc_parameter(&self) -> u64 {
            self.generator().0 & !(1u64 << self.m)
        }
    }

    /// All rows of Table 1, in the paper's order.
    pub const ROWS: &[Table1Row] = &[
        Table1Row {
            m: 3,
            n: 7,
            k: 4,
            generator_exponents: &[3, 1, 0],
            paper_crc_parameter: 0x3,
        },
        Table1Row {
            m: 4,
            n: 15,
            k: 11,
            generator_exponents: &[4, 1, 0],
            paper_crc_parameter: 0x3,
        },
        Table1Row {
            m: 5,
            n: 31,
            k: 26,
            generator_exponents: &[5, 2, 0],
            paper_crc_parameter: 0x05,
        },
        Table1Row {
            m: 5,
            n: 31,
            k: 26,
            generator_exponents: &[5, 4, 2, 1, 0],
            paper_crc_parameter: 0x17,
        },
        Table1Row {
            m: 6,
            n: 63,
            k: 57,
            generator_exponents: &[6, 1, 0],
            paper_crc_parameter: 0x03,
        },
        Table1Row {
            m: 7,
            n: 127,
            k: 120,
            generator_exponents: &[7, 3, 0],
            paper_crc_parameter: 0x09,
        },
        Table1Row {
            m: 8,
            n: 255,
            k: 247,
            generator_exponents: &[8, 4, 3, 2, 0],
            paper_crc_parameter: 0x1D,
        },
        Table1Row {
            m: 9,
            n: 511,
            k: 502,
            generator_exponents: &[9, 4, 0],
            paper_crc_parameter: 0x00D,
        },
        Table1Row {
            m: 9,
            n: 511,
            k: 502,
            generator_exponents: &[9, 8, 7, 6, 5, 1, 0],
            paper_crc_parameter: 0x0F3,
        },
        Table1Row {
            m: 10,
            n: 1023,
            k: 1013,
            generator_exponents: &[10, 3, 0],
            paper_crc_parameter: 0x009,
        },
        Table1Row {
            m: 11,
            n: 2047,
            k: 2036,
            generator_exponents: &[11, 2, 0],
            paper_crc_parameter: 0x005,
        },
        Table1Row {
            m: 12,
            n: 4095,
            k: 4083,
            generator_exponents: &[12, 6, 4, 1, 0],
            paper_crc_parameter: 0x053,
        },
        Table1Row {
            m: 13,
            n: 8191,
            k: 8178,
            generator_exponents: &[13, 4, 3, 1, 0],
            paper_crc_parameter: 0x01B,
        },
        Table1Row {
            m: 14,
            n: 16383,
            k: 16369,
            generator_exponents: &[14, 8, 6, 1, 0],
            paper_crc_parameter: 0x143,
        },
        Table1Row {
            m: 15,
            n: 32767,
            k: 32752,
            generator_exponents: &[15, 1, 0],
            paper_crc_parameter: 0x003,
        },
    ];

    /// Returns the first (primary) row for a given `m`, if the paper lists
    /// one.
    pub fn primary_row(m: u32) -> Option<&'static Table1Row> {
        ROWS.iter().find(|r| r.m == m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crc3() -> CrcEngine {
        CrcEngine::from_full_poly(Gf2Poly::from_exponents(&[3, 1, 0])).unwrap()
    }

    #[test]
    fn spec_validation() {
        assert!(CrcSpec::new(0, 0).is_err());
        assert!(CrcSpec::new(33, 0).is_err());
        assert!(CrcSpec::new(3, 0x8).is_err()); // bit at x^3 must not be in poly_low
        let s = CrcSpec::new(3, 0x3).unwrap();
        assert_eq!(s.full_poly(), Gf2Poly(0b1011));
        assert_eq!(s.mask(), 0b111);
        assert!(CrcSpec::from_full_poly(Gf2Poly::ONE).is_err());
    }

    /// Table 2 (b) of the paper: CRC-3 of every one-hot 7-bit sequence.
    #[test]
    fn table2b_crc3_of_one_hot_sequences() {
        let engine = crc3();
        let expected = [
            (0b0000001u64, 0b001u64),
            (0b0000010, 0b010),
            (0b0000100, 0b100),
            (0b0001000, 0b011),
            (0b0010000, 0b110),
            (0b0100000, 0b111),
            (0b1000000, 0b101),
        ];
        for (seq, crc) in expected {
            let bits = BitVec::from_u64(seq, 7);
            assert_eq!(engine.compute_bits_serial(&bits), crc, "sequence {seq:07b}");
            assert_eq!(engine.compute_bits(&bits), crc, "sequence {seq:07b}");
        }
    }

    #[test]
    fn crc_of_monomial_matches_bit_serial() {
        let engine = crc3();
        for i in 0..7u64 {
            let mut bits = BitVec::zeros(7);
            bits.set(6 - i as usize, true); // coefficient of x^i
            assert_eq!(engine.crc_of_monomial(i), engine.compute_bits_serial(&bits));
        }
    }

    #[test]
    fn empty_and_zero_messages_have_zero_crc() {
        let engine = crc3();
        assert_eq!(engine.compute_bits_serial(&BitVec::new()), 0);
        assert_eq!(engine.compute_bits_serial(&BitVec::zeros(100)), 0);
    }

    #[test]
    fn crc_is_linear() {
        let engine = CrcEngine::from_full_poly(Gf2Poly::from_exponents(&[8, 4, 3, 2, 0])).unwrap();
        let a = BitVec::from_bytes(&[0x12, 0x34, 0x56, 0x78, 0x9A]);
        let b = BitVec::from_bytes(&[0xFF, 0x00, 0xAA, 0x55, 0x77]);
        assert!(engine.linearity_holds(&a, &b).unwrap());
    }

    #[test]
    fn byte_table_matches_bit_serial_for_crc8() {
        let engine = CrcEngine::from_full_poly(Gf2Poly::from_exponents(&[8, 4, 3, 2, 0])).unwrap();
        let data: Vec<u8> = (0..=255u8).collect();
        for len in [0usize, 1, 2, 3, 31, 32, 255, 256] {
            let bytes = &data[..len];
            let serial = engine.compute_bits_serial(&BitVec::from_bytes(bytes));
            let table = engine.compute_bytes(bytes);
            assert_eq!(serial, table, "length {len}");
        }
    }

    #[test]
    fn byte_table_matches_bit_serial_for_crc15() {
        let engine = CrcEngine::from_full_poly(Gf2Poly::from_exponents(&[15, 1, 0])).unwrap();
        let bytes: Vec<u8> = (0..200u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();
        assert_eq!(
            engine.compute_bits_serial(&BitVec::from_bytes(&bytes)),
            engine.compute_bytes(&bytes)
        );
    }

    #[test]
    fn small_width_falls_back_to_bit_serial() {
        let engine = crc3();
        let bytes = [0xAB, 0xCD];
        assert_eq!(
            engine.compute_bytes(&bytes),
            engine.compute_bits_serial(&BitVec::from_bytes(&bytes))
        );
    }

    #[test]
    fn checksum_words_matches_bit_serial_for_all_widths_and_lengths() {
        // Every Hamming width used by Table 1, plus sub-byte and 16/32-bit
        // widths, across lengths straddling the word boundaries.
        for m in [1u32, 3, 4, 5, 6, 7, 8, 9, 12, 15, 16, 24, 32] {
            let g = match m {
                1 => Gf2Poly::from_exponents(&[1, 0]),
                _ => {
                    // x^m + x + 1 is not always primitive but the CRC maths
                    // do not require primitivity.
                    Gf2Poly::from_exponents(&[m, 1, 0])
                }
            };
            let engine = CrcEngine::from_full_poly(g).unwrap();
            let mut state = 0x243F_6A88_85A3_08D3u64 ^ (m as u64);
            for len in [0usize, 1, 7, 63, 64, 65, 127, 128, 200, 255, 511] {
                let mut bits = BitVec::with_capacity(len);
                for _ in 0..len {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    bits.push(state >> 63 == 1);
                }
                assert_eq!(
                    engine.checksum_words(bits.words(), bits.len()),
                    engine.compute_bits_serial(&bits),
                    "m = {m}, len = {len}"
                );
            }
        }
    }

    #[test]
    fn checksum_bit_range_matches_slice_then_checksum() {
        let engine = CrcEngine::from_full_poly(Gf2Poly::from_exponents(&[8, 4, 3, 2, 0])).unwrap();
        let bytes: Vec<u8> = (0..64u8)
            .map(|i| i.wrapping_mul(41).wrapping_add(9))
            .collect();
        let bits = BitVec::from_bytes(&bytes);
        for (start, end) in [(0, 512), (1, 256), (1, 1), (7, 263), (64, 511), (129, 200)] {
            assert_eq!(
                engine.checksum_bit_range(&bits, start, end),
                engine.compute_bits_serial(&bits.slice(start..end)),
                "range {start}..{end}"
            );
        }
    }

    #[test]
    fn checksum_append_zeros_matches_padded_message() {
        let engine = crc3();
        let bits = BitVec::from_bit_str("1011001").unwrap();
        for zeros in [0usize, 1, 3, 8, 62, 63, 64, 127, 200] {
            let mut padded = bits.clone();
            padded.push_bits(0, zeros.min(64));
            for _ in 64..zeros {
                padded.push(false);
            }
            let reg = engine.compute_bits(&bits);
            assert_eq!(
                engine.checksum_append_zeros(reg, zeros),
                engine.compute_bits_serial(&padded),
                "zeros = {zeros}"
            );
        }
    }

    #[test]
    fn crc_of_codeword_multiple_is_zero() {
        // Any multiple of g has CRC zero; build multiples via Gf2Poly.
        let g = Gf2Poly::from_exponents(&[8, 4, 3, 2, 0]);
        let engine = CrcEngine::from_full_poly(g).unwrap();
        for mult in 1u64..200 {
            let product = Gf2Poly(mult).mul(g);
            let width = (product.degree() + 1) as usize;
            let bits = BitVec::from_u64(product.0, width);
            assert_eq!(engine.compute_bits_serial(&bits), 0, "multiplier {mult}");
        }
    }

    #[test]
    fn table1_rows_are_consistent() {
        for row in table1::ROWS {
            assert_eq!(row.n, (1u64 << row.m) - 1, "m = {}", row.m);
            assert_eq!(row.k, row.n - row.m as u64, "m = {}", row.m);
            assert_eq!(row.generator().degree(), row.m, "m = {}", row.m);
            // Every generator in the table is primitive (required for GD).
            assert!(
                row.generator().is_primitive(),
                "m = {} generator not primitive",
                row.m
            );
        }
    }

    #[test]
    fn table1_paper_parameters_match_generators_except_known_m9_typos() {
        for row in table1::ROWS {
            let derived = row.derived_crc_parameter();
            if row.m == 9 {
                // The printed m = 9 parameters (0x00D and 0x0F3) are
                // inconsistent with the polynomial column; we follow the
                // polynomial column (see EXPERIMENTS.md).
                continue;
            }
            assert_eq!(
                derived, row.paper_crc_parameter,
                "m = {}: derived {:#x} vs paper {:#x}",
                row.m, derived, row.paper_crc_parameter
            );
        }
    }

    #[test]
    fn table1_primary_row_lookup() {
        assert_eq!(table1::primary_row(8).unwrap().n, 255);
        assert_eq!(table1::primary_row(3).unwrap().k, 4);
        assert!(table1::primary_row(2).is_none());
        assert!(table1::primary_row(16).is_none());
        // m = 5 has two rows; primary_row returns the first.
        assert_eq!(
            table1::primary_row(5).unwrap().generator_exponents,
            &[5, 2, 0]
        );
    }
}
