//! Hamming codes and their CRC equivalence (Section 2, Tables 1 and 2).
//!
//! A Hamming code with parameter `m` maps `k = 2^m - m - 1` message bits to
//! `n = 2^m - 1` codeword bits by adding `m` parity bits. ZipLine uses the
//! code in *shifted* systematic form `Gs = [P | I_k]`: the parity bits occupy
//! the most-significant `m` bit positions of the codeword and the message the
//! least-significant `k` positions, because that arrangement "matches the
//! output of CRC functions" (the syndrome of a received word equals its CRC
//! under the same generator polynomial — Table 2).
//!
//! Bit/polynomial convention (same as [`crate::bits`]): position 0 of a
//! [`BitVec`] is the first bit, the coefficient of the highest power of `x`.

use crate::bits::BitVec;
use crate::crc::{table1, CrcEngine, CrcSpec};
use crate::error::{GdError, Result};
use crate::poly::Gf2Poly;

/// A binary Hamming code `(n, k) = (2^m - 1, 2^m - m - 1)` defined by a
/// primitive generator polynomial of degree `m`, with syndrome computation
/// mapped onto a CRC-m engine.
#[derive(Debug, Clone)]
pub struct HammingCode {
    m: u32,
    n: usize,
    k: usize,
    generator: Gf2Poly,
    crc: CrcEngine,
    /// `syndrome_to_position[s]` is the codeword bit position (counted from
    /// the *first* bit, i.e. index into a `BitVec` of length `n`) whose
    /// single-bit error produces syndrome `s`. Entry 0 is unused (syndrome 0
    /// means "no error").
    syndrome_to_position: Vec<usize>,
}

impl HammingCode {
    /// Builds the code for parameter `m` using the primary generator
    /// polynomial listed in Table 1 of the paper.
    ///
    /// Supported range: `3 <= m <= 15`.
    pub fn new(m: u32) -> Result<Self> {
        let row = table1::primary_row(m).ok_or(GdError::UnsupportedHammingParameter(m))?;
        Self::with_generator(m, row.generator())
    }

    /// Builds the code for parameter `m` with an explicit generator
    /// polynomial. The polynomial must have degree `m` and be primitive.
    pub fn with_generator(m: u32, generator: Gf2Poly) -> Result<Self> {
        if !(3..=15).contains(&m) {
            return Err(GdError::UnsupportedHammingParameter(m));
        }
        if generator.degree() != m {
            return Err(GdError::InvalidGeneratorPolynomial(format!(
                "generator {generator} has degree {} but m = {m}",
                generator.degree()
            )));
        }
        if !generator.is_primitive() {
            return Err(GdError::InvalidGeneratorPolynomial(format!(
                "generator {generator} is not primitive; syndromes would not identify \
                 single-bit errors uniquely"
            )));
        }
        let n = (1usize << m) - 1;
        let k = n - m as usize;
        let crc = CrcEngine::new(CrcSpec::from_full_poly(generator)?);

        // Build the syndrome -> error-position lookup table. An error in the
        // coefficient of x^i produces syndrome x^i mod g; the corresponding
        // BitVec position is n - 1 - i (position 0 = highest power).
        let mut syndrome_to_position = vec![usize::MAX; n + 1];
        for i in 0..n as u64 {
            let s = crc.crc_of_monomial(i) as usize;
            debug_assert_ne!(s, 0, "primitive generator cannot give zero syndrome");
            debug_assert_eq!(
                syndrome_to_position[s],
                usize::MAX,
                "syndrome collision — generator not primitive?"
            );
            syndrome_to_position[s] = n - 1 - i as usize;
        }

        Ok(Self {
            m,
            n,
            k,
            generator,
            crc,
            syndrome_to_position,
        })
    }

    /// Hamming parameter `m` (number of parity bits / syndrome width).
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Codeword length `n = 2^m - 1` in bits.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Message length `k = n - m` in bits.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The generator polynomial.
    pub fn generator(&self) -> Gf2Poly {
        self.generator
    }

    /// The CRC engine equivalent to this code's syndrome computation.
    pub fn crc(&self) -> &CrcEngine {
        &self.crc
    }

    /// Computes the syndrome of an `n`-bit word: `s = B · Hᵀ = CRC(B)`.
    pub fn syndrome(&self, word: &BitVec) -> Result<u64> {
        if word.len() != self.n {
            return Err(GdError::LengthMismatch {
                expected: self.n,
                actual: word.len(),
            });
        }
        Ok(self.crc.compute_bits(word))
    }

    /// Maps a syndrome to the position (index into the `n`-bit word, position
    /// 0 = first bit) of the single-bit error that produces it.
    ///
    /// Returns `None` for syndrome 0 (no error) and an error for syndromes
    /// outside `0..2^m` (impossible for a well-formed CRC result).
    pub fn error_position(&self, syndrome: u64) -> Result<Option<usize>> {
        if syndrome == 0 {
            return Ok(None);
        }
        let idx = usize::try_from(syndrome)
            .ok()
            .filter(|&s| s <= self.n)
            .ok_or_else(|| GdError::Malformed(format!("syndrome {syndrome} out of range")))?;
        let pos = self.syndrome_to_position[idx];
        debug_assert_ne!(pos, usize::MAX);
        Ok(Some(pos))
    }

    /// Returns the `n`-bit error mask (single set bit, or all zeros for
    /// syndrome 0) associated with a syndrome — the value ZipLine stores in
    /// its "syndrome look-up table" and XORs onto the data (step ➌/➍ of
    /// Figure 1).
    pub fn error_mask(&self, syndrome: u64) -> Result<BitVec> {
        let mut mask = BitVec::zeros(self.n);
        if let Some(pos) = self.error_position(syndrome)? {
            mask.set(pos, true);
        }
        Ok(mask)
    }

    /// Applies the single-bit error designated by `syndrome` to a `k`-bit
    /// basis that was (or is about to be) truncated out of a codeword:
    /// positions `>= m` flip inside the basis, positions `< m` land in the
    /// truncated parity region and vanish with it.
    ///
    /// This is the one place the "fold the flip into the truncation" rule
    /// lives; the codec, the transform and the switch encoder all call it.
    pub fn fold_error_into_basis(&self, basis: &mut BitVec, syndrome: u64) -> Result<()> {
        self.fold_position_into_basis(basis, self.error_position(syndrome)?);
        Ok(())
    }

    /// The position form of [`Self::fold_error_into_basis`], for callers that
    /// already resolved the syndrome through their own lookup table (the
    /// switch encoder's constant-entries table): flips `position - m` in the
    /// basis when the error survives the parity truncation.
    pub fn fold_position_into_basis(&self, basis: &mut BitVec, position: Option<usize>) {
        if let Some(position) = position {
            let m = self.m as usize;
            if position >= m {
                basis.flip(position - m);
            }
        }
    }

    /// Encodes a `k`-bit message into an `n`-bit codeword
    /// `c = [parity (m bits) | message (k bits)]` with
    /// `parity = (message(x) · x^m) mod g`.
    ///
    /// The resulting codeword always has syndrome 0.
    pub fn encode(&self, message: &BitVec) -> Result<BitVec> {
        if message.len() != self.k {
            return Err(GdError::LengthMismatch {
                expected: self.k,
                actual: message.len(),
            });
        }
        let parity = self.parity_of_message(message);
        let mut codeword = BitVec::with_capacity(self.n);
        codeword.push_bits(parity, self.m as usize);
        codeword.extend_from_bitvec(message);
        Ok(codeword)
    }

    /// Computes the parity bits for a message: the CRC of the message
    /// zero-padded with `m` trailing bits, i.e. `(message(x) · x^m) mod g`.
    ///
    /// This is exactly what the ZipLine decoder does on the switch (step ➍ of
    /// Figure 2): it feeds the zero-padded basis to the same CRC unit as the
    /// encoder to regenerate the parity bits that the encoder truncated away.
    ///
    /// Word-parallel: the message is consumed through the packed-word CRC and
    /// the zero padding is applied algebraically (`reg · x^m mod g`), so no
    /// padded copy of the message is ever built.
    pub fn parity_of_message(&self, message: &BitVec) -> u64 {
        let reg = self.crc.checksum_words(message.words(), message.len());
        self.crc.checksum_append_zeros(reg, self.m as usize)
    }

    /// Decodes a received `n`-bit word: computes the syndrome, flips the
    /// indicated bit (if any) and returns `(corrected codeword, error
    /// position)`.
    pub fn decode(&self, received: &BitVec) -> Result<(BitVec, Option<usize>)> {
        let s = self.syndrome(received)?;
        let pos = self.error_position(s)?;
        let mut corrected = received.clone();
        if let Some(p) = pos {
            corrected.flip(p);
        }
        Ok((corrected, pos))
    }

    /// Extracts the `k` message bits (the rightmost `k` bits) of a codeword.
    pub fn extract_message(&self, codeword: &BitVec) -> Result<BitVec> {
        if codeword.len() != self.n {
            return Err(GdError::LengthMismatch {
                expected: self.n,
                actual: codeword.len(),
            });
        }
        Ok(codeword.slice(self.m as usize..self.n))
    }

    /// Returns the parity-check matrix `H` as `m` rows of `n` bits.
    ///
    /// Column `j` of `H` (for codeword bit position `j`, i.e. the coefficient
    /// of `x^{n-1-j}`) is `x^{n-1-j} mod g` written as an `m`-bit column.
    /// Only used by tests and documentation; the data path always goes
    /// through the CRC engine.
    pub fn parity_check_matrix(&self) -> Vec<BitVec> {
        let mut rows = vec![BitVec::zeros(self.n); self.m as usize];
        for j in 0..self.n {
            let col = self.crc.crc_of_monomial((self.n - 1 - j) as u64);
            for (r, row) in rows.iter_mut().enumerate() {
                // Row r corresponds to syndrome bit m-1-r (first row = MSB).
                let bit = (col >> (self.m as usize - 1 - r)) & 1 == 1;
                if bit {
                    row.set(j, true);
                }
            }
        }
        rows
    }

    /// Returns the shifted systematic generator matrix `Gs = [P | I_k]` as
    /// `k` rows of `n` bits. Row `i` is the codeword of the message with a
    /// single one in message position `i`.
    pub fn generator_matrix(&self) -> Vec<BitVec> {
        let mut rows = Vec::with_capacity(self.k);
        for i in 0..self.k {
            let mut msg = BitVec::zeros(self.k);
            msg.set(i, true);
            rows.push(self.encode(&msg).expect("message has length k"));
        }
        rows
    }
}

/// Convenience: all Hamming parameters supported by this crate (Table 1).
pub fn supported_parameters() -> impl Iterator<Item = u32> {
    3..=15u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_match_table1() {
        let expected = [
            (3u32, 7usize, 4usize),
            (4, 15, 11),
            (5, 31, 26),
            (6, 63, 57),
            (7, 127, 120),
            (8, 255, 247),
            (9, 511, 502),
            (10, 1023, 1013),
            (11, 2047, 2036),
            (12, 4095, 4083),
            (13, 8191, 8178),
            (14, 16383, 16369),
            (15, 32767, 32752),
        ];
        for (m, n, k) in expected {
            let code = HammingCode::new(m).unwrap();
            assert_eq!(code.n(), n, "m = {m}");
            assert_eq!(code.k(), k, "m = {m}");
            assert_eq!(code.m(), m);
        }
    }

    #[test]
    fn unsupported_parameters_are_rejected() {
        assert!(matches!(
            HammingCode::new(2),
            Err(GdError::UnsupportedHammingParameter(2))
        ));
        assert!(matches!(
            HammingCode::new(16),
            Err(GdError::UnsupportedHammingParameter(16))
        ));
    }

    #[test]
    fn non_primitive_generator_is_rejected() {
        // x^4 + x^3 + x^2 + x + 1 is irreducible but not primitive.
        let g = Gf2Poly::from_exponents(&[4, 3, 2, 1, 0]);
        assert!(matches!(
            HammingCode::with_generator(4, g),
            Err(GdError::InvalidGeneratorPolynomial(_))
        ));
        // Wrong degree.
        let g = Gf2Poly::from_exponents(&[3, 1, 0]);
        assert!(HammingCode::with_generator(4, g).is_err());
    }

    /// Table 2 (a) of the paper: syndromes of every single-bit error pattern
    /// of the (7, 4) code.
    #[test]
    fn table2a_hamming_7_4_syndromes() {
        let code = HammingCode::new(3).unwrap();
        // (error index i = coefficient x^i, bit sequence, syndrome)
        let expected = [
            (0u64, 0b0000001u64, 0b001u64),
            (1, 0b0000010, 0b010),
            (2, 0b0000100, 0b100),
            (3, 0b0001000, 0b011),
            (4, 0b0010000, 0b110),
            (5, 0b0100000, 0b111),
            (6, 0b1000000, 0b101),
        ];
        for (i, seq, syndrome) in expected {
            let word = BitVec::from_u64(seq, 7);
            assert_eq!(code.syndrome(&word).unwrap(), syndrome, "error at x^{i}");
            // And the reverse mapping points back at the same bit.
            let pos = code.error_position(syndrome).unwrap().unwrap();
            assert_eq!(pos, 6 - i as usize, "syndrome {syndrome:03b}");
        }
    }

    #[test]
    fn syndrome_zero_means_no_error() {
        let code = HammingCode::new(3).unwrap();
        assert_eq!(code.error_position(0).unwrap(), None);
        let mask = code.error_mask(0).unwrap();
        assert!(mask.is_zero());
        assert_eq!(mask.len(), 7);
    }

    #[test]
    fn error_mask_has_exactly_one_bit_for_nonzero_syndrome() {
        for m in [3u32, 4, 5, 8] {
            let code = HammingCode::new(m).unwrap();
            for s in 1..=(code.n() as u64) {
                let mask = code.error_mask(s).unwrap();
                assert_eq!(mask.count_ones(), 1, "m = {m}, syndrome = {s}");
                assert_eq!(
                    code.syndrome(&mask).unwrap(),
                    s,
                    "mask must reproduce syndrome"
                );
            }
        }
    }

    #[test]
    fn out_of_range_syndrome_is_rejected() {
        let code = HammingCode::new(3).unwrap();
        assert!(code.error_position(8).is_err());
        assert!(code.error_position(u64::MAX).is_err());
    }

    #[test]
    fn encode_produces_zero_syndrome_codewords() {
        for m in [3u32, 4, 5, 6, 8] {
            let code = HammingCode::new(m).unwrap();
            // Try a handful of structured messages.
            for seed in 0..16u64 {
                let mut msg = BitVec::zeros(code.k());
                for i in 0..code.k() {
                    if (seed.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(i as u32)) & 1 == 1 {
                        msg.set(i, true);
                    }
                }
                let cw = code.encode(&msg).unwrap();
                assert_eq!(cw.len(), code.n());
                assert_eq!(code.syndrome(&cw).unwrap(), 0, "m = {m}, seed = {seed}");
                assert_eq!(code.extract_message(&cw).unwrap(), msg);
            }
        }
    }

    #[test]
    fn decode_corrects_every_single_bit_error() {
        let code = HammingCode::new(4).unwrap();
        let msg = BitVec::from_bit_str("10110100101").unwrap();
        assert_eq!(msg.len(), code.k());
        let cw = code.encode(&msg).unwrap();
        for flip in 0..code.n() {
            let mut corrupted = cw.clone();
            corrupted.flip(flip);
            let (corrected, pos) = code.decode(&corrupted).unwrap();
            assert_eq!(corrected, cw, "flip at {flip}");
            assert_eq!(pos, Some(flip));
        }
        // No error case.
        let (corrected, pos) = code.decode(&cw).unwrap();
        assert_eq!(corrected, cw);
        assert_eq!(pos, None);
    }

    #[test]
    fn length_mismatches_are_rejected() {
        let code = HammingCode::new(3).unwrap();
        assert!(code.syndrome(&BitVec::zeros(8)).is_err());
        assert!(code.encode(&BitVec::zeros(5)).is_err());
        assert!(code.extract_message(&BitVec::zeros(6)).is_err());
        assert!(code.decode(&BitVec::zeros(6)).is_err());
    }

    #[test]
    fn parity_check_matrix_columns_are_distinct_and_nonzero() {
        let code = HammingCode::new(3).unwrap();
        let h = code.parity_check_matrix();
        assert_eq!(h.len(), 3);
        let mut columns = Vec::new();
        for j in 0..code.n() {
            let mut col = 0u64;
            for row in &h {
                col = (col << 1) | (row.get(j) as u64);
            }
            assert_ne!(col, 0, "column {j} must be non-zero");
            columns.push(col);
        }
        columns.sort_unstable();
        columns.dedup();
        assert_eq!(
            columns.len(),
            code.n(),
            "columns must be distinct (Hamming property)"
        );
    }

    #[test]
    fn generator_and_parity_check_are_orthogonal() {
        // Gs · Hᵀ = 0: every generator row has syndrome zero.
        for m in [3u32, 4, 5] {
            let code = HammingCode::new(m).unwrap();
            for (i, row) in code.generator_matrix().iter().enumerate() {
                assert_eq!(code.syndrome(row).unwrap(), 0, "m = {m}, row {i}");
            }
        }
    }

    #[test]
    fn generator_matrix_is_shifted_systematic() {
        // Gs = [P | I_k]: the rightmost k bits of row i form the i-th unit
        // vector.
        let code = HammingCode::new(3).unwrap();
        let g = code.generator_matrix();
        assert_eq!(g.len(), code.k());
        for (i, row) in g.iter().enumerate() {
            let msg_part = code.extract_message(row).unwrap();
            assert_eq!(msg_part.count_ones(), 1);
            assert!(msg_part.get(i));
        }
    }

    #[test]
    fn syndrome_equals_crc_for_random_words() {
        // The central equivalence the paper exploits: the Hamming syndrome of
        // a word equals its CRC under the same generator.
        let code = HammingCode::new(8).unwrap();
        let crc = code.crc();
        for seed in 0..32u64 {
            let mut word = BitVec::zeros(code.n());
            let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(1);
            for i in 0..code.n() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (state >> 62) & 1 == 1 {
                    word.set(i, true);
                }
            }
            assert_eq!(code.syndrome(&word).unwrap(), crc.compute_bits(&word));
        }
    }

    #[test]
    fn alternate_generators_from_table1_work() {
        // m = 5 has two listed generators; both must give working codes.
        let alt = Gf2Poly::from_exponents(&[5, 4, 2, 1, 0]);
        let code = HammingCode::with_generator(5, alt).unwrap();
        let msg = BitVec::ones(code.k());
        let cw = code.encode(&msg).unwrap();
        assert_eq!(code.syndrome(&cw).unwrap(), 0);
        let mut corrupted = cw.clone();
        corrupted.flip(17);
        let (fixed, pos) = code.decode(&corrupted).unwrap();
        assert_eq!(fixed, cw);
        assert_eq!(pos, Some(17));
    }

    #[test]
    fn supported_parameters_iterates_3_to_15() {
        let params: Vec<u32> = supported_parameters().collect();
        assert_eq!(params.first(), Some(&3));
        assert_eq!(params.last(), Some(&15));
        assert_eq!(params.len(), 13);
    }
}
