//! Polynomials over GF(2) with degree below 64.
//!
//! Generator polynomials for the Hamming codes of Table 1 have degree at most
//! 15, so a single `u64` of coefficient bits is plenty. Bit `i` of the
//! representation is the coefficient of `x^i`.
//!
//! These polynomials are used to describe CRC generators, to verify
//! primitivity (a Hamming generator must be primitive so that every non-zero
//! syndrome maps to exactly one single-bit error pattern), and in tests that
//! check the algebra the paper relies on (e.g. `x^n ≡ 1 (mod g)`).

use std::fmt;

/// A polynomial over GF(2), stored as coefficient bits in a `u64`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Gf2Poly(pub u64);

impl Gf2Poly {
    /// The zero polynomial.
    pub const ZERO: Gf2Poly = Gf2Poly(0);
    /// The constant polynomial `1`.
    pub const ONE: Gf2Poly = Gf2Poly(1);
    /// The polynomial `x`.
    pub const X: Gf2Poly = Gf2Poly(2);

    /// Builds a polynomial from a list of exponents with non-zero
    /// coefficients, e.g. `from_exponents(&[8, 4, 3, 2, 0])` for
    /// `x^8 + x^4 + x^3 + x^2 + 1`.
    ///
    /// # Panics
    /// Panics if any exponent is 64 or larger.
    pub fn from_exponents(exponents: &[u32]) -> Self {
        let mut bits = 0u64;
        for &e in exponents {
            assert!(e < 64, "exponent {e} too large");
            bits |= 1 << e;
        }
        Gf2Poly(bits)
    }

    /// True for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }

    /// Degree of the polynomial; the zero polynomial reports degree 0.
    pub fn degree(&self) -> u32 {
        if self.0 == 0 {
            0
        } else {
            63 - self.0.leading_zeros()
        }
    }

    /// Coefficient of `x^i`.
    pub fn coefficient(&self, i: u32) -> bool {
        i < 64 && (self.0 >> i) & 1 == 1
    }

    /// Addition over GF(2) (same as subtraction): XOR of coefficients.
    pub fn add(&self, other: Gf2Poly) -> Gf2Poly {
        Gf2Poly(self.0 ^ other.0)
    }

    /// Carry-less multiplication.
    ///
    /// # Panics
    /// Panics if the product would overflow 64 coefficient bits.
    pub fn mul(&self, other: Gf2Poly) -> Gf2Poly {
        if self.is_zero() || other.is_zero() {
            return Gf2Poly::ZERO;
        }
        assert!(
            self.degree() + other.degree() < 64,
            "product degree would overflow u64 representation"
        );
        let mut acc = 0u64;
        let mut a = self.0;
        let mut shift = 0;
        while a != 0 {
            if a & 1 == 1 {
                acc ^= other.0 << shift;
            }
            a >>= 1;
            shift += 1;
        }
        Gf2Poly(acc)
    }

    /// Polynomial long division: returns `(quotient, remainder)` with
    /// `self = quotient * divisor + remainder` and
    /// `deg(remainder) < deg(divisor)`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn divmod(&self, divisor: Gf2Poly) -> (Gf2Poly, Gf2Poly) {
        assert!(!divisor.is_zero(), "division by the zero polynomial");
        let mut rem = self.0;
        let mut quot = 0u64;
        let ddeg = divisor.degree();
        while rem != 0 && Gf2Poly(rem).degree() >= ddeg {
            let shift = Gf2Poly(rem).degree() - ddeg;
            rem ^= divisor.0 << shift;
            quot |= 1 << shift;
            if Gf2Poly(rem).is_zero() {
                break;
            }
        }
        (Gf2Poly(quot), Gf2Poly(rem))
    }

    /// Remainder of `self` modulo `modulus`.
    pub fn rem(&self, modulus: Gf2Poly) -> Gf2Poly {
        self.divmod(modulus).1
    }

    /// Computes `x^e mod modulus` by square-and-multiply, without ever
    /// materialising `x^e` (so `e` may exceed 63).
    pub fn x_pow_mod(e: u64, modulus: Gf2Poly) -> Gf2Poly {
        assert!(!modulus.is_zero(), "modulus must be non-zero");
        assert!(modulus.degree() >= 1, "modulus must have degree >= 1");
        let mut result = Gf2Poly::ONE;
        let mut base = Gf2Poly::X.rem(modulus);
        let mut exp = e;
        while exp > 0 {
            if exp & 1 == 1 {
                result = result.mul_mod(base, modulus);
            }
            base = base.mul_mod(base, modulus);
            exp >>= 1;
        }
        result
    }

    /// Modular carry-less multiplication; operands are reduced first so the
    /// intermediate product never overflows for moduli of degree <= 31.
    pub fn mul_mod(&self, other: Gf2Poly, modulus: Gf2Poly) -> Gf2Poly {
        let a = self.rem(modulus);
        let b = other.rem(modulus);
        a.mul(b).rem(modulus)
    }

    /// True when the polynomial is irreducible over GF(2).
    ///
    /// Uses trial division by all polynomials of degree up to `deg/2`.
    /// Intended for the small degrees used by Hamming generators.
    pub fn is_irreducible(&self) -> bool {
        let deg = self.degree();
        if deg == 0 {
            return false;
        }
        if deg == 1 {
            return true;
        }
        // A polynomial with a zero constant term is divisible by x.
        if !self.coefficient(0) {
            return false;
        }
        for candidate in 2..(1u64 << (deg / 2 + 1)) {
            let c = Gf2Poly(candidate);
            if c.degree() >= 1 && c.degree() <= deg / 2 && self.rem(c).is_zero() {
                return false;
            }
        }
        true
    }

    /// True when the polynomial is primitive over GF(2), i.e. irreducible and
    /// with `x` generating the full multiplicative group of
    /// `GF(2)[x]/(self)`: the order of `x` is `2^deg - 1`.
    ///
    /// Primitivity is exactly the property the GD decoder relies on: it
    /// guarantees `x^n ≡ 1 (mod g)` with `n = 2^m - 1`, which is what lets the
    /// decoder regenerate the truncated parity bits from the zero-padded
    /// basis (section 4 of the paper).
    pub fn is_primitive(&self) -> bool {
        if !self.is_irreducible() {
            return false;
        }
        let deg = self.degree();
        if deg == 0 {
            return false;
        }
        let order = (1u64 << deg) - 1;
        // x^order must be 1 ...
        if Gf2Poly::x_pow_mod(order, *self) != Gf2Poly::ONE {
            return false;
        }
        // ... and x^(order / p) must not be 1 for any prime divisor p.
        for p in prime_factors(order) {
            if Gf2Poly::x_pow_mod(order / p, *self) == Gf2Poly::ONE {
                return false;
            }
        }
        true
    }
}

/// Returns the distinct prime factors of `n`.
fn prime_factors(mut n: u64) -> Vec<u64> {
    let mut factors = Vec::new();
    let mut d = 2u64;
    while d * d <= n {
        if n.is_multiple_of(d) {
            factors.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

impl fmt::Debug for Gf2Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf2Poly({self})")
    }
}

impl fmt::Display for Gf2Poly {
    /// Writes the polynomial in the paper's notation,
    /// e.g. `x^8 + x^4 + x^3 + x^2 + 1`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for i in (0..=self.degree()).rev() {
            if self.coefficient(i) {
                if !first {
                    write!(f, " + ")?;
                }
                match i {
                    0 => write!(f, "1")?,
                    1 => write!(f, "x")?,
                    _ => write!(f, "x^{i}")?,
                }
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_and_coefficients() {
        let p = Gf2Poly::from_exponents(&[8, 4, 3, 2, 0]);
        assert_eq!(p.degree(), 8);
        assert!(p.coefficient(0));
        assert!(p.coefficient(4));
        assert!(!p.coefficient(1));
        assert!(!p.coefficient(63));
        assert_eq!(Gf2Poly::ZERO.degree(), 0);
        assert_eq!(Gf2Poly::ONE.degree(), 0);
        assert_eq!(Gf2Poly::X.degree(), 1);
    }

    #[test]
    fn display_matches_paper_notation() {
        let p = Gf2Poly::from_exponents(&[8, 4, 3, 2, 0]);
        assert_eq!(p.to_string(), "x^8 + x^4 + x^3 + x^2 + 1");
        assert_eq!(
            Gf2Poly::from_exponents(&[3, 1, 0]).to_string(),
            "x^3 + x + 1"
        );
        assert_eq!(Gf2Poly::ZERO.to_string(), "0");
        assert_eq!(Gf2Poly::ONE.to_string(), "1");
        assert_eq!(Gf2Poly::X.to_string(), "x");
    }

    #[test]
    fn addition_is_xor() {
        let a = Gf2Poly(0b1011);
        let b = Gf2Poly(0b0110);
        assert_eq!(a.add(b), Gf2Poly(0b1101));
        assert_eq!(a.add(a), Gf2Poly::ZERO);
    }

    #[test]
    fn multiplication_small_cases() {
        // (x + 1)(x + 1) = x^2 + 1 over GF(2)
        let x_plus_1 = Gf2Poly(0b11);
        assert_eq!(x_plus_1.mul(x_plus_1), Gf2Poly(0b101));
        // (x^2 + x + 1)(x + 1) = x^3 + 1
        let a = Gf2Poly(0b111);
        assert_eq!(a.mul(x_plus_1), Gf2Poly(0b1001));
        assert_eq!(a.mul(Gf2Poly::ZERO), Gf2Poly::ZERO);
        assert_eq!(a.mul(Gf2Poly::ONE), a);
    }

    #[test]
    fn divmod_reconstructs_dividend() {
        let g = Gf2Poly::from_exponents(&[3, 1, 0]);
        for value in 0u64..512 {
            let p = Gf2Poly(value);
            let (q, r) = p.divmod(g);
            assert!(r.is_zero() || r.degree() < g.degree());
            assert_eq!(q.mul(g).add(r), p, "value {value}");
        }
    }

    #[test]
    fn rem_of_codeword_multiples_is_zero() {
        let g = Gf2Poly::from_exponents(&[3, 1, 0]);
        for mult in 0u64..16 {
            let m = Gf2Poly(mult);
            assert!(m.mul(g).rem(g).is_zero());
        }
    }

    #[test]
    fn x_pow_mod_matches_naive() {
        let g = Gf2Poly::from_exponents(&[4, 1, 0]);
        let mut acc = Gf2Poly::ONE;
        for e in 0..40u64 {
            assert_eq!(Gf2Poly::x_pow_mod(e, g), acc, "exponent {e}");
            acc = acc.mul(Gf2Poly::X).rem(g);
        }
    }

    #[test]
    fn x_pow_n_is_one_for_primitive_hamming_generators() {
        // The property the GD decoder relies on: x^(2^m - 1) = 1 mod g.
        let cases = [
            (3u32, Gf2Poly::from_exponents(&[3, 1, 0])),
            (4, Gf2Poly::from_exponents(&[4, 1, 0])),
            (5, Gf2Poly::from_exponents(&[5, 2, 0])),
            (8, Gf2Poly::from_exponents(&[8, 4, 3, 2, 0])),
        ];
        for (m, g) in cases {
            let n = (1u64 << m) - 1;
            assert_eq!(Gf2Poly::x_pow_mod(n, g), Gf2Poly::ONE, "m = {m}");
            // And not 1 for any smaller exponent (primitivity).
            for e in 1..n {
                assert_ne!(Gf2Poly::x_pow_mod(e, g), Gf2Poly::ONE, "m = {m}, e = {e}");
            }
        }
    }

    #[test]
    fn irreducibility() {
        assert!(Gf2Poly::from_exponents(&[3, 1, 0]).is_irreducible());
        assert!(Gf2Poly::from_exponents(&[8, 4, 3, 2, 0]).is_irreducible());
        // x^2 + 1 = (x+1)^2 is reducible.
        assert!(!Gf2Poly::from_exponents(&[2, 0]).is_irreducible());
        // x^4 + x^3 + x^2 + x + 1 is irreducible but NOT primitive.
        assert!(Gf2Poly::from_exponents(&[4, 3, 2, 1, 0]).is_irreducible());
        // Zero constant term => divisible by x.
        assert!(!Gf2Poly::from_exponents(&[4, 1]).is_irreducible());
        assert!(!Gf2Poly::ZERO.is_irreducible());
        assert!(!Gf2Poly::ONE.is_irreducible());
    }

    #[test]
    fn primitivity() {
        assert!(Gf2Poly::from_exponents(&[3, 1, 0]).is_primitive());
        assert!(Gf2Poly::from_exponents(&[4, 1, 0]).is_primitive());
        assert!(Gf2Poly::from_exponents(&[8, 4, 3, 2, 0]).is_primitive());
        // Irreducible but order of x is 5, not 15.
        assert!(!Gf2Poly::from_exponents(&[4, 3, 2, 1, 0]).is_primitive());
        assert!(!Gf2Poly::from_exponents(&[2, 0]).is_primitive());
    }

    #[test]
    fn prime_factors_works() {
        assert_eq!(prime_factors(1), Vec::<u64>::new());
        assert_eq!(prime_factors(2), vec![2]);
        assert_eq!(prime_factors(12), vec![2, 3]);
        assert_eq!(prime_factors(255), vec![3, 5, 17]);
        assert_eq!(prime_factors(32767), vec![7, 31, 151]);
    }

    #[test]
    #[should_panic(expected = "division by the zero polynomial")]
    fn divide_by_zero_panics() {
        let _ = Gf2Poly(0b101).divmod(Gf2Poly::ZERO);
    }
}
