//! Error type shared by all GD components.

use std::fmt;

/// Errors produced by the Generalized Deduplication core.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GdError {
    /// A buffer or chunk did not have the length required by the operation.
    ///
    /// `expected` and `actual` are in bits unless stated otherwise by the
    /// calling API.
    LengthMismatch { expected: usize, actual: usize },
    /// The requested Hamming parameter `m` is outside the supported range.
    UnsupportedHammingParameter(u32),
    /// A generator polynomial is invalid for the requested code
    /// (wrong degree, not primitive, or produces colliding syndromes).
    InvalidGeneratorPolynomial(String),
    /// Configuration values are inconsistent (e.g. chunk smaller than the
    /// Hamming block length).
    InvalidConfig(String),
    /// An identifier was not present in the dictionary.
    UnknownIdentifier(u64),
    /// A basis was not present in the dictionary.
    UnknownBasis,
    /// The dictionary is full and eviction was disallowed by the caller.
    DictionaryFull,
    /// A serialized packet or stream could not be parsed.
    Malformed(String),
    /// An identifier does not fit in the configured identifier width.
    IdentifierOverflow { id: u64, bits: u32 },
    /// A per-batch codec tag named an id no registry entry covers.
    UnknownCodec(u8),
}

impl fmt::Display for GdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            GdError::UnsupportedHammingParameter(m) => {
                write!(
                    f,
                    "unsupported Hamming parameter m = {m} (supported: 3..=15)"
                )
            }
            GdError::InvalidGeneratorPolynomial(msg) => {
                write!(f, "invalid generator polynomial: {msg}")
            }
            GdError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            GdError::UnknownIdentifier(id) => write!(f, "unknown identifier {id}"),
            GdError::UnknownBasis => write!(f, "unknown basis"),
            GdError::DictionaryFull => write!(f, "dictionary is full"),
            GdError::Malformed(msg) => write!(f, "malformed input: {msg}"),
            GdError::IdentifierOverflow { id, bits } => {
                write!(f, "identifier {id} does not fit in {bits} bits")
            }
            GdError::UnknownCodec(id) => write!(f, "unknown codec id {id}"),
        }
    }
}

impl std::error::Error for GdError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, GdError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GdError::LengthMismatch {
            expected: 255,
            actual: 256,
        };
        assert!(e.to_string().contains("255"));
        assert!(e.to_string().contains("256"));

        let e = GdError::UnsupportedHammingParameter(2);
        assert!(e.to_string().contains("m = 2"));

        let e = GdError::IdentifierOverflow {
            id: 70000,
            bits: 15,
        };
        assert!(e.to_string().contains("70000"));
        assert!(e.to_string().contains("15"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<GdError>();
    }

    #[test]
    fn errors_compare_equal_by_value() {
        assert_eq!(GdError::UnknownBasis, GdError::UnknownBasis);
        assert_ne!(GdError::UnknownIdentifier(1), GdError::UnknownIdentifier(2));
    }
}
