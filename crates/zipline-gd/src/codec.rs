//! Chunk- and stream-level GD codec.
//!
//! The switch data path (crates `zipline-switch` / `zipline`) works one
//! packet at a time; this module provides the same transformation as an
//! ordinary, host-side compression library:
//!
//! * [`ChunkCodec`] — stateless encode/decode of a single fixed-size chunk
//!   into `(carried bits, deviation, basis)` and back;
//! * [`GdCompressor`] / [`GdDecompressor`] — stateful stream compression
//!   where repeated bases are replaced by dictionary identifiers, plus a
//!   bit-packed serialization of the compressed stream. This is what the
//!   examples use to compare GD against gzip on equal terms, and it mirrors
//!   the "static table" accounting of Figure 3.

use crate::bits::{BitReader, BitVec, BitWriter};
use crate::config::GdConfig;
use crate::dictionary::BasisDictionary;
use crate::error::{GdError, Result};
use crate::stats::CompressionStats;
use crate::transform::HammingTransform;

/// A chunk after the GD transformation, before any dictionary lookup.
#[derive(Debug, Default, Clone)]
pub struct EncodedChunk {
    /// Bits of the chunk not covered by the Hamming code, carried verbatim
    /// (the paper's "one additional bit to store the MSB").
    pub extra: BitVec,
    /// The `m`-bit deviation (Hamming syndrome).
    pub deviation: u64,
    /// The `k`-bit basis.
    pub basis: BitVec,
    /// Cached [`BitVec::hash_words`] of `basis`, computed once by the encode
    /// paths so dictionary probes (and engine shard selection) never re-hash
    /// the basis. Purely derived data: equality and hashing ignore it, and
    /// decode-side constructors may leave it at 0.
    pub basis_hash: u64,
}

impl PartialEq for EncodedChunk {
    fn eq(&self, other: &Self) -> bool {
        self.extra == other.extra && self.deviation == other.deviation && self.basis == other.basis
    }
}

impl Eq for EncodedChunk {}

impl std::hash::Hash for EncodedChunk {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.extra.hash(state);
        self.deviation.hash(state);
        self.basis.hash(state);
    }
}

/// Reusable scratch buffers for the allocation-free batch encode path
/// ([`ChunkCodec::encode_chunks`] / [`ChunkCodec::encode_chunk_with`]).
///
/// Holding the scratch outside the codec keeps [`ChunkCodec`] shareable
/// (`&self`) while letting each caller amortise its buffer allocations
/// across an entire batch.
#[derive(Debug, Default, Clone)]
pub struct EncodeScratch {
    /// Packed bits of the chunk currently being encoded.
    bits: BitVec,
}

impl EncodeScratch {
    /// Creates an empty scratch; buffers grow on first use and are then
    /// reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Stateless encoder/decoder for fixed-size chunks.
#[derive(Debug, Clone)]
pub struct ChunkCodec {
    config: GdConfig,
    transform: HammingTransform,
}

impl ChunkCodec {
    /// Builds a codec for the given configuration.
    pub fn new(config: &GdConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config: *config,
            transform: HammingTransform::new(config.m)?,
        })
    }

    /// The configuration this codec was built for.
    pub fn config(&self) -> &GdConfig {
        &self.config
    }

    /// The underlying transform.
    pub fn transform(&self) -> &HammingTransform {
        &self.transform
    }

    /// Encodes one chunk of exactly `config.chunk_bytes` bytes.
    pub fn encode_chunk(&self, chunk: &[u8]) -> Result<EncodedChunk> {
        if chunk.len() != self.config.chunk_bytes {
            return Err(GdError::LengthMismatch {
                expected: self.config.chunk_bytes,
                actual: chunk.len(),
            });
        }
        let bits = BitVec::from_bytes(chunk);
        let extra_bits = self.config.extra_bits();
        let extra = bits.slice(0..extra_bits);
        let body = bits.slice(extra_bits..bits.len());
        let d = self.transform.deconstruct(&body)?;
        let basis_hash = d.basis.hash_words();
        Ok(EncodedChunk {
            extra,
            deviation: d.deviation,
            basis: d.basis,
            basis_hash,
        })
    }

    /// Encodes one chunk through the word-parallel fast path, reusing
    /// `scratch` across calls.
    ///
    /// Bit-exact with [`Self::encode_chunk`] (enforced by the property-test
    /// suite) but performs no intermediate `BitVec` allocations: the chunk
    /// bytes are packed into the reused scratch words, the syndrome is
    /// computed over a bit range of that buffer, and the single-bit deviation
    /// is flipped directly inside the extracted basis. Only the two output
    /// buffers (`extra`, `basis`) are allocated.
    pub fn encode_chunk_with(
        &self,
        chunk: &[u8],
        scratch: &mut EncodeScratch,
    ) -> Result<EncodedChunk> {
        let mut out = EncodedChunk::default();
        self.encode_chunk_into(chunk, scratch, &mut out)?;
        Ok(out)
    }

    /// The fully allocation-free form of [`Self::encode_chunk_with`]: writes
    /// the result into `out`, reusing the storage of its `extra`/`basis`
    /// buffers. In steady state (scratch and output recycled across chunks)
    /// the encode performs no heap allocation at all.
    pub fn encode_chunk_into(
        &self,
        chunk: &[u8],
        scratch: &mut EncodeScratch,
        out: &mut EncodedChunk,
    ) -> Result<()> {
        if chunk.len() != self.config.chunk_bytes {
            return Err(GdError::LengthMismatch {
                expected: self.config.chunk_bytes,
                actual: chunk.len(),
            });
        }
        let code = self.transform.code();
        let extra_bits = self.config.extra_bits();
        let m = code.m() as usize;
        let n = code.n();

        let bits = &mut scratch.bits;
        bits.load_bytes(chunk);
        // ➋ syndrome over the Hamming block, straight off the packed words.
        let deviation = code
            .crc()
            .checksum_bit_range(bits, extra_bits, extra_bits + n);
        // ➎ rightmost k bits, with the ➌/➍ error flip folded in.
        out.basis
            .copy_range_from(bits, extra_bits + m..extra_bits + n);
        code.fold_error_into_basis(&mut out.basis, deviation)?;
        out.extra.copy_range_from(bits, 0..extra_bits);
        out.deviation = deviation;
        out.basis_hash = out.basis.hash_words();
        Ok(())
    }

    /// Encodes every whole chunk of `data` through the fast path, reusing
    /// `scratch` across chunks. Returns the encoded chunks in input order
    /// plus the trailing bytes that did not fill a whole chunk.
    pub fn encode_chunks<'d>(
        &self,
        data: &'d [u8],
        scratch: &mut EncodeScratch,
    ) -> Result<(Vec<EncodedChunk>, &'d [u8])> {
        let mut encoded = Vec::with_capacity(data.len() / self.config.chunk_bytes);
        let tail = self.encode_chunks_into(data, scratch, &mut encoded)?;
        Ok((encoded, tail))
    }

    /// The recycling form of [`Self::encode_chunks`]: truncates `out` to the
    /// batch size and overwrites its entries in place, reusing their
    /// `extra`/`basis` storage. With `scratch` and `out` carried across
    /// batches, steady-state encoding is allocation-free. Returns the
    /// trailing bytes that did not fill a whole chunk.
    pub fn encode_chunks_into<'d>(
        &self,
        data: &'d [u8],
        scratch: &mut EncodeScratch,
        out: &mut Vec<EncodedChunk>,
    ) -> Result<&'d [u8]> {
        let chunk_bytes = self.config.chunk_bytes;
        let mut chunks = data.chunks_exact(chunk_bytes);
        out.truncate(data.len() / chunk_bytes);
        for (i, chunk) in (&mut chunks).enumerate() {
            if let Some(slot) = out.get_mut(i) {
                self.encode_chunk_into(chunk, scratch, slot)?;
            } else {
                out.push(self.encode_chunk_with(chunk, scratch)?);
            }
        }
        Ok(chunks.remainder())
    }

    /// Decodes one chunk back to its original bytes.
    pub fn decode_chunk(&self, encoded: &EncodedChunk) -> Result<Vec<u8>> {
        let mut scratch = DecodeScratch::new();
        let mut out = Vec::with_capacity(self.config.chunk_bytes);
        self.decode_parts_into(
            &encoded.extra,
            encoded.deviation,
            &encoded.basis,
            &mut scratch,
            &mut out,
        )?;
        Ok(out)
    }

    /// The recycling decode primitive, symmetric to
    /// [`Self::encode_chunk_into`]: reconstructs the chunk described by
    /// `(extra, deviation, basis)` and *appends* its bytes to `out`, reusing
    /// `scratch` for the intermediate bit buffers. With `scratch` and `out`
    /// carried across records (as [`GdDecompressor::decompress_batch`] does),
    /// steady-state decoding performs no heap allocation.
    pub fn decode_parts_into(
        &self,
        extra: &BitVec,
        deviation: u64,
        basis: &BitVec,
        scratch: &mut DecodeScratch,
        out: &mut Vec<u8>,
    ) -> Result<()> {
        if extra.len() != self.config.extra_bits() {
            return Err(GdError::LengthMismatch {
                expected: self.config.extra_bits(),
                actual: extra.len(),
            });
        }
        let DecodeScratch { body, assembled } = scratch;
        self.transform.reconstruct_into(basis, deviation, body)?;
        assembled.clear();
        assembled.extend_from_bitvec(extra);
        assembled.extend_from_bitvec(body);
        debug_assert_eq!(assembled.len(), self.config.raw_payload_bits());
        assembled.append_bytes_to(out);
        Ok(())
    }
}

/// Reusable scratch buffers for the allocation-free batch decode path
/// ([`ChunkCodec::decode_parts_into`] /
/// [`GdDecompressor::decompress_batch`]), mirroring [`EncodeScratch`] on the
/// encode side.
#[derive(Debug, Default, Clone)]
pub struct DecodeScratch {
    /// Reconstructed `n`-bit codeword of the record being decoded.
    body: BitVec,
    /// Carried bits + codeword, assembled before byte serialization.
    assembled: BitVec,
}

impl DecodeScratch {
    /// Creates an empty scratch; buffers grow on first use and are then
    /// reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One record of a compressed stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// First occurrence of a basis: carried bits, deviation and the basis
    /// itself (the receiver learns the next free identifier implicitly).
    NewBasis {
        extra: BitVec,
        deviation: u64,
        basis: BitVec,
    },
    /// A chunk whose basis is already known, referenced by identifier.
    Ref {
        extra: BitVec,
        deviation: u64,
        id: u64,
    },
    /// Trailing bytes that did not fill a whole chunk, stored verbatim.
    RawTail { bytes: Vec<u8> },
}

/// A GD-compressed stream: configuration plus records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedStream {
    /// Configuration used to produce the stream.
    pub config: GdConfig,
    /// Records in input order.
    pub records: Vec<Record>,
}

/// Record tags used by the bit-packed serialization.
const TAG_NEW_BASIS: u64 = 0;
const TAG_REF: u64 = 1;
const TAG_RAW_TAIL: u64 = 2;
/// Magic bytes identifying a serialized GD stream ("GD" + format version 1).
const MAGIC: [u8; 3] = [0x47, 0x44, 0x01];

impl CompressedStream {
    /// Size of the stream payload in bits when serialized without container
    /// overhead — the number the Figure 3 experiment accounts (each record's
    /// wire size, excluding the fixed stream header).
    pub fn payload_bits(&self) -> usize {
        let k = self.config.k();
        let m = self.config.m as usize;
        let t = self.config.id_bits as usize;
        let e = self.config.extra_bits();
        self.records
            .iter()
            .map(|r| match r {
                Record::NewBasis { .. } => 2 + m + e + k,
                Record::Ref { .. } => 2 + m + e + t,
                Record::RawTail { bytes } => 2 + 16 + bytes.len() * 8,
            })
            .sum()
    }

    /// Serialized size in bytes, including the stream header.
    pub fn serialized_len(&self) -> usize {
        MAGIC.len() + 8 + (self.payload_bits().div_ceil(8))
    }

    /// Serializes the stream to a self-describing byte buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut header = Vec::with_capacity(self.serialized_len());
        header.extend_from_slice(&MAGIC);
        header.push(self.config.m as u8);
        header.push(self.config.id_bits as u8);
        header.extend_from_slice(&(self.config.chunk_bytes as u16).to_be_bytes());
        header.extend_from_slice(&(self.records.len() as u32).to_be_bytes());

        let mut w = BitWriter::new();
        let m = self.config.m as usize;
        let t = self.config.id_bits as usize;
        for record in &self.records {
            match record {
                Record::NewBasis {
                    extra,
                    deviation,
                    basis,
                } => {
                    w.write_bits(TAG_NEW_BASIS, 2);
                    w.write_bits(*deviation, m);
                    w.write_bitvec(extra);
                    w.write_bitvec(basis);
                }
                Record::Ref {
                    extra,
                    deviation,
                    id,
                } => {
                    w.write_bits(TAG_REF, 2);
                    w.write_bits(*deviation, m);
                    w.write_bitvec(extra);
                    w.write_bits(*id, t);
                }
                Record::RawTail { bytes } => {
                    w.write_bits(TAG_RAW_TAIL, 2);
                    w.write_bits(bytes.len() as u64, 16);
                    w.write_bytes(bytes);
                }
            }
        }
        header.extend_from_slice(&w.into_bytes());
        header
    }

    /// Parses a stream serialized by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        if data.len() < MAGIC.len() + 8 {
            return Err(GdError::Malformed("stream too short for header".into()));
        }
        if data[..3] != MAGIC {
            return Err(GdError::Malformed("bad magic bytes".into()));
        }
        let m = data[3] as u32;
        let id_bits = data[4] as u32;
        let chunk_bytes = u16::from_be_bytes([data[5], data[6]]) as usize;
        let record_count = u32::from_be_bytes([data[7], data[8], data[9], data[10]]) as usize;
        let config = GdConfig {
            m,
            id_bits,
            chunk_bytes,
            tofino_padding_bits: 0,
        };
        config.validate()?;

        let mut reader = BitReader::new(&data[11..]);
        let mut records = Vec::with_capacity(record_count);
        let k = config.k();
        let e = config.extra_bits();
        for _ in 0..record_count {
            let tag = reader.read_bits(2)?;
            let record = match tag {
                TAG_NEW_BASIS => {
                    let deviation = reader.read_bits(m as usize)?;
                    let extra = reader.read_bitvec(e)?;
                    let basis = reader.read_bitvec(k)?;
                    Record::NewBasis {
                        extra,
                        deviation,
                        basis,
                    }
                }
                TAG_REF => {
                    let deviation = reader.read_bits(m as usize)?;
                    let extra = reader.read_bitvec(e)?;
                    let id = reader.read_bits(id_bits as usize)?;
                    Record::Ref {
                        extra,
                        deviation,
                        id,
                    }
                }
                TAG_RAW_TAIL => {
                    let len = reader.read_bits(16)? as usize;
                    let mut bytes = Vec::with_capacity(len);
                    for _ in 0..len {
                        bytes.push(reader.read_bits(8)? as u8);
                    }
                    Record::RawTail { bytes }
                }
                other => return Err(GdError::Malformed(format!("unknown record tag {other}"))),
            };
            records.push(record);
        }
        Ok(Self { config, records })
    }
}

/// Stateful stream compressor: deduplicates bases through a
/// [`BasisDictionary`].
#[derive(Debug, Clone)]
pub struct GdCompressor {
    codec: ChunkCodec,
    dictionary: BasisDictionary,
    stats: CompressionStats,
    clock: u64,
    /// Reused by [`Self::compress_batch`] so steady-state compression does
    /// not allocate per chunk.
    scratch: EncodeScratch,
    /// Recycled single-chunk slot for [`Self::compress_batch`] (the batch
    /// streams through it, so peak memory stays O(1) in the input size).
    encoded_scratch: EncodedChunk,
}

impl GdCompressor {
    /// Builds a compressor with a fresh dictionary sized by the
    /// configuration.
    pub fn new(config: &GdConfig) -> Result<Self> {
        Ok(Self {
            codec: ChunkCodec::new(config)?,
            dictionary: BasisDictionary::new(config.dictionary_capacity()),
            stats: CompressionStats::new(),
            clock: 0,
            scratch: EncodeScratch::new(),
            encoded_scratch: EncodedChunk::default(),
        })
    }

    /// Builds a compressor with a pre-populated dictionary (the "static
    /// table" scenario of Figure 3).
    pub fn with_dictionary(config: &GdConfig, dictionary: BasisDictionary) -> Result<Self> {
        Ok(Self {
            codec: ChunkCodec::new(config)?,
            dictionary,
            stats: CompressionStats::new(),
            clock: 0,
            scratch: EncodeScratch::new(),
            encoded_scratch: EncodedChunk::default(),
        })
    }

    /// The chunk codec.
    pub fn codec(&self) -> &ChunkCodec {
        &self.codec
    }

    /// Current compression statistics.
    pub fn stats(&self) -> &CompressionStats {
        &self.stats
    }

    /// Access to the dictionary (e.g. to inspect learned bases).
    pub fn dictionary(&self) -> &BasisDictionary {
        &self.dictionary
    }

    /// Runs the dictionary lookup/learn step on one encoded chunk and
    /// produces its stream record (shared by the per-chunk and batch paths).
    fn record_for(&mut self, mut encoded: EncodedChunk) -> Result<Record> {
        self.record_for_mut(&mut encoded)
    }

    /// [`Self::record_for`] over a borrowed chunk: moves only the buffers
    /// the record actually needs out of `encoded` (for the common `Ref` case
    /// the basis storage stays behind and is recycled by the next batch).
    fn record_for_mut(&mut self, encoded: &mut EncodedChunk) -> Result<Record> {
        self.clock += 1;
        self.stats.chunks_in += 1;
        self.stats.bytes_in += self.codec.config().chunk_bytes as u64;
        let m = self.codec.config().m as usize;
        let e = self.codec.config().extra_bits();
        debug_assert_eq!(
            encoded.basis_hash,
            encoded.basis.hash_words(),
            "encode paths keep the cached basis hash fresh"
        );
        match self.dictionary.lookup_basis_hashed(
            &encoded.basis,
            encoded.basis_hash,
            self.clock,
            true,
        ) {
            Some(id) => {
                self.stats.emitted_compressed += 1;
                self.stats.bytes_out +=
                    ((m + e + self.codec.config().id_bits as usize) as u64).div_ceil(8);
                Ok(Record::Ref {
                    extra: std::mem::take(&mut encoded.extra),
                    deviation: encoded.deviation,
                    id,
                })
            }
            None => {
                let outcome = self.dictionary.insert_hashed(
                    encoded.basis.clone(),
                    encoded.basis_hash,
                    self.clock,
                )?;
                if outcome.evicted.is_some() {
                    self.stats.evictions += 1;
                }
                self.stats.bases_learned += 1;
                self.stats.emitted_uncompressed += 1;
                self.stats.bytes_out += ((m + e + self.codec.config().k()) as u64).div_ceil(8);
                Ok(Record::NewBasis {
                    extra: std::mem::take(&mut encoded.extra),
                    deviation: encoded.deviation,
                    basis: std::mem::take(&mut encoded.basis),
                })
            }
        }
    }

    /// Accounts and stores the trailing partial chunk of a buffer.
    fn raw_tail_record(&mut self, tail: &[u8]) -> Record {
        self.stats.bytes_in += tail.len() as u64;
        self.stats.bytes_out += tail.len() as u64;
        self.stats.emitted_raw += 1;
        self.stats.chunks_in += 1;
        Record::RawTail {
            bytes: tail.to_vec(),
        }
    }

    /// Compresses one chunk, updating the dictionary.
    ///
    /// Reference path used by tests and single-chunk callers; bulk callers
    /// should prefer [`Self::compress_batch`], which is equivalent but
    /// reuses scratch buffers across chunks.
    pub fn compress_chunk(&mut self, chunk: &[u8]) -> Result<Record> {
        let encoded = self.codec.encode_chunk(chunk)?;
        self.record_for(encoded)
    }

    /// Compresses a whole buffer. The buffer is split into
    /// `config.chunk_bytes`-sized chunks; a trailing partial chunk is stored
    /// verbatim as a [`Record::RawTail`].
    ///
    /// Delegates to [`Self::compress_batch`].
    pub fn compress(&mut self, data: &[u8]) -> Result<CompressedStream> {
        self.compress_batch(data)
    }

    /// Compresses a whole buffer through the word-parallel batch fast path:
    /// each chunk streams through [`ChunkCodec::encode_chunk_into`] against
    /// the compressor's reused scratch and single recycled output slot, then
    /// runs the same dictionary logic as [`Self::compress_chunk`] — so peak
    /// extra memory stays O(1) in the input size while steady-state encoding
    /// remains allocation-free. Record-for-record and
    /// statistics-for-statistics equivalent to the per-chunk loop (enforced
    /// by the property-test suite).
    pub fn compress_batch(&mut self, data: &[u8]) -> Result<CompressedStream> {
        let chunk_bytes = self.codec.config().chunk_bytes;
        let mut records = Vec::with_capacity(data.len() / chunk_bytes + 1);
        let mut slot = std::mem::take(&mut self.encoded_scratch);
        let mut chunks = data.chunks_exact(chunk_bytes);
        for chunk in &mut chunks {
            {
                // Split borrow: the codec is read-only while the scratch
                // mutates.
                let Self { codec, scratch, .. } = self;
                codec.encode_chunk_into(chunk, scratch, &mut slot)?;
            }
            records.push(self.record_for_mut(&mut slot)?);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            records.push(self.raw_tail_record(tail));
        }
        self.encoded_scratch = slot;
        Ok(CompressedStream {
            config: *self.codec.config(),
            records,
        })
    }
}

/// Stream decompressor: rebuilds the dictionary from `NewBasis` records in
/// stream order, so it stays synchronized with the compressor without any
/// out-of-band communication.
#[derive(Debug, Clone)]
pub struct GdDecompressor {
    codec: ChunkCodec,
    dictionary: BasisDictionary,
    stats: CompressionStats,
    clock: u64,
    /// Reused by [`Self::decompress_batch`] so steady-state decompression
    /// does not allocate per record (mirrors the compressor's
    /// [`EncodeScratch`]).
    scratch: DecodeScratch,
}

impl GdDecompressor {
    /// Builds a decompressor for the given configuration with an empty
    /// dictionary.
    pub fn new(config: &GdConfig) -> Result<Self> {
        Ok(Self {
            codec: ChunkCodec::new(config)?,
            dictionary: BasisDictionary::new(config.dictionary_capacity()),
            stats: CompressionStats::new(),
            clock: 0,
            scratch: DecodeScratch::new(),
        })
    }

    /// Builds a decompressor with a pre-populated dictionary (static table).
    pub fn with_dictionary(config: &GdConfig, dictionary: BasisDictionary) -> Result<Self> {
        Ok(Self {
            codec: ChunkCodec::new(config)?,
            dictionary,
            stats: CompressionStats::new(),
            clock: 0,
            scratch: DecodeScratch::new(),
        })
    }

    /// Current statistics.
    pub fn stats(&self) -> &CompressionStats {
        &self.stats
    }

    /// Decompresses one record into original bytes.
    pub fn decompress_record(&mut self, record: &Record) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.decompress_record_into(record, &mut out)?;
        Ok(out)
    }

    /// The recycling form of [`Self::decompress_record`]: *appends* the
    /// restored bytes to `out`, reusing the decompressor's scratch buffers.
    /// This is the per-record primitive behind [`Self::decompress_batch`].
    pub fn decompress_record_into(&mut self, record: &Record, out: &mut Vec<u8>) -> Result<()> {
        self.clock += 1;
        match record {
            Record::NewBasis {
                extra,
                deviation,
                basis,
            } => {
                // Mirror the compressor's dictionary update so that later Ref
                // records resolve to the same identifiers.
                self.dictionary.insert(basis.clone(), self.clock)?;
                let Self { codec, scratch, .. } = self;
                codec.decode_parts_into(extra, *deviation, basis, scratch, out)?;
                self.stats.chunks_decoded += 1;
            }
            Record::Ref {
                extra,
                deviation,
                id,
            } => {
                let Self {
                    codec,
                    dictionary,
                    stats,
                    clock,
                    scratch,
                } = self;
                let Some(basis) = dictionary.lookup_id_ref(*id, *clock, true) else {
                    stats.decode_failures += 1;
                    return Err(GdError::UnknownIdentifier(*id));
                };
                codec.decode_parts_into(extra, *deviation, basis, scratch, out)?;
                self.stats.chunks_decoded += 1;
            }
            Record::RawTail { bytes } => {
                out.extend_from_slice(bytes);
                self.stats.chunks_decoded += 1;
            }
        }
        Ok(())
    }

    /// Decompresses a whole stream.
    ///
    /// Delegates to [`Self::decompress_batch`].
    pub fn decompress(&mut self, stream: &CompressedStream) -> Result<Vec<u8>> {
        self.decompress_batch(stream)
    }

    /// Decompresses a whole stream through the recycling batch fast path,
    /// symmetric to [`GdCompressor::compress_batch`]: every record streams
    /// through [`ChunkCodec::decode_parts_into`] against the decompressor's
    /// reused codeword/output scratch, so steady-state decoding is
    /// allocation-free apart from the single output buffer. Byte-for-byte
    /// and statistics-for-statistics equivalent to the per-record loop
    /// (enforced by the property-test suite).
    pub fn decompress_batch(&mut self, stream: &CompressedStream) -> Result<Vec<u8>> {
        if stream.config.m != self.codec.config().m
            || stream.config.chunk_bytes != self.codec.config().chunk_bytes
            || stream.config.id_bits != self.codec.config().id_bits
        {
            return Err(GdError::InvalidConfig(
                "stream was compressed with a different configuration".into(),
            ));
        }
        let mut out = Vec::with_capacity(stream.records.len() * self.codec.config().chunk_bytes);
        for record in &stream.records {
            self.decompress_record_into(record, &mut out)?;
        }
        Ok(out)
    }
}

/// Convenience one-shot API: compress a buffer with a fresh dictionary.
pub fn compress(config: &GdConfig, data: &[u8]) -> Result<CompressedStream> {
    GdCompressor::new(config)?.compress(data)
}

/// Convenience one-shot API: decompress a stream with a fresh dictionary.
pub fn decompress(stream: &CompressedStream) -> Result<Vec<u8>> {
    GdDecompressor::new(&stream.config)?.decompress(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn small_config() -> GdConfig {
        // m = 3: 1-byte chunks (7 code bits + 1 carried bit), 4-bit ids.
        GdConfig::for_parameters(3, 4).unwrap()
    }

    #[test]
    fn chunk_codec_roundtrip_paper_params() {
        let config = GdConfig::paper_default();
        let codec = ChunkCodec::new(&config).unwrap();
        let chunk: Vec<u8> = (0..32u8)
            .map(|i| i.wrapping_mul(17).wrapping_add(3))
            .collect();
        let enc = codec.encode_chunk(&chunk).unwrap();
        assert_eq!(enc.extra.len(), 1);
        assert_eq!(enc.basis.len(), 247);
        assert!(enc.deviation < 256);
        assert_eq!(codec.decode_chunk(&enc).unwrap(), chunk);
    }

    #[test]
    fn scratch_encode_matches_reference_encode() {
        for config in [
            GdConfig::paper_default(),
            small_config(),
            GdConfig::for_parameters(5, 6).unwrap(),
        ] {
            let codec = ChunkCodec::new(&config).unwrap();
            let mut scratch = EncodeScratch::new();
            for seed in 0..64u8 {
                let chunk: Vec<u8> = (0..config.chunk_bytes)
                    .map(|i| (i as u8).wrapping_mul(seed).wrapping_add(seed ^ 0x5A))
                    .collect();
                let reference = codec.encode_chunk(&chunk).unwrap();
                let fast = codec.encode_chunk_with(&chunk, &mut scratch).unwrap();
                assert_eq!(fast, reference, "m = {}, seed = {seed}", config.m);
            }
        }
    }

    #[test]
    fn encode_chunks_splits_batches_and_returns_tail() {
        let config = GdConfig::paper_default();
        let codec = ChunkCodec::new(&config).unwrap();
        let mut scratch = EncodeScratch::new();
        let mut data = Vec::new();
        for i in 0..10u8 {
            data.extend_from_slice(&[i; 32]);
        }
        data.extend_from_slice(&[1, 2, 3]);
        let (encoded, tail) = codec.encode_chunks(&data, &mut scratch).unwrap();
        assert_eq!(encoded.len(), 10);
        assert_eq!(tail, &[1, 2, 3]);
        for (i, enc) in encoded.iter().enumerate() {
            assert_eq!(
                *enc,
                codec.encode_chunk(&data[i * 32..(i + 1) * 32]).unwrap(),
                "chunk {i}"
            );
        }
        // An empty buffer yields no chunks and an empty tail.
        let (encoded, tail) = codec.encode_chunks(&[], &mut scratch).unwrap();
        assert!(encoded.is_empty());
        assert!(tail.is_empty());
    }

    #[test]
    fn encode_chunks_into_recycles_output_entries() {
        let config = GdConfig::paper_default();
        let codec = ChunkCodec::new(&config).unwrap();
        let mut scratch = EncodeScratch::new();
        let mut out = Vec::new();

        let data_a: Vec<u8> = (0..32 * 7).map(|i| (i % 251) as u8).collect();
        codec
            .encode_chunks_into(&data_a, &mut scratch, &mut out)
            .unwrap();
        assert_eq!(out.len(), 7);

        // A smaller follow-up batch truncates and overwrites in place…
        let data_b: Vec<u8> = (0..32 * 3).map(|i| (i % 7) as u8).collect();
        let tail = codec
            .encode_chunks_into(&data_b, &mut scratch, &mut out)
            .unwrap();
        assert!(tail.is_empty());
        assert_eq!(out.len(), 3);
        for (i, enc) in out.iter().enumerate() {
            assert_eq!(
                *enc,
                codec.encode_chunk(&data_b[i * 32..(i + 1) * 32]).unwrap(),
                "chunk {i}"
            );
        }
    }

    #[test]
    fn compress_batch_equals_per_chunk_loop() {
        let config = GdConfig::paper_default();
        let mut data = Vec::new();
        for i in 0..200u32 {
            let mut chunk = [0u8; 32];
            chunk[0] = (i % 9) as u8;
            chunk[5] = (i % 3) as u8;
            data.extend_from_slice(&chunk);
        }
        data.extend_from_slice(b"odd tail");

        let mut batch = GdCompressor::new(&config).unwrap();
        let stream_batch = batch.compress_batch(&data).unwrap();

        let mut reference = GdCompressor::new(&config).unwrap();
        let chunk_bytes = config.chunk_bytes;
        let mut records = Vec::new();
        let mut offset = 0;
        while offset + chunk_bytes <= data.len() {
            records.push(
                reference
                    .compress_chunk(&data[offset..offset + chunk_bytes])
                    .unwrap(),
            );
            offset += chunk_bytes;
        }
        records.push(reference.raw_tail_record(&data[offset..]));

        assert_eq!(stream_batch.records, records);
        assert_eq!(batch.stats(), reference.stats());
        assert_eq!(decompress(&stream_batch).unwrap(), data);
    }

    #[test]
    fn chunk_codec_rejects_wrong_sizes() {
        let codec = ChunkCodec::new(&GdConfig::paper_default()).unwrap();
        assert!(codec.encode_chunk(&[0u8; 31]).is_err());
        assert!(codec.encode_chunk(&[0u8; 33]).is_err());
        let mut enc = codec.encode_chunk(&[0u8; 32]).unwrap();
        enc.extra = BitVec::zeros(2);
        assert!(codec.decode_chunk(&enc).is_err());
    }

    #[test]
    fn identical_chunks_share_a_basis_and_get_referenced() {
        let config = GdConfig::paper_default();
        let mut comp = GdCompressor::new(&config).unwrap();
        let chunk = [0x42u8; 32];
        let first = comp.compress_chunk(&chunk).unwrap();
        let second = comp.compress_chunk(&chunk).unwrap();
        assert!(matches!(first, Record::NewBasis { .. }));
        assert!(matches!(second, Record::Ref { .. }));
        assert_eq!(comp.stats().emitted_uncompressed, 1);
        assert_eq!(comp.stats().emitted_compressed, 1);
        assert!(comp.stats().is_consistent());
    }

    #[test]
    fn similar_chunks_differing_by_one_bit_share_a_basis() {
        // The whole point of GD: all single-bit perturbations of a codeword
        // deduplicate against the codeword's basis (256 chunks per basis for
        // the paper's parameters).
        let config = GdConfig::paper_default();
        let codec = ChunkCodec::new(&config).unwrap();
        // Canonicalize an arbitrary chunk onto its codeword (deviation 0).
        let seed = codec.encode_chunk(&[0x5Au8; 32]).unwrap();
        let codeword_chunk = codec
            .decode_chunk(&EncodedChunk {
                extra: seed.extra.clone(),
                deviation: 0,
                basis: seed.basis.clone(),
                basis_hash: 0,
            })
            .unwrap();
        // A perturbed sibling: same basis, non-zero deviation.
        let perturbed_chunk = codec
            .decode_chunk(&EncodedChunk {
                extra: seed.extra.clone(),
                deviation: 42,
                basis: seed.basis.clone(),
                basis_hash: 0,
            })
            .unwrap();
        assert_ne!(codeword_chunk, perturbed_chunk);

        let mut comp = GdCompressor::new(&config).unwrap();
        let first = comp.compress_chunk(&codeword_chunk).unwrap();
        let second = comp.compress_chunk(&perturbed_chunk).unwrap();
        assert!(matches!(first, Record::NewBasis { .. }));
        assert!(
            matches!(second, Record::Ref { .. }),
            "near-duplicate must be compressed"
        );
    }

    #[test]
    fn compress_decompress_roundtrip_with_tail() {
        let config = GdConfig::paper_default();
        let mut data = Vec::new();
        for i in 0..100u32 {
            let mut chunk = [0u8; 32];
            chunk[0] = (i % 7) as u8;
            chunk[31] = 0xEE;
            data.extend_from_slice(&chunk);
        }
        data.extend_from_slice(b"tail-bytes"); // partial chunk
        let stream = compress(&config, &data).unwrap();
        assert!(matches!(
            stream.records.last(),
            Some(Record::RawTail { .. })
        ));
        let out = decompress(&stream).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn compression_reduces_size_for_redundant_data() {
        let config = GdConfig::paper_default();
        let data = vec![0xABu8; 32 * 1000];
        let mut comp = GdCompressor::new(&config).unwrap();
        let stream = comp.compress(&data).unwrap();
        let ratio = stream.serialized_len() as f64 / data.len() as f64;
        assert!(
            ratio < 0.15,
            "expected strong compression, got ratio {ratio}"
        );
        assert!(comp.stats().compression_ratio().unwrap() < 0.15);
    }

    #[test]
    fn serialization_roundtrip() {
        let config = GdConfig::paper_default();
        let mut data = Vec::new();
        for i in 0..50u8 {
            data.extend_from_slice(&[i % 5; 32]);
        }
        data.extend_from_slice(&[1, 2, 3]);
        let stream = compress(&config, &data).unwrap();
        let bytes = stream.to_bytes();
        assert_eq!(bytes.len(), stream.serialized_len());
        let parsed = CompressedStream::from_bytes(&bytes).unwrap();
        // tofino_padding_bits is not part of the wire format.
        assert_eq!(parsed.records, stream.records);
        assert_eq!(decompress(&parsed).unwrap(), data);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(CompressedStream::from_bytes(&[]).is_err());
        assert!(CompressedStream::from_bytes(&[0u8; 4]).is_err());
        let config = small_config();
        let stream = compress(&config, &[0u8; 8]).unwrap();
        let mut bytes = stream.to_bytes();
        bytes[0] ^= 0xFF; // break magic
        assert!(CompressedStream::from_bytes(&bytes).is_err());
        // Truncated payload.
        let bytes = stream.to_bytes();
        assert!(CompressedStream::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn decompressor_rejects_mismatched_config() {
        let stream = compress(&small_config(), &[0u8; 4]).unwrap();
        let mut other = GdDecompressor::new(&GdConfig::paper_default()).unwrap();
        assert!(other.decompress(&stream).is_err());
    }

    #[test]
    fn unknown_identifier_fails_cleanly() {
        let config = small_config();
        let mut dec = GdDecompressor::new(&config).unwrap();
        let record = Record::Ref {
            extra: BitVec::zeros(1),
            deviation: 0,
            id: 3,
        };
        let err = dec.decompress_record(&record).unwrap_err();
        assert_eq!(err, GdError::UnknownIdentifier(3));
        assert_eq!(dec.stats().decode_failures, 1);
    }

    #[test]
    fn static_dictionary_compresses_first_occurrence_too() {
        let config = GdConfig::paper_default();
        let chunk = [0x11u8; 32];
        // Pre-learn the basis.
        let codec = ChunkCodec::new(&config).unwrap();
        let enc = codec.encode_chunk(&chunk).unwrap();
        let mut dict = BasisDictionary::new(config.dictionary_capacity());
        dict.insert(enc.basis.clone(), 0).unwrap();

        let mut comp = GdCompressor::with_dictionary(&config, dict.clone()).unwrap();
        let record = comp.compress_chunk(&chunk).unwrap();
        assert!(matches!(record, Record::Ref { .. }));

        // And the decompressor with the same static dictionary can decode it.
        let mut dec = GdDecompressor::with_dictionary(&config, dict).unwrap();
        assert_eq!(dec.decompress_record(&record).unwrap(), chunk);
    }

    #[test]
    fn stats_bytes_track_payload_sizes() {
        let config = GdConfig::paper_default();
        let mut comp = GdCompressor::new(&config).unwrap();
        let chunk = [9u8; 32];
        comp.compress_chunk(&chunk).unwrap(); // NewBasis: 8+1+247 bits -> 32 B
        comp.compress_chunk(&chunk).unwrap(); // Ref: 8+1+15 bits -> 3 B
        assert_eq!(comp.stats().bytes_in, 64);
        assert_eq!(comp.stats().bytes_out, 32 + 3);
    }

    #[test]
    fn payload_bits_accounting_matches_record_mix() {
        let config = GdConfig::paper_default();
        let mut data = Vec::new();
        for _ in 0..10 {
            data.extend_from_slice(&[7u8; 32]);
        }
        let stream = compress(&config, &data).unwrap();
        // 1 NewBasis + 9 Refs.
        let expected = (2 + 8 + 1 + 247) + 9 * (2 + 8 + 1 + 15);
        assert_eq!(stream.payload_bits(), expected);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn roundtrip_arbitrary_data_small_config(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let config = small_config();
            let stream = compress(&config, &data).unwrap();
            prop_assert_eq!(decompress(&stream).unwrap(), data);
        }

        #[test]
        fn roundtrip_arbitrary_data_paper_config(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let config = GdConfig::paper_default();
            let stream = compress(&config, &data).unwrap();
            prop_assert_eq!(decompress(&stream).unwrap(), data.clone());
            // Serialization also round-trips.
            let parsed = CompressedStream::from_bytes(&stream.to_bytes()).unwrap();
            prop_assert_eq!(decompress(&parsed).unwrap(), data);
        }

        #[test]
        fn compressed_never_larger_than_one_new_basis_per_chunk(
            chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 32), 1..20)
        ) {
            let config = GdConfig::paper_default();
            let data: Vec<u8> = chunks.concat();
            let stream = compress(&config, &data).unwrap();
            // Upper bound: every chunk is a NewBasis record.
            let worst = chunks.len() * (2 + 8 + 1 + 247);
            prop_assert!(stream.payload_bits() <= worst);
        }
    }
}
