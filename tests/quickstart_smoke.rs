//! Smoke test mirroring `examples/quickstart.rs` at a reduced scale, so the
//! quickstart flow (host-side GD + simulated two-switch deployment) is
//! exercised by `cargo test` on every change; CI additionally runs the real
//! example binary.

use zipline_repro::zipline::deployment::{DeploymentConfig, ZipLineDeployment};
use zipline_repro::zipline_gd::codec::{compress, decompress};
use zipline_repro::zipline_gd::GdConfig;

fn sensor_style_data(chunks: u32) -> Vec<u8> {
    let mut data = Vec::new();
    for i in 0..chunks {
        let mut chunk = [0u8; 32];
        chunk[0] = (i % 5) as u8;
        chunk[31] = 0xEE;
        if i % 7 == 0 {
            chunk[16] ^= 0x01;
        }
        data.extend_from_slice(&chunk);
    }
    data
}

#[test]
fn quickstart_flow_compresses_and_round_trips() {
    let config = GdConfig::paper_default();
    let data = sensor_style_data(200);

    // Host-side GD: lossless and strongly compressing on redundant data.
    let stream = compress(&config, &data).expect("compression succeeds");
    assert_eq!(decompress(&stream).expect("decompression succeeds"), data);
    let ratio = stream.serialized_len() as f64 / data.len() as f64;
    assert!(
        ratio < 0.2,
        "expected strong compression, got ratio {ratio}"
    );

    // The same payloads through the simulated two-switch deployment.
    let mut deployment =
        ZipLineDeployment::new(DeploymentConfig::fast_test()).expect("valid deployment");
    let payloads: Vec<Vec<u8>> = data.chunks(32).map(|c| c.to_vec()).collect();
    let received = deployment.run_payloads(&payloads).expect("simulation runs");
    assert_eq!(received, payloads, "in-network round trip is lossless");
}
