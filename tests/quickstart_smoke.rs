//! Smoke tests mirroring `examples/quickstart.rs`,
//! `examples/engine_stream.rs` and `examples/engine_backends.rs` at a
//! reduced scale, so the quickstart flows (host-side GD, the sharded engine
//! stream, the backend matrix, and the simulated two-switch deployment) are
//! exercised by `cargo test` on every change; CI additionally runs the real
//! example binaries.

use zipline_repro::zipline::deployment::{DeploymentConfig, ZipLineDeployment};
use zipline_repro::zipline_engine::{
    DeflateBackend, EngineBuilder, EngineStream, PassthroughBackend, SpawnPolicy,
};
use zipline_repro::zipline_gd::codec::{compress, decompress};
use zipline_repro::zipline_gd::GdConfig;

fn sensor_style_data(chunks: u32) -> Vec<u8> {
    let mut data = Vec::new();
    for i in 0..chunks {
        let mut chunk = [0u8; 32];
        chunk[0] = (i % 5) as u8;
        chunk[31] = 0xEE;
        if i % 7 == 0 {
            chunk[16] ^= 0x01;
        }
        data.extend_from_slice(&chunk);
    }
    data
}

#[test]
fn quickstart_flow_compresses_and_round_trips() {
    let config = GdConfig::paper_default();
    let data = sensor_style_data(200);

    // Host-side GD: lossless and strongly compressing on redundant data.
    let stream = compress(&config, &data).expect("compression succeeds");
    assert_eq!(decompress(&stream).expect("decompression succeeds"), data);
    let ratio = stream.serialized_len() as f64 / data.len() as f64;
    assert!(
        ratio < 0.2,
        "expected strong compression, got ratio {ratio}"
    );

    // The same payloads through the simulated two-switch deployment.
    let mut deployment =
        ZipLineDeployment::new(DeploymentConfig::fast_test()).expect("valid deployment");
    let payloads: Vec<Vec<u8>> = data.chunks(32).map(|c| c.to_vec()).collect();
    let received = deployment.run_payloads(&payloads).expect("simulation runs");
    assert_eq!(received, payloads, "in-network round trip is lossless");
}

#[test]
fn engine_stream_flow_compresses_and_round_trips() {
    // The engine_stream example flow at reduced scale: records stream
    // through the sharded engine into wire payloads, and the mirrored
    // decompressor restores them byte-exactly.
    let builder = EngineBuilder::new()
        .shards(8)
        .workers(4)
        .spawn(SpawnPolicy::Threads); // exercise the threaded path in CI
    let mut decoder = builder.build_decompressor().expect("valid decoder config");
    let mut engine = builder.build().expect("valid engine config");
    let data = sensor_style_data(300);

    let mut wire = Vec::new();
    let mut stream = EngineStream::new(&mut engine, 64, |packet_type, bytes| {
        wire.push((packet_type, bytes.to_vec()));
    });
    for chunk in data.chunks(32) {
        stream.push_record(chunk).expect("record streams");
    }
    let summary = stream.finish().expect("stream flushes");
    assert_eq!(summary.bytes_in, data.len() as u64);
    assert!(
        summary.wire_bytes < data.len() as u64 / 2,
        "engine stream compresses the redundant workload"
    );

    let mut restored = Vec::new();
    for (packet_type, bytes) in &wire {
        decoder
            .restore_payload_into(*packet_type, bytes, &mut restored)
            .expect("payload decodes");
    }
    assert_eq!(restored, data, "engine round trip is lossless");
}

#[test]
fn pipelined_ingest_flow_matches_the_synchronous_stream() {
    // The pipelined_ingest example flow at reduced scale: the asynchronous
    // ingest stream (worker forced on to exercise the threaded path in CI)
    // emits bit-identical wire output to the synchronous stream.
    use zipline_repro::zipline_engine::PipelinedStream;
    let data = sensor_style_data(300);

    let mut sync_engine = EngineBuilder::new()
        .shards(8)
        .workers(4)
        .spawn(SpawnPolicy::Threads)
        .build()
        .expect("valid engine config");
    let mut sync_wire = Vec::new();
    let mut sync_stream = EngineStream::new(&mut sync_engine, 64, |packet_type, bytes| {
        sync_wire.push((packet_type, bytes.to_vec()));
    });
    for chunk in data.chunks(32) {
        sync_stream.push_record(chunk).expect("record streams");
    }
    sync_stream.finish().expect("stream flushes");

    let piped_engine = EngineBuilder::new()
        .shards(8)
        .workers(4)
        .spawn(SpawnPolicy::Threads)
        .pipelined(2)
        .build()
        .expect("valid engine config");
    let mut piped_wire = Vec::new();
    let mut piped_stream = PipelinedStream::new(piped_engine, 64, |packet_type, bytes: &[u8]| {
        piped_wire.push((packet_type, bytes.to_vec()));
    })
    .expect("engine is pipelined");
    assert!(piped_stream.is_threaded(), "worker forced on");
    for chunk in data.chunks(32) {
        piped_stream.push_record(chunk).expect("record streams");
    }
    let (engine, summary) = piped_stream.finish().expect("stream flushes");
    assert_eq!(piped_wire, sync_wire, "pipelined output is bit-identical");
    assert_eq!(summary.bytes_in, data.len() as u64);
    assert!(engine.stats().is_consistent());
}

#[test]
fn backend_matrix_flow_compresses_and_round_trips() {
    // The engine_backends example flow at reduced scale: the same generic
    // EngineStream drives GD, deflate and passthrough over one workload,
    // each restoring byte-exactly through its mirrored decompressor, with
    // passthrough as the ratio floor.
    let data = sensor_style_data(200);

    fn stream_through<B: zipline_repro::zipline_engine::CompressionBackend>(
        mut engine: zipline_repro::zipline_engine::CompressionEngine<B>,
        mut decoder: zipline_repro::zipline_engine::EngineDecompressor<B>,
        batch_units: usize,
        data: &[u8],
    ) -> u64 {
        let mut wire = Vec::new();
        let mut stream = EngineStream::new(&mut engine, batch_units, |pt, bytes: &[u8]| {
            wire.push((pt, bytes.to_vec()));
        });
        stream.push_record(data).expect("record streams");
        let summary = stream.finish().expect("stream flushes");
        let mut restored = Vec::new();
        for (pt, bytes) in &wire {
            decoder
                .restore_payload_into(*pt, bytes, &mut restored)
                .expect("payload decodes");
        }
        assert_eq!(restored, data, "backend round trip is lossless");
        summary.wire_bytes
    }

    let gd_builder = EngineBuilder::new().shards(4).workers(2);
    let gd_wire = stream_through(
        gd_builder.build().expect("valid GD engine"),
        EngineBuilder::new()
            .shards(4)
            .workers(2)
            .build_decompressor()
            .expect("valid GD decoder"),
        64,
        &data,
    );
    let deflate_wire = stream_through(
        EngineBuilder::new()
            .backend(DeflateBackend::default())
            .build()
            .expect("valid deflate engine"),
        EngineBuilder::new()
            .backend(DeflateBackend::default())
            .build_decompressor()
            .expect("valid deflate decoder"),
        4096,
        &data,
    );
    let floor_wire = stream_through(
        EngineBuilder::new()
            .backend(PassthroughBackend::new())
            .build()
            .expect("valid passthrough engine"),
        EngineBuilder::new()
            .backend(PassthroughBackend::new())
            .build_decompressor()
            .expect("valid passthrough decoder"),
        4096,
        &data,
    );

    assert_eq!(floor_wire, data.len() as u64, "passthrough is the floor");
    assert!(gd_wire < floor_wire, "GD beats the floor");
    assert!(deflate_wire < floor_wire, "deflate beats the floor");
}
