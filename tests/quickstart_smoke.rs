//! Smoke tests mirroring `examples/quickstart.rs` and
//! `examples/engine_stream.rs` at a reduced scale, so the quickstart flows
//! (host-side GD, the sharded engine stream, and the simulated two-switch
//! deployment) are exercised by `cargo test` on every change; CI
//! additionally runs the real example binaries.

use zipline_repro::zipline::deployment::{DeploymentConfig, ZipLineDeployment};
use zipline_repro::zipline_engine::{
    CompressionEngine, EngineConfig, EngineDecompressor, EngineStream, SpawnPolicy,
};
use zipline_repro::zipline_gd::codec::{compress, decompress};
use zipline_repro::zipline_gd::GdConfig;

fn sensor_style_data(chunks: u32) -> Vec<u8> {
    let mut data = Vec::new();
    for i in 0..chunks {
        let mut chunk = [0u8; 32];
        chunk[0] = (i % 5) as u8;
        chunk[31] = 0xEE;
        if i % 7 == 0 {
            chunk[16] ^= 0x01;
        }
        data.extend_from_slice(&chunk);
    }
    data
}

#[test]
fn quickstart_flow_compresses_and_round_trips() {
    let config = GdConfig::paper_default();
    let data = sensor_style_data(200);

    // Host-side GD: lossless and strongly compressing on redundant data.
    let stream = compress(&config, &data).expect("compression succeeds");
    assert_eq!(decompress(&stream).expect("decompression succeeds"), data);
    let ratio = stream.serialized_len() as f64 / data.len() as f64;
    assert!(
        ratio < 0.2,
        "expected strong compression, got ratio {ratio}"
    );

    // The same payloads through the simulated two-switch deployment.
    let mut deployment =
        ZipLineDeployment::new(DeploymentConfig::fast_test()).expect("valid deployment");
    let payloads: Vec<Vec<u8>> = data.chunks(32).map(|c| c.to_vec()).collect();
    let received = deployment.run_payloads(&payloads).expect("simulation runs");
    assert_eq!(received, payloads, "in-network round trip is lossless");
}

#[test]
fn engine_stream_flow_compresses_and_round_trips() {
    // The engine_stream example flow at reduced scale: records stream
    // through the sharded engine into wire payloads, and the mirrored
    // decompressor restores them byte-exactly.
    let config = EngineConfig {
        shards: 8,
        workers: 4,
        spawn: SpawnPolicy::Threads, // exercise the threaded path in CI
        ..EngineConfig::paper_default()
    };
    let mut engine = CompressionEngine::new(config).expect("valid engine config");
    let data = sensor_style_data(300);

    let mut wire = Vec::new();
    let mut stream = EngineStream::new(&mut engine, 64, |packet_type, bytes| {
        wire.push((packet_type, bytes.to_vec()));
    });
    for chunk in data.chunks(32) {
        stream.push_record(chunk).expect("record streams");
    }
    let summary = stream.finish().expect("stream flushes");
    assert_eq!(summary.bytes_in, data.len() as u64);
    assert!(
        summary.wire_bytes < data.len() as u64 / 2,
        "engine stream compresses the redundant workload"
    );

    let mut decoder = EngineDecompressor::new(&config).expect("valid decoder config");
    let mut restored = Vec::new();
    for (packet_type, bytes) in &wire {
        decoder
            .restore_payload_into(*packet_type, bytes, &mut restored)
            .expect("payload decodes");
    }
    assert_eq!(restored, data, "engine round trip is lossless");
}
