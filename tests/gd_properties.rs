//! Cross-crate property tests: the GD invariants that make ZipLine lossless,
//! checked through the public APIs of the workspace crates together.

use proptest::prelude::*;
use zipline_repro::zipline_gd::codec::{compress, decompress, ChunkCodec};
use zipline_repro::zipline_gd::{BitVec, GdConfig, HammingCode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GD itself is lossless for every supported Hamming parameter.
    #[test]
    fn chunk_roundtrip_for_every_parameter(
        m in 3u32..=10,
        seed in any::<u64>(),
    ) {
        let config = GdConfig::for_parameters(m, 8).unwrap();
        let codec = ChunkCodec::new(&config).unwrap();
        let mut state = seed;
        let chunk: Vec<u8> = (0..config.chunk_bytes)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        let encoded = codec.encode_chunk(&chunk).unwrap();
        prop_assert_eq!(codec.decode_chunk(&encoded).unwrap(), chunk);
    }

    /// Stream compression round-trips arbitrary buffers, and its size never
    /// exceeds one uncompressed record per chunk plus the raw tail.
    #[test]
    fn stream_roundtrip_and_size_bound(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let config = GdConfig::paper_default();
        let stream = compress(&config, &data).unwrap();
        prop_assert_eq!(decompress(&stream).unwrap(), data.clone());
        let worst_case = (data.len() / 32 + 1) * 33 + data.len() % 32 + 64;
        prop_assert!(stream.serialized_len() <= worst_case);
    }

    /// The deviation (syndrome) always identifies the single flipped bit:
    /// flipping any one bit of a codeword and deconstructing gives back the
    /// basis of the codeword.
    #[test]
    fn single_bit_errors_never_change_the_basis(flip in 0usize..255, seed in any::<u64>()) {
        let code = HammingCode::new(8).unwrap();
        let mut state = seed;
        let mut message = BitVec::zeros(code.k());
        for i in 0..code.k() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if state >> 63 == 1 {
                message.set(i, true);
            }
        }
        let codeword = code.encode(&message).unwrap();
        let mut corrupted = codeword.clone();
        corrupted.flip(flip);
        let (recovered, position) = code.decode(&corrupted).unwrap();
        prop_assert_eq!(recovered, codeword);
        prop_assert_eq!(position, Some(flip));
    }
}

#[test]
fn every_table1_parameter_produces_a_working_codec() {
    for m in 3u32..=13 {
        let config = GdConfig::for_parameters(m, 10).unwrap();
        let codec = ChunkCodec::new(&config).unwrap();
        let chunk: Vec<u8> = (0..config.chunk_bytes)
            .map(|i| (i * 37 % 251) as u8)
            .collect();
        let encoded = codec.encode_chunk(&chunk).unwrap();
        assert_eq!(codec.decode_chunk(&encoded).unwrap(), chunk, "m = {m}");
        assert_eq!(encoded.basis.len(), config.k(), "m = {m}");
    }
}
