//! Property test over the whole system: whatever mix of payloads is offered,
//! the two-switch ZipLine deployment delivers every packet byte-exactly and
//! its statistics remain consistent.

use proptest::prelude::*;
use zipline_repro::zipline::deployment::{DeploymentConfig, ZipLineDeployment};

/// Payload strategies: chunk-sized (compressible), short (passed through),
/// and oversized (first chunk compressed, tail carried).
fn payload_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Chunk-sized payloads drawn from a small alphabet: high redundancy.
        proptest::collection::vec(0u8..4, 32..=32),
        // Chunk-sized payloads of arbitrary bytes.
        proptest::collection::vec(any::<u8>(), 32..=32),
        // Short payloads (below the chunk size).
        proptest::collection::vec(any::<u8>(), 0..31),
        // Payloads with a tail beyond the first chunk.
        proptest::collection::vec(any::<u8>(), 33..90),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_payload_mix_is_delivered_byte_exactly(
        payloads in proptest::collection::vec(payload_strategy(), 1..120)
    ) {
        let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
        let received = deployment.run_payloads(&payloads).unwrap();
        prop_assert_eq!(received, payloads);
    }

    #[test]
    fn encoder_statistics_always_balance(
        payloads in proptest::collection::vec(payload_strategy(), 1..80)
    ) {
        let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
        let frames = payloads
            .iter()
            .map(|p| {
                zipline_repro::zipline_net::EthernetFrame::new(
                    zipline_repro::zipline_net::MacAddress::local(2),
                    zipline_repro::zipline_net::MacAddress::local(1),
                    zipline_repro::zipline_net::ethernet::ETHERTYPE_IPV4,
                    p.clone(),
                )
            })
            .collect();
        let outcome = deployment.run_frames(frames).unwrap();
        // Every chunk that entered left in exactly one of the three forms.
        prop_assert!(outcome.encoder_stats.is_consistent());
        prop_assert_eq!(outcome.frames_received, payloads.len() as u64);
        prop_assert_eq!(outcome.decoder_stats.decode_failures, 0);
        // Compression never inflates a payload by more than the type-2
        // overhead (1 byte of padding per chunk, for the paper parameters).
        prop_assert!(
            outcome.payload_bytes_between_switches
                <= outcome.payload_bytes_in + outcome.encoder_stats.chunks_in
        );
    }
}
