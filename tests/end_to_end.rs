//! Cross-crate integration tests: workloads → switch pipeline → byte-exact
//! recovery, plus consistency of the statistics the experiments rely on.

use zipline_repro::zipline::deployment::{DeploymentConfig, ZipLineDeployment};
use zipline_repro::zipline_gd::GdConfig;
use zipline_repro::zipline_net::ethernet::ETHERTYPE_IPV4;
use zipline_repro::zipline_net::{EthernetFrame, MacAddress};
use zipline_repro::zipline_traces::dns::{DnsWorkload, DnsWorkloadConfig};
use zipline_repro::zipline_traces::sensor::{SensorWorkload, SensorWorkloadConfig};
use zipline_repro::zipline_traces::ChunkWorkload;

fn frames_from_workload(workload: &dyn ChunkWorkload, limit: usize) -> Vec<EthernetFrame> {
    workload
        .chunks()
        .take(limit)
        .map(|chunk| {
            EthernetFrame::new(
                MacAddress::local(2),
                MacAddress::local(1),
                ETHERTYPE_IPV4,
                chunk,
            )
        })
        .collect()
}

#[test]
fn sensor_workload_roundtrips_through_the_deployment() {
    let workload = SensorWorkload::new(SensorWorkloadConfig {
        chunks: 3_000,
        sensors: 32,
        readings_per_sensor: 10,
        ..SensorWorkloadConfig::small()
    });
    let frames = frames_from_workload(&workload, 3_000);
    let expected: Vec<Vec<u8>> = frames.iter().map(|f| f.payload.clone()).collect();

    let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
    let outcome = deployment.run_frames(frames).unwrap();

    assert_eq!(outcome.frames_received, 3_000);
    assert_eq!(
        outcome.received_payloads, expected,
        "payloads restored byte-exactly"
    );
    assert_eq!(outcome.decoder_stats.decode_failures, 0);
    // The workload is highly redundant: most packets leave compressed.
    assert!(
        outcome.encoder_stats.emitted_compressed > 2_000,
        "compressed: {}",
        outcome.encoder_stats.emitted_compressed
    );
    // Statistics are internally consistent.
    assert!(outcome.encoder_stats.is_consistent());
    assert_eq!(
        outcome.encoder_stats.emitted_compressed
            + outcome.encoder_stats.emitted_uncompressed
            + outcome.encoder_stats.emitted_raw,
        3_000
    );
    assert!(outcome.compression_ratio().unwrap() < 0.3);
}

#[test]
fn dns_workload_roundtrips_through_the_deployment() {
    let workload = DnsWorkload::new(DnsWorkloadConfig {
        queries: 2_000,
        distinct_names: 100,
        ..DnsWorkloadConfig::small()
    });
    let frames = frames_from_workload(&workload, 2_000);
    let expected: Vec<Vec<u8>> = frames.iter().map(|f| f.payload.clone()).collect();

    let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
    let outcome = deployment.run_frames(frames).unwrap();

    assert_eq!(outcome.received_payloads, expected);
    assert_eq!(outcome.decoder_stats.decode_failures, 0);
    assert!(outcome.compression_ratio().unwrap() < 0.5);
}

#[test]
fn static_table_matches_the_paper_ratio_on_a_small_run() {
    // With every basis pre-installed, each 32-byte chunk travels as 3 bytes:
    // ratio 0.094, Figure 3's "static table" bar.
    let workload = SensorWorkload::new(SensorWorkloadConfig {
        chunks: 1_000,
        sensors: 8,
        readings_per_sensor: 4,
        noise_probability: 0.0,
        ..SensorWorkloadConfig::small()
    });
    let chunks: Vec<Vec<u8>> = workload.chunks().collect();
    let frames = frames_from_workload(&workload, 1_000);

    let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
    deployment.preload_static_table(chunks);
    let outcome = deployment.run_frames(frames).unwrap();

    assert_eq!(outcome.encoder_stats.emitted_uncompressed, 0);
    assert_eq!(outcome.encoder_stats.emitted_compressed, 1_000);
    let ratio = outcome.compression_ratio().unwrap();
    assert!((ratio - 3.0 / 32.0).abs() < 0.001, "ratio = {ratio}");
}

#[test]
fn large_frames_with_trailing_bytes_survive_compression() {
    // Frames bigger than one chunk: the first 32 bytes are compressed, the
    // rest is carried verbatim (how the Figure 4 encode runs treat 1500 B
    // frames).
    let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
    let payloads: Vec<Vec<u8>> = (0..200u8)
        .map(|i| {
            let mut p = vec![0x44u8; 32];
            p.extend((0..100).map(|j| (j as u8).wrapping_add(i)));
            p
        })
        .collect();
    let received = deployment.run_payloads(&payloads).unwrap();
    assert_eq!(received, payloads);
}

#[test]
fn different_hamming_parameters_work_end_to_end() {
    for m in [4u32, 6, 10] {
        let gd = GdConfig::for_parameters(m, 12).unwrap();
        let chunk_bytes = gd.chunk_bytes;
        let config = DeploymentConfig {
            gd,
            ..DeploymentConfig::fast_test()
        };
        let mut deployment = ZipLineDeployment::new(config).unwrap();
        let payloads: Vec<Vec<u8>> = (0..100u8)
            .map(|i| (0..chunk_bytes).map(|j| (j as u8) ^ (i % 3)).collect())
            .collect();
        let received = deployment.run_payloads(&payloads).unwrap();
        assert_eq!(received, payloads, "m = {m}");
    }
}

#[test]
fn corrupted_compressed_traffic_does_not_crash_the_decoder() {
    // Inject a compressed frame with an identifier the decoder never learned;
    // the deployment must keep running and count the failure.
    use zipline_repro::zipline_gd::packet::ETHERTYPE_ZIPLINE_COMPRESSED;

    let mut deployment = ZipLineDeployment::new(DeploymentConfig::fast_test()).unwrap();
    let mut frames = vec![EthernetFrame::new(
        MacAddress::local(2),
        MacAddress::local(1),
        ETHERTYPE_ZIPLINE_COMPRESSED,
        vec![0x12, 0x80, 0x03], // syndrome 0x12, id never installed
    )];
    frames.extend(frames_from_workload(
        &SensorWorkload::new(SensorWorkloadConfig {
            chunks: 50,
            ..SensorWorkloadConfig::small()
        }),
        50,
    ));
    let outcome = deployment.run_frames(frames).unwrap();
    assert_eq!(outcome.frames_received, 51);
    assert_eq!(outcome.decoder_stats.decode_failures, 1);
}
