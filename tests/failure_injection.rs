//! Failure-injection tests: the deployment must stay lossless (or fail
//! loudly) when the control plane misbehaves, queues overflow, or traffic is
//! corrupted — situations the paper's two-phase install protocol is designed
//! to survive.

use std::any::Any;
use zipline_repro::zipline::control::{ControlMessage, ETHERTYPE_ZIPLINE_CONTROL};
use zipline_repro::zipline::decoder::{DecoderConfig, UnknownIdPolicy, ZipLineDecodeProgram};
use zipline_repro::zipline::encoder::{EncoderConfig, ZipLineEncodeProgram};
use zipline_repro::zipline_gd::packet::ETHERTYPE_ZIPLINE_COMPRESSED;
use zipline_repro::zipline_net::ethernet::ETHERTYPE_IPV4;
use zipline_repro::zipline_net::host::{CaptureSink, GeneratorConfig, TrafficGenerator};
use zipline_repro::zipline_net::link::LinkParams;
use zipline_repro::zipline_net::sim::{Network, Node, NodeCtx, PortId};
use zipline_repro::zipline_net::time::{DataRate, SimDuration, SimTime};
use zipline_repro::zipline_net::{EthernetFrame, MacAddress};
use zipline_repro::zipline_switch::node::{SwitchConfig, SwitchNode};

/// A node that sits on the control channel and drops every Nth control frame
/// (or all of them), otherwise forwarding between its two ports.
struct LossyControlChannel {
    drop_every: u64,
    seen: u64,
    dropped: u64,
}

impl LossyControlChannel {
    fn new(drop_every: u64) -> Self {
        Self {
            drop_every,
            seen: 0,
            dropped: 0,
        }
    }
}

impl Node for LossyControlChannel {
    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, frame: EthernetFrame) {
        self.seen += 1;
        if self.drop_every > 0 && self.seen.is_multiple_of(self.drop_every) {
            self.dropped += 1;
            return;
        }
        // Two-port wire: 0 <-> 1.
        ctx.send(1 - port, frame);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Builds the usual sender → encoder → decoder → receiver chain but routes
/// the control channel through a lossy middlebox.
fn run_with_lossy_control(drop_every: u64, packets: u64) -> (u64, u64, u64, u64) {
    let mut net = Network::new();
    let payload = vec![0x42u8; 32];
    let frame = EthernetFrame::new(
        MacAddress::local(2),
        MacAddress::local(1),
        ETHERTYPE_IPV4,
        payload,
    );
    let sender = net.add_node(Box::new(TrafficGenerator::new(GeneratorConfig {
        frames: vec![frame],
        count: packets,
        nic_rate: DataRate::LINE_RATE_100G,
        max_packets_per_second: Some(100_000.0),
        port: 0,
        start: SimTime::ZERO,
    })));

    let switch_config = SwitchConfig {
        ports: 3,
        pipeline_latency: SimDuration::from_nanos(100),
        control_plane_latency: SimDuration::from_micros(10),
        cpu_ports: vec![2],
        digest_queue_capacity: 64,
    };
    let encoder = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
    let encoder_switch = net.add_node(Box::new(
        SwitchNode::new(switch_config.clone(), encoder).unwrap(),
    ));
    let decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
    let decoder_switch = net.add_node(Box::new(SwitchNode::new(switch_config, decoder).unwrap()));
    let receiver = net.add_node(Box::new(CaptureSink::counting()));
    let lossy = net.add_node(Box::new(LossyControlChannel::new(drop_every)));

    net.connect((sender, 0), (encoder_switch, 0), LinkParams::ideal())
        .unwrap();
    net.connect(
        (encoder_switch, 1),
        (decoder_switch, 0),
        LinkParams::ideal(),
    )
    .unwrap();
    net.connect((decoder_switch, 1), (receiver, 0), LinkParams::ideal())
        .unwrap();
    // Control channel through the lossy middlebox.
    net.connect((encoder_switch, 2), (lossy, 0), LinkParams::ideal())
        .unwrap();
    net.connect((lossy, 1), (decoder_switch, 2), LinkParams::ideal())
        .unwrap();

    net.schedule_timer(SimTime::ZERO, sender, 0);
    net.run(packets * 20 + 10_000);

    let received = net
        .node_as::<CaptureSink>(receiver)
        .unwrap()
        .stats()
        .frames_received;
    let encoder_node = net
        .node_as::<SwitchNode<ZipLineEncodeProgram>>(encoder_switch)
        .unwrap();
    let decoder_node = net
        .node_as::<SwitchNode<ZipLineDecodeProgram>>(decoder_switch)
        .unwrap();
    let compressed = encoder_node.program().stats().emitted_compressed;
    let failures = decoder_node.program().stats().decode_failures;
    let dropped_control = net.node_as::<LossyControlChannel>(lossy).unwrap().dropped;
    (received, compressed, failures, dropped_control)
}

#[test]
fn control_channel_loss_delays_but_never_corrupts() {
    // Dropping every second control frame delays activation (install or ack
    // may be lost) but the two-phase protocol guarantees that whatever *is*
    // compressed can be decompressed: zero decode failures, every packet
    // delivered.
    let (received, compressed, failures, dropped) = run_with_lossy_control(2, 500);
    assert_eq!(received, 500);
    assert_eq!(failures, 0, "a compressed packet must never be undecodable");
    assert!(dropped > 0, "the middlebox did drop control traffic");
    // Depending on which frame was dropped (install vs ack) compression may
    // or may not have become active; either is acceptable, corruption is not.
    let _ = compressed;
}

#[test]
fn total_control_channel_loss_disables_compression_but_not_delivery() {
    let (received, compressed, failures, dropped) = run_with_lossy_control(1, 300);
    assert_eq!(received, 300);
    assert_eq!(
        compressed, 0,
        "without acks the encoder must never compress"
    );
    assert_eq!(failures, 0);
    assert!(dropped > 0);
}

#[test]
fn digest_queue_overflow_is_counted_and_harmless() {
    // A burst of distinct bases larger than the digest queue: some digests
    // are dropped (as on the real ASIC), those bases simply stay
    // uncompressed until a later packet's digest gets through.
    let mut net = Network::new();
    let frames: Vec<EthernetFrame> = (0..200u32)
        .map(|i| {
            let mut payload = vec![0u8; 32];
            payload[0..4].copy_from_slice(&i.to_be_bytes());
            EthernetFrame::new(
                MacAddress::local(2),
                MacAddress::local(1),
                ETHERTYPE_IPV4,
                payload,
            )
        })
        .collect();
    let sender = net.add_node(Box::new(TrafficGenerator::new(GeneratorConfig {
        count: frames.len() as u64,
        frames,
        nic_rate: DataRate::LINE_RATE_100G,
        max_packets_per_second: None, // burst as fast as possible
        port: 0,
        start: SimTime::ZERO,
    })));
    let switch_config = SwitchConfig {
        ports: 3,
        pipeline_latency: SimDuration::from_nanos(100),
        control_plane_latency: SimDuration::from_millis(1),
        cpu_ports: vec![2],
        digest_queue_capacity: 16,
    };
    let encoder = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
    let encoder_switch = net.add_node(Box::new(SwitchNode::new(switch_config, encoder).unwrap()));
    let receiver = net.add_node(Box::new(CaptureSink::counting()));
    net.connect((sender, 0), (encoder_switch, 0), LinkParams::ideal())
        .unwrap();
    net.connect((encoder_switch, 1), (receiver, 0), LinkParams::ideal())
        .unwrap();
    net.schedule_timer(SimTime::ZERO, sender, 0);
    net.run(50_000);

    let node = net
        .node_as::<SwitchNode<ZipLineEncodeProgram>>(encoder_switch)
        .unwrap();
    assert!(
        node.stats().digests_dropped > 0,
        "the 16-entry queue must overflow"
    );
    assert_eq!(
        net.node_as::<CaptureSink>(receiver)
            .unwrap()
            .stats()
            .frames_received,
        200,
        "every packet is still forwarded"
    );
}

#[test]
fn decoder_drop_policy_discards_undecodable_packets() {
    // With the Drop policy, a compressed packet with an unknown identifier is
    // dropped rather than forwarded in undecodable form.
    let mut decoder = ZipLineDecodeProgram::new(DecoderConfig {
        unknown_id_policy: UnknownIdPolicy::Drop,
        ..DecoderConfig::paper_default()
    })
    .unwrap();
    let frame = EthernetFrame::new(
        MacAddress::local(2),
        MacAddress::local(1),
        ETHERTYPE_ZIPLINE_COMPRESSED,
        vec![0x00, 0x00, 0x09],
    );
    let mut ctx = zipline_repro::zipline_switch::packet_ctx::PacketContext::new(0, frame);
    use zipline_repro::zipline_switch::program::PipelineProgram;
    decoder.ingress(&mut ctx, SimTime::ZERO);
    assert!(ctx.dropped);
    assert_eq!(decoder.stats().decode_failures, 1);
}

#[test]
fn malformed_control_frames_are_ignored_by_both_sides() {
    use zipline_repro::zipline_switch::program::PipelineProgram;
    let mut encoder = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
    let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
    for payload in [vec![], vec![0xFF], vec![1, 2], vec![9; 64]] {
        let frame = EthernetFrame::new(
            MacAddress::local(1),
            MacAddress::local(2),
            ETHERTYPE_ZIPLINE_CONTROL,
            payload,
        );
        assert!(encoder
            .handle_control_packet(frame.clone(), SimTime::ZERO)
            .is_empty());
        assert!(decoder
            .handle_control_packet(frame, SimTime::ZERO)
            .is_empty());
    }
}

#[test]
fn replayed_stale_install_cannot_corrupt_an_active_mapping() {
    use zipline_repro::zipline_switch::program::PipelineProgram;
    // Learn basis A normally.
    let mut encoder = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
    let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
    let payload_a = vec![0xAAu8; 32];

    let mut ctx = zipline_repro::zipline_switch::packet_ctx::PacketContext::new(
        0,
        EthernetFrame::new(
            MacAddress::local(2),
            MacAddress::local(1),
            ETHERTYPE_IPV4,
            payload_a.clone(),
        ),
    );
    encoder.ingress(&mut ctx, SimTime::ZERO);
    let digest = ctx.digests.pop().unwrap();
    let installs = encoder.handle_digest(digest, SimTime::from_micros(10));
    let install_frame = installs[0].1.clone();
    let acks = decoder.handle_control_packet(install_frame.clone(), SimTime::from_micros(20));
    encoder.handle_control_packet(acks[0].1.clone(), SimTime::from_micros(30));
    assert_eq!(encoder.active_mappings(), 1);

    // An attacker (or a confused controller) replays the same install with a
    // mangled basis but the *old* nonce after the mapping is already active;
    // the decoder installs whatever it is told (it has no way to know), but a
    // replay of the matching ack must not cause the encoder to activate a
    // second, inconsistent mapping.
    let ControlMessage::InstallMapping { id, nonce, .. } =
        ControlMessage::from_frame(&install_frame).unwrap()
    else {
        panic!("expected install");
    };
    let stale_ack = ControlMessage::MappingInstalled { id, nonce }
        .to_frame(MacAddress::local(0xD0), MacAddress::local(0xE0));
    encoder.handle_control_packet(stale_ack, SimTime::from_micros(40));
    assert_eq!(
        encoder.active_mappings(),
        1,
        "no duplicate/ghost mapping appears"
    );
}
