//! Failure-injection tests: the deployment must stay lossless (or fail
//! loudly) when the control plane misbehaves, queues overflow, or traffic is
//! corrupted — situations the paper's two-phase install protocol is designed
//! to survive.

use std::any::Any;
use zipline_repro::zipline::control::{ControlMessage, ETHERTYPE_ZIPLINE_CONTROL};
use zipline_repro::zipline::decoder::{DecoderConfig, UnknownIdPolicy, ZipLineDecodeProgram};
use zipline_repro::zipline::encoder::{EncoderConfig, ZipLineEncodeProgram};
use zipline_repro::zipline_gd::packet::ETHERTYPE_ZIPLINE_COMPRESSED;
use zipline_repro::zipline_net::ethernet::ETHERTYPE_IPV4;
use zipline_repro::zipline_net::host::{CaptureSink, GeneratorConfig, TrafficGenerator};
use zipline_repro::zipline_net::link::LinkParams;
use zipline_repro::zipline_net::sim::{Network, Node, NodeCtx, PortId};
use zipline_repro::zipline_net::time::{DataRate, SimDuration, SimTime};
use zipline_repro::zipline_net::{EthernetFrame, MacAddress};
use zipline_repro::zipline_switch::node::{SwitchConfig, SwitchNode};

/// A node that sits on the control channel and drops every Nth control frame
/// (or all of them), otherwise forwarding between its two ports.
struct LossyControlChannel {
    drop_every: u64,
    seen: u64,
    dropped: u64,
}

impl LossyControlChannel {
    fn new(drop_every: u64) -> Self {
        Self {
            drop_every,
            seen: 0,
            dropped: 0,
        }
    }
}

impl Node for LossyControlChannel {
    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, port: PortId, frame: EthernetFrame) {
        self.seen += 1;
        if self.drop_every > 0 && self.seen.is_multiple_of(self.drop_every) {
            self.dropped += 1;
            return;
        }
        // Two-port wire: 0 <-> 1.
        ctx.send(1 - port, frame);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Builds the usual sender → encoder → decoder → receiver chain but routes
/// the control channel through a lossy middlebox.
fn run_with_lossy_control(drop_every: u64, packets: u64) -> (u64, u64, u64, u64) {
    let mut net = Network::new();
    let payload = vec![0x42u8; 32];
    let frame = EthernetFrame::new(
        MacAddress::local(2),
        MacAddress::local(1),
        ETHERTYPE_IPV4,
        payload,
    );
    let sender = net.add_node(Box::new(TrafficGenerator::new(GeneratorConfig {
        frames: vec![frame],
        count: packets,
        nic_rate: DataRate::LINE_RATE_100G,
        max_packets_per_second: Some(100_000.0),
        port: 0,
        start: SimTime::ZERO,
    })));

    let switch_config = SwitchConfig {
        ports: 3,
        pipeline_latency: SimDuration::from_nanos(100),
        control_plane_latency: SimDuration::from_micros(10),
        cpu_ports: vec![2],
        digest_queue_capacity: 64,
    };
    let encoder = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
    let encoder_switch = net.add_node(Box::new(
        SwitchNode::new(switch_config.clone(), encoder).unwrap(),
    ));
    let decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
    let decoder_switch = net.add_node(Box::new(SwitchNode::new(switch_config, decoder).unwrap()));
    let receiver = net.add_node(Box::new(CaptureSink::counting()));
    let lossy = net.add_node(Box::new(LossyControlChannel::new(drop_every)));

    net.connect((sender, 0), (encoder_switch, 0), LinkParams::ideal())
        .unwrap();
    net.connect(
        (encoder_switch, 1),
        (decoder_switch, 0),
        LinkParams::ideal(),
    )
    .unwrap();
    net.connect((decoder_switch, 1), (receiver, 0), LinkParams::ideal())
        .unwrap();
    // Control channel through the lossy middlebox.
    net.connect((encoder_switch, 2), (lossy, 0), LinkParams::ideal())
        .unwrap();
    net.connect((lossy, 1), (decoder_switch, 2), LinkParams::ideal())
        .unwrap();

    net.schedule_timer(SimTime::ZERO, sender, 0);
    net.run(packets * 20 + 10_000);

    let received = net
        .node_as::<CaptureSink>(receiver)
        .unwrap()
        .stats()
        .frames_received;
    let encoder_node = net
        .node_as::<SwitchNode<ZipLineEncodeProgram>>(encoder_switch)
        .unwrap();
    let decoder_node = net
        .node_as::<SwitchNode<ZipLineDecodeProgram>>(decoder_switch)
        .unwrap();
    let compressed = encoder_node.program().stats().emitted_compressed;
    let failures = decoder_node.program().stats().decode_failures;
    let dropped_control = net.node_as::<LossyControlChannel>(lossy).unwrap().dropped;
    (received, compressed, failures, dropped_control)
}

#[test]
fn control_channel_loss_delays_but_never_corrupts() {
    // Dropping every second control frame delays activation (install or ack
    // may be lost) but the two-phase protocol guarantees that whatever *is*
    // compressed can be decompressed: zero decode failures, every packet
    // delivered.
    let (received, compressed, failures, dropped) = run_with_lossy_control(2, 500);
    assert_eq!(received, 500);
    assert_eq!(failures, 0, "a compressed packet must never be undecodable");
    assert!(dropped > 0, "the middlebox did drop control traffic");
    // Depending on which frame was dropped (install vs ack) compression may
    // or may not have become active; either is acceptable, corruption is not.
    let _ = compressed;
}

#[test]
fn total_control_channel_loss_disables_compression_but_not_delivery() {
    let (received, compressed, failures, dropped) = run_with_lossy_control(1, 300);
    assert_eq!(received, 300);
    assert_eq!(
        compressed, 0,
        "without acks the encoder must never compress"
    );
    assert_eq!(failures, 0);
    assert!(dropped > 0);
}

#[test]
fn digest_queue_overflow_is_counted_and_harmless() {
    // A burst of distinct bases larger than the digest queue: some digests
    // are dropped (as on the real ASIC), those bases simply stay
    // uncompressed until a later packet's digest gets through.
    let mut net = Network::new();
    let frames: Vec<EthernetFrame> = (0..200u32)
        .map(|i| {
            let mut payload = vec![0u8; 32];
            payload[0..4].copy_from_slice(&i.to_be_bytes());
            EthernetFrame::new(
                MacAddress::local(2),
                MacAddress::local(1),
                ETHERTYPE_IPV4,
                payload,
            )
        })
        .collect();
    let sender = net.add_node(Box::new(TrafficGenerator::new(GeneratorConfig {
        count: frames.len() as u64,
        frames,
        nic_rate: DataRate::LINE_RATE_100G,
        max_packets_per_second: None, // burst as fast as possible
        port: 0,
        start: SimTime::ZERO,
    })));
    let switch_config = SwitchConfig {
        ports: 3,
        pipeline_latency: SimDuration::from_nanos(100),
        control_plane_latency: SimDuration::from_millis(1),
        cpu_ports: vec![2],
        digest_queue_capacity: 16,
    };
    let encoder = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
    let encoder_switch = net.add_node(Box::new(SwitchNode::new(switch_config, encoder).unwrap()));
    let receiver = net.add_node(Box::new(CaptureSink::counting()));
    net.connect((sender, 0), (encoder_switch, 0), LinkParams::ideal())
        .unwrap();
    net.connect((encoder_switch, 1), (receiver, 0), LinkParams::ideal())
        .unwrap();
    net.schedule_timer(SimTime::ZERO, sender, 0);
    net.run(50_000);

    let node = net
        .node_as::<SwitchNode<ZipLineEncodeProgram>>(encoder_switch)
        .unwrap();
    assert!(
        node.stats().digests_dropped > 0,
        "the 16-entry queue must overflow"
    );
    assert_eq!(
        net.node_as::<CaptureSink>(receiver)
            .unwrap()
            .stats()
            .frames_received,
        200,
        "every packet is still forwarded"
    );
}

#[test]
fn decoder_drop_policy_discards_undecodable_packets() {
    // With the Drop policy, a compressed packet with an unknown identifier is
    // dropped rather than forwarded in undecodable form.
    let mut decoder = ZipLineDecodeProgram::new(DecoderConfig {
        unknown_id_policy: UnknownIdPolicy::Drop,
        ..DecoderConfig::paper_default()
    })
    .unwrap();
    let frame = EthernetFrame::new(
        MacAddress::local(2),
        MacAddress::local(1),
        ETHERTYPE_ZIPLINE_COMPRESSED,
        vec![0x00, 0x00, 0x09],
    );
    let mut ctx = zipline_repro::zipline_switch::packet_ctx::PacketContext::new(0, frame);
    use zipline_repro::zipline_switch::program::PipelineProgram;
    decoder.ingress(&mut ctx, SimTime::ZERO);
    assert!(ctx.dropped);
    assert_eq!(decoder.stats().decode_failures, 1);
}

#[test]
fn malformed_control_frames_are_ignored_by_both_sides() {
    use zipline_repro::zipline_switch::program::PipelineProgram;
    let mut encoder = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
    let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
    for payload in [vec![], vec![0xFF], vec![1, 2], vec![9; 64]] {
        let frame = EthernetFrame::new(
            MacAddress::local(1),
            MacAddress::local(2),
            ETHERTYPE_ZIPLINE_CONTROL,
            payload,
        );
        assert!(encoder
            .handle_control_packet(frame.clone(), SimTime::ZERO)
            .is_empty());
        assert!(decoder
            .handle_control_packet(frame, SimTime::ZERO)
            .is_empty());
    }
}

// ---------------------------------------------------------------------------
// Durable engine store: recovery fault injection (ISSUE 6)
// ---------------------------------------------------------------------------
//
// The recovery property under attack here: whatever we do to the on-disk
// logs — truncate them at an arbitrary byte, flip a bit, starve the
// checkpoint cadence, kill the writer between the commit marker and the
// frame emission — `EngineStore::open` must either recover a journal that
// is a *strict prefix* of the reference recovery (bit for bit) or fail
// loudly with a typed error. Silent misrestoration is the only losing
// outcome.

mod recovery_injection {
    use std::cell::RefCell;
    use std::path::{Path, PathBuf};

    use zipline_repro::zipline_engine::{
        CommittedEntry, CompressionEngine, DictionaryUpdate, EngineBuilder, EngineStore,
        EngineStream, GdBackend, ShardedDictionary, SpawnPolicy, WarmStart,
    };
    use zipline_repro::zipline_gd::config::GdConfig;
    use zipline_repro::zipline_gd::packet::PacketType;
    use zipline_repro::zipline_gd::BitVec;
    use zipline_repro::zipline_traces::{ChurnWorkload, ChurnWorkloadConfig};

    const FRAME_LOG: &str = "frames.zfl";
    const SHARD_LOG: &str = "shards.zsl";

    fn recovery_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "zipline-recovery-inject-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn builder(dir: &Path, cadence: u64) -> EngineBuilder {
        EngineBuilder::new()
            .gd(GdConfig::for_parameters(8, 4).unwrap())
            .shards(2)
            .workers(1)
            .spawn(SpawnPolicy::Inline)
            .live_sync(true)
            .durable(dir.to_path_buf())
            .checkpoint_cadence(cadence)
    }

    /// A churny input sized to the 16-identifier dictionary above: twice
    /// as many distinct bases as identifiers, each repeated twice.
    fn churny_data() -> Vec<u8> {
        ChurnWorkload::new(ChurnWorkloadConfig::exceeding_capacity(16, 2, 32)).bytes()
    }

    /// Seeds `dir` by running a durable stream over `data` and killing it
    /// without `finish` — both logs keep their full journals, no
    /// compaction. Returns the wire events the doomed stream emitted.
    fn seed_store(dir: &Path, cadence: u64, data: &[u8]) -> Vec<CommittedEntry> {
        let mut engine: CompressionEngine<GdBackend> = builder(dir, cadence).build().unwrap();
        let events = run_stream(&mut engine, data, false);
        drop(engine);
        events
    }

    /// Feeds `data` through an 8-chunk-batch stream collecting the sinks'
    /// events in [`CommittedEntry`] shape; `finish` completes or kills it.
    fn run_stream(
        engine: &mut CompressionEngine<GdBackend>,
        data: &[u8],
        finish: bool,
    ) -> Vec<CommittedEntry> {
        let events: RefCell<Vec<CommittedEntry>> = RefCell::new(Vec::new());
        let sink = |pt: PacketType, bytes: &[u8]| {
            events.borrow_mut().push(CommittedEntry::Frame {
                packet_type: pt,
                codec: None,
                bytes: bytes.to_vec(),
            });
        };
        let control_sink = Some(|update: &DictionaryUpdate| {
            events
                .borrow_mut()
                .push(CommittedEntry::Control(update.clone()));
        });
        let mut stream = EngineStream::with_control_sink(engine, 8, sink, control_sink);
        stream.push_record(data).unwrap();
        if finish {
            stream.finish().unwrap();
        } else {
            drop(stream);
        }
        events.into_inner()
    }

    fn clone_store(src: &Path, dst: &Path) {
        std::fs::create_dir_all(dst).unwrap();
        for name in [FRAME_LOG, SHARD_LOG] {
            std::fs::copy(src.join(name), dst.join(name)).unwrap();
        }
    }

    /// The reference recovery of the untampered store.
    fn reference_warm(dir: &Path) -> WarmStart {
        let scratch = recovery_dir("reference");
        clone_store(dir, &scratch);
        let (_, warm) = EngineStore::open(&scratch).unwrap();
        let warm = warm.expect("seed committed batches");
        let _ = std::fs::remove_dir_all(&scratch);
        warm
    }

    /// Asserts the fate of one tampered store: recovery yields a strict
    /// prefix of the reference journal, or a loud typed error. Returns
    /// whether it recovered (and with how many batches) for sweep stats.
    fn assert_prefix_or_loud(work: &Path, reference: &WarmStart) -> Option<u64> {
        match EngineStore::open(work) {
            Ok((_, warm)) => {
                let Some(warm) = warm else { return Some(0) };
                assert!(warm.batches <= reference.batches);
                assert!(warm.bytes_in <= reference.bytes_in);
                assert!(
                    warm.committed.len() <= reference.committed.len()
                        && warm.committed[..] == reference.committed[..warm.committed.len()],
                    "recovered journal must be a strict prefix of the reference"
                );
                Some(warm.batches)
            }
            // PersistError is typed and descriptive; any Err is "loud".
            Err(_) => None,
        }
    }

    /// Kill the writer at *every byte offset* of the frame log: recovery
    /// must land on the last commit boundary the surviving bytes cover.
    #[test]
    fn frame_log_truncated_at_every_offset_recovers_a_prefix_or_fails_loudly() {
        let dir = recovery_dir("trunc-frame-seed");
        seed_store(&dir, 1, &churny_data());
        let reference = reference_warm(&dir);
        assert!(reference.batches >= 4, "seed must commit several batches");

        let frame_bytes = std::fs::read(dir.join(FRAME_LOG)).unwrap();
        let work = recovery_dir("trunc-frame-work");
        let mut boundaries = Vec::new();
        for cut in 0..=frame_bytes.len() {
            clone_store(&dir, &work);
            std::fs::write(work.join(FRAME_LOG), &frame_bytes[..cut]).unwrap();
            if let Some(batches) = assert_prefix_or_loud(&work, &reference) {
                boundaries.push(batches);
            }
        }
        // The sweep must see recovery at more than one boundary (early cuts
        // recover fewer batches, the full file recovers all of them) and
        // the boundary can only grow as more bytes survive.
        assert!(boundaries.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(boundaries.last(), Some(&reference.batches));
        assert!(boundaries.first().unwrap() < &reference.batches);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&work);
    }

    /// The same sweep over the shard log. Most cuts leave the frame log
    /// claiming commits the shard log can no longer cover — that must be a
    /// loud corruption error, never a silently emptier dictionary.
    #[test]
    fn shard_log_truncated_at_every_offset_recovers_or_fails_loudly() {
        let dir = recovery_dir("trunc-shard-seed");
        seed_store(&dir, 1, &churny_data());
        let reference = reference_warm(&dir);

        let shard_bytes = std::fs::read(dir.join(SHARD_LOG)).unwrap();
        let work = recovery_dir("trunc-shard-work");
        let (mut recovered, mut loud) = (0usize, 0usize);
        // Step by a prime: record sizes vary, so every field class is hit
        // without paying for a full per-byte sweep of the (large) log.
        for cut in (0..=shard_bytes.len()).step_by(3) {
            clone_store(&dir, &work);
            std::fs::write(work.join(SHARD_LOG), &shard_bytes[..cut]).unwrap();
            match assert_prefix_or_loud(&work, &reference) {
                Some(batches) => {
                    recovered += 1;
                    // The frame log is intact, so a successful recovery
                    // must reach the full commit boundary.
                    assert_eq!(batches, reference.batches);
                }
                None => loud += 1,
            }
        }
        assert!(recovered > 0, "a torn trailing checkpoint must still fold");
        assert!(loud > 0, "uncoverable commits must fail loudly");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&work);
    }

    /// Single-bit corruption anywhere in either log: CRC framing turns it
    /// into a shorter valid prefix or a loud error — never silent damage.
    #[test]
    fn flipped_bits_never_misrestore_silently() {
        let dir = recovery_dir("bitflip-seed");
        seed_store(&dir, 1, &churny_data());
        let reference = reference_warm(&dir);
        let work = recovery_dir("bitflip-work");
        for log in [FRAME_LOG, SHARD_LOG] {
            let bytes = std::fs::read(dir.join(log)).unwrap();
            // Step by a prime so the sweep hits every record field class.
            for pos in (0..bytes.len()).step_by(13) {
                for mask in [0x01u8, 0x80] {
                    let mut tampered = bytes.clone();
                    tampered[pos] ^= mask;
                    clone_store(&dir, &work);
                    std::fs::write(work.join(log), &tampered).unwrap();
                    assert_prefix_or_loud(&work, &reference);
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&work);
    }

    /// A sparse checkpoint cadence leaves the tail of the log covered only
    /// by deltas: recovery folds them onto the stale checkpoint and the
    /// resumed stream is still bit-identical to the uninterrupted run.
    #[test]
    fn stale_checkpoint_with_newer_deltas_folds_and_resumes_bit_identically() {
        let data = churny_data();
        let batch_bytes = 8 * 32;
        let cut = 6 * batch_bytes; // kill after 6 whole batches
        assert!(cut < data.len());

        let mut plain: CompressionEngine<GdBackend> = EngineBuilder::new()
            .gd(GdConfig::for_parameters(8, 4).unwrap())
            .shards(2)
            .workers(1)
            .spawn(SpawnPolicy::Inline)
            .live_sync(true)
            .build()
            .unwrap();
        let reference = run_stream(&mut plain, &data, true);

        // Checkpoints every 4 batches: the kill point sits past the last
        // checkpoint, so recovery *must* fold deltas (not bit-exact
        // restore) and still converge.
        let dir = recovery_dir("stale-checkpoint");
        let emitted = seed_store(&dir, 4, &data[..cut]);

        let mut engine: CompressionEngine<GdBackend> = builder(&dir, 4).build().unwrap();
        let warm = engine.take_warm_start().expect("store is warm");
        assert_eq!(warm.bytes_in, cut as u64);
        assert!(
            !warm.exact,
            "the newest checkpoint is stale; recovery had to fold deltas"
        );
        assert_eq!(warm.committed, emitted);
        let mut rejoined = warm.committed;
        rejoined.extend(run_stream(&mut engine, &data[cut..], true));
        assert_eq!(
            rejoined, reference,
            "folded recovery must resume bit-identically"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The commit-then-emit crash window: the store made the batch durable
    /// but the process died before the sinks saw a byte. Recovery must
    /// replay the full batch — control update first, then the frame it
    /// guards — so the downstream decoder never misses it.
    #[test]
    fn crash_between_commit_and_emission_replays_the_committed_batch() {
        let dir = recovery_dir("commit-no-emit");
        let mut store = EngineStore::create(&dir, 1, 8).unwrap();
        let mut dict = ShardedDictionary::new(8, 1).unwrap();
        dict.set_journal(true);
        let basis = BitVec::from_bytes(&[0x5A; 4]);
        let hash = basis.hash_words();
        dict.classify_at(0, &basis, hash, 0).unwrap();
        let delta = dict.take_delta();
        assert!(!delta.updates.is_empty());
        store
            .commit_batch(
                &[(PacketType::Compressed, 3u32)],
                &[9, 9, 9],
                None,
                &delta.updates,
                None,
                32,
            )
            .unwrap();
        // Crash here: committed, nothing emitted.
        drop(store);

        let (_, warm) = EngineStore::open(&dir).unwrap();
        let warm = warm.expect("the batch was durable");
        assert_eq!(warm.batches, 1);
        assert_eq!(warm.bytes_in, 32);
        match &warm.committed[..] {
            [CommittedEntry::Control(update), CommittedEntry::Frame {
                packet_type,
                codec: None,
                bytes,
            }] => {
                assert_eq!(update, &delta.updates[0]);
                assert_eq!(*packet_type, PacketType::Compressed);
                assert_eq!(bytes, &[9, 9, 9]);
            }
            other => panic!("expected [install, frame] replay, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn replayed_stale_install_cannot_corrupt_an_active_mapping() {
    use zipline_repro::zipline_switch::program::PipelineProgram;
    // Learn basis A normally.
    let mut encoder = ZipLineEncodeProgram::new(EncoderConfig::paper_default()).unwrap();
    let mut decoder = ZipLineDecodeProgram::new(DecoderConfig::paper_default()).unwrap();
    let payload_a = vec![0xAAu8; 32];

    let mut ctx = zipline_repro::zipline_switch::packet_ctx::PacketContext::new(
        0,
        EthernetFrame::new(
            MacAddress::local(2),
            MacAddress::local(1),
            ETHERTYPE_IPV4,
            payload_a.clone(),
        ),
    );
    encoder.ingress(&mut ctx, SimTime::ZERO);
    let digest = ctx.digests.pop().unwrap();
    let installs = encoder.handle_digest(digest, SimTime::from_micros(10));
    let install_frame = installs[0].1.clone();
    let acks = decoder.handle_control_packet(install_frame.clone(), SimTime::from_micros(20));
    encoder.handle_control_packet(acks[0].1.clone(), SimTime::from_micros(30));
    assert_eq!(encoder.active_mappings(), 1);

    // An attacker (or a confused controller) replays the same install with a
    // mangled basis but the *old* nonce after the mapping is already active;
    // the decoder installs whatever it is told (it has no way to know), but a
    // replay of the matching ack must not cause the encoder to activate a
    // second, inconsistent mapping.
    let ControlMessage::InstallMapping { id, nonce, .. } =
        ControlMessage::from_frame(&install_frame).unwrap()
    else {
        panic!("expected install");
    };
    let stale_ack = ControlMessage::MappingInstalled { id, nonce }
        .to_frame(MacAddress::local(0xD0), MacAddress::local(0xE0));
    encoder.handle_control_packet(stale_ack, SimTime::from_micros(40));
    assert_eq!(
        encoder.active_mappings(),
        1,
        "no duplicate/ghost mapping appears"
    );
}
