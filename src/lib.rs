//! Workspace-root umbrella crate for the ZipLine reproduction.
//!
//! This crate re-exports the public APIs of every crate in the workspace so
//! that the repository-level `examples/` and `tests/` can exercise the whole
//! system through a single dependency. Library users should depend on the
//! individual crates (`zipline`, `zipline-gd`, …) directly.

pub use zipline;
pub use zipline_deflate;
pub use zipline_engine;
pub use zipline_flow;
pub use zipline_gd;
pub use zipline_net;
pub use zipline_server;
pub use zipline_switch;
pub use zipline_traces;
