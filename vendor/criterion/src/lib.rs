//! Offline shim of the `criterion` benchmarking API used by this workspace.
//!
//! Implements the group/bench-function subset the `zipline-bench` targets
//! use, with a real (if simpler) measurement procedure: per benchmark it
//! calibrates an iteration count, collects `sample_size` timed samples and
//! reports the median time per iteration plus throughput.
//!
//! Output goes to stdout; when the `BENCH_JSON` environment variable names a
//! file, one JSON line per benchmark is appended to it (used to snapshot
//! baselines such as `BENCH_PR1.json`).
//!
//! Behavioural notes compared to the real crate: no statistical analysis, no
//! `target/criterion` reports, and when a bench binary is invoked with
//! `--test` (as `cargo test --benches` does) every benchmark runs exactly one
//! iteration as a smoke test.

use std::fmt::Display;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.full_name(), None, 10, self.test_mode, f);
        self
    }
}

/// Work-per-iteration annotation used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Identifier of one benchmark (`name` or `name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            full: format!("{name}/{parameter}"),
        }
    }

    fn full_name(&self) -> String {
        self.full.clone()
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            full: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(full: String) -> Self {
        Self { full }
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().full_name());
        run_benchmark(
            &full,
            self.throughput,
            self.sample_size,
            self.criterion.test_mode,
            f,
        );
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().full_name());
        run_benchmark(
            &full,
            self.throughput,
            self.sample_size,
            self.criterion.test_mode,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Passed to the measured closure; `iter` times the supplied routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    bencher.elapsed
}

fn run_benchmark<F>(
    full_name: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    test_mode: bool,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    if test_mode {
        time_once(&mut f, 1);
        println!("test-mode {full_name}: ok (1 iteration)");
        return;
    }

    // Calibrate: find an iteration count whose runtime is ~5 ms, capped so a
    // single sample never takes more than ~100 ms.
    let mut iters: u64 = 1;
    loop {
        let elapsed = time_once(&mut f, iters);
        if elapsed >= Duration::from_millis(5) || iters >= 1 << 24 {
            break;
        }
        iters *= if elapsed < Duration::from_micros(100) {
            8
        } else {
            2
        };
    }

    let mut samples_ns: Vec<f64> = (0..sample_size)
        .map(|_| time_once(&mut f, iters).as_nanos() as f64 / iters as f64)
        .collect();
    samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let median = samples_ns[samples_ns.len() / 2];
    let best = samples_ns[0];

    let throughput_text = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            format!(
                "  {:>10.1} MiB/s",
                bytes as f64 / (median * 1e-9) / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(elems)) => {
            format!("  {:>10.3} Melem/s", elems as f64 / (median * 1e-9) / 1e6)
        }
        None => String::new(),
    };
    println!("bench {full_name:<55} {median:>12.1} ns/iter (best {best:.1}){throughput_text}");

    if let Ok(path) = std::env::var("BENCH_JSON") {
        let line = format!(
            "{{\"id\":\"{full_name}\",\"median_ns_per_iter\":{median:.2},\"best_ns_per_iter\":{best:.2},\"iters_per_sample\":{iters},\"samples\":{sample_size}}}\n"
        );
        let written = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut file| file.write_all(line.as_bytes()));
        if let Err(e) = written {
            eprintln!("warning: could not append to BENCH_JSON file {path}: {e}");
        }
    }
}

/// Expands to a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compose_names() {
        assert_eq!(BenchmarkId::new("encode", 32).full_name(), "encode/32");
        assert_eq!(BenchmarkId::from("plain").full_name(), "plain");
    }

    #[test]
    fn bencher_times_the_routine() {
        let mut bencher = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        bencher.iter(|| count += 1);
        assert_eq!(count, 100);
    }
}
