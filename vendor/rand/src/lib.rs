//! Offline shim of the `rand` API surface used by this workspace.
//!
//! Implements `Rng::{gen, gen_bool, gen_range}`, `SeedableRng::seed_from_u64`
//! and `rngs::StdRng` on top of a SplitMix64 generator. The stream differs
//! from the real `StdRng` (ChaCha12), which is fine for the workload
//! generators in `zipline-traces`: they only need a deterministic,
//! well-distributed source, not a specific stream.

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Conversion of raw 64-bit outputs into sampled values (stand-in for the
/// real crate's `Standard` distribution).
pub trait FromRandom {
    fn from_random(bits: u64) -> Self;
}

macro_rules! impl_from_random_uint {
    ($($t:ty),*) => {$(
        impl FromRandom for $t {
            fn from_random(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
impl_from_random_uint!(u8, u16, u32, u64, usize);

impl FromRandom for bool {
    fn from_random(bits: u64) -> Self {
        bits >> 63 == 1
    }
}

impl FromRandom for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn from_random(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: FromRandom>(&mut self) -> T {
        T::from_random(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64 shim of the real `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            acc += v;
        }
        // Mean of 1000 uniform samples is close to 0.5.
        assert!((acc / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
