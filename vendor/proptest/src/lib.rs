//! Offline shim of the `proptest` API surface used by this workspace.
//!
//! Supports the subset the workspace tests rely on: the [`proptest!`] macro
//! with an optional `#![proptest_config(..)]` header, `any::<T>()`, integer
//! range strategies, `collection::vec`, `prop_map`, `prop_oneof!` and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate: cases are generated from a per-test
//! deterministic seed (derived from the test name) and failures are reported
//! through ordinary `assert!` panics, so there is **no shrinking** — the
//! failing input is printed, but not minimized. That trade keeps the shim
//! small while preserving the property-test semantics the suite depends on.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    pub trait Strategy {
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice among several strategies (backs [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            let pick = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[pick].new_value(rng)
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return start + rng.next_u64() as $t;
                    }
                    start + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }
    impl_range_strategies!(u8, u16, u32, u64, usize);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> Self {
            rng.next_u64() >> 63 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable element-count specifications for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % (span + 1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    /// Per-test deterministic random source (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds a generator seeded from the test name, so every test gets a
        /// stable, distinct stream.
        pub fn deterministic(test_name: &str) -> Self {
            let mut seed = 0xcbf29ce484222325u64; // FNV-1a
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100000001b3);
            }
            Self { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    /// Runner configuration; only the case count is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. See the real proptest for the grammar; the shim
/// accepts `#![proptest_config(expr)]` followed by `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&$strategy, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// `prop_assume!`: skips the current case when the assumption fails.
///
/// Expands to a `continue` targeting the per-case loop generated by
/// [`proptest!`], so it is only valid directly inside a proptest body (not
/// inside a nested closure), which is how the workspace uses it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !$cond {
            continue;
        }
    };
}

/// `prop_assert!`: plain `assert!` (the shim does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!`: plain `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `prop_assert_ne!`: plain `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sizes_are_respected() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = Strategy::new_value(&(3u32..10), &mut rng);
            assert!((3..10).contains(&v));
            let v = Strategy::new_value(&(5usize..=5), &mut rng);
            assert_eq!(v, 5);
            let xs = Strategy::new_value(&crate::collection::vec(any::<u8>(), 2..4), &mut rng);
            assert!(xs.len() == 2 || xs.len() == 3);
            let exact = Strategy::new_value(&crate::collection::vec(any::<bool>(), 7), &mut rng);
            assert_eq!(exact.len(), 7);
        }
    }

    #[test]
    fn oneof_draws_from_every_option() {
        let strategy = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::test_runner::TestRng::deterministic("oneof");
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::new_value(&strategy, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn prop_map_transforms_values() {
        let doubled = (1u64..50).prop_map(|v| v * 2);
        let mut rng = crate::test_runner::TestRng::deterministic("map");
        for _ in 0..100 {
            assert_eq!(Strategy::new_value(&doubled, &mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(x in 0u8..255, ys in crate::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!(x < 255);
            prop_assert!(ys.len() < 5);
        }
    }
}
