//! Offline shim of the serde facade.
//!
//! The container this workspace builds in has no route to crates.io, so the
//! real serde cannot be fetched. Workspace crates only use serde to *tag*
//! public config/stats types as serializable (no serialization is performed
//! anywhere in-tree yet); these marker traits plus the no-op derives in
//! `serde_derive` keep the annotations compiling. Replacing this shim with
//! the real crates is a manifest-only change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}
