//! Derive macros for the vendored [`serde`](../serde) shim.
//!
//! The build environment has no network access to crates.io, so the workspace
//! vendors a minimal serde facade (see `vendor/serde`). These derives emit
//! empty marker-trait impls; swapping in the real serde + serde_derive later
//! requires no source changes in the workspace crates.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following the `struct` / `enum` keyword.
///
/// The workspace only derives on plain non-generic items, so no generics or
/// where-clause handling is needed.
fn derive_target(input: TokenStream) -> String {
    let mut iter = input.into_iter();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" {
                for next in iter.by_ref() {
                    if let TokenTree::Ident(name) = next {
                        return name.to_string();
                    }
                }
            }
        }
    }
    panic!("#[derive(Serialize/Deserialize)] applied to unsupported item");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = derive_target(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = derive_target(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
